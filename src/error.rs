//! The unified workspace error type.
//!
//! Four PRs of organic growth left `ModelConfigError`, `PlanError`,
//! `EstimateError`, and ad-hoc string errors scattered across layers.
//! [`Error`] wraps them all (plus JSON parsing), so every fallible facade
//! API — scenario resolution, prediction, the CLI — returns one type that
//! implements [`std::error::Error`] with a proper `source()` chain.

use std::fmt;

use vtrain_core::EstimateError;
use vtrain_model::ModelConfigError;
use vtrain_parallel::PlanError;

/// Any error the vTrain facade can produce.
#[derive(Clone, Debug)]
pub enum Error {
    /// The model hyperparameters are invalid.
    Model(ModelConfigError),
    /// The 3D-parallel plan is malformed or infeasible.
    Plan(PlanError),
    /// The estimation pipeline rejected the design point.
    Estimate(EstimateError),
    /// The scenario JSON failed to parse (syntax or schema mismatch;
    /// the message carries line/field context).
    Parse(serde_json::Error),
    /// The scenario parsed but cannot be resolved (unknown preset,
    /// missing section, contradictory options).
    Scenario(String),
    /// An input or output file could not be read or written (the message
    /// carries the path and the OS error; kept as a string so the error
    /// stays [`Clone`]).
    Io(String),
    /// The serve daemon failed (bind error, broken connection, malformed
    /// frame, internal fault).
    Server(String),
    /// The serve daemon's admission queue was full — back-pressure; the
    /// request was rejected without being executed and can be retried.
    Busy(String),
    /// The request exceeded its deadline or evaluated-point budget and
    /// was stopped cooperatively; any partial result was discarded.
    Deadline(String),
}

impl Error {
    /// Creates a scenario-level error.
    pub fn scenario(msg: impl Into<String>) -> Self {
        Error::Scenario(msg.into())
    }

    /// Creates an I/O-level error.
    pub fn io(msg: impl Into<String>) -> Self {
        Error::Io(msg.into())
    }

    /// Creates a server-level error.
    pub fn server(msg: impl Into<String>) -> Self {
        Error::Server(msg.into())
    }

    /// Creates an admission-rejected (queue full / draining) error.
    pub fn busy(msg: impl Into<String>) -> Self {
        Error::Busy(msg.into())
    }

    /// Creates a deadline/budget-exceeded error.
    pub fn deadline(msg: impl Into<String>) -> Self {
        Error::Deadline(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Model(e) => write!(f, "invalid model: {e}"),
            Error::Plan(e) => write!(f, "invalid plan: {e}"),
            Error::Estimate(e) => write!(f, "{e}"),
            Error::Parse(e) => write!(f, "invalid scenario JSON: {e}"),
            Error::Scenario(msg) => write!(f, "invalid scenario: {msg}"),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
            Error::Server(msg) => write!(f, "server error: {msg}"),
            Error::Busy(msg) => write!(f, "server busy: {msg}"),
            Error::Deadline(msg) => write!(f, "deadline exceeded: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Model(e) => Some(e),
            Error::Plan(e) => Some(e),
            Error::Estimate(e) => Some(e),
            Error::Parse(e) => Some(e),
            Error::Scenario(_)
            | Error::Io(_)
            | Error::Server(_)
            | Error::Busy(_)
            | Error::Deadline(_) => None,
        }
    }
}

impl From<ModelConfigError> for Error {
    fn from(e: ModelConfigError) -> Self {
        Error::Model(e)
    }
}

impl From<PlanError> for Error {
    fn from(e: PlanError) -> Self {
        Error::Plan(e)
    }
}

impl From<EstimateError> for Error {
    fn from(e: EstimateError) -> Self {
        Error::Estimate(e)
    }
}

impl From<serde_json::Error> for Error {
    fn from(e: serde_json::Error) -> Self {
        Error::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn wraps_every_layer_with_sources() {
        let model_err = vtrain_model::ModelConfig::builder().hidden_size(0).build().unwrap_err();
        let e = Error::from(model_err);
        assert!(e.to_string().contains("invalid model"));
        assert!(e.source().is_some());

        let plan_err = vtrain_parallel::ParallelConfig::builder().tensor(0).build().unwrap_err();
        let e = Error::from(plan_err);
        assert!(e.to_string().contains("invalid plan"));
        assert!(e.source().is_some());

        let parse_err = serde_json::value_from_str("{").unwrap_err();
        let e = Error::from(parse_err);
        assert!(e.to_string().contains("line 1"), "parse errors carry position: {e}");

        let e = Error::scenario("unknown preset `foo`");
        assert!(e.to_string().contains("unknown preset"));
        assert!(e.source().is_none());
    }
}
