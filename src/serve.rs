//! Sweep-as-a-service: the `vtrain serve` daemon.
//!
//! A long-running process that binds a TCP port, speaks the versioned
//! wire API of [`crate::api`] in newline-delimited JSON frames, and
//! multiplexes concurrent scenario requests onto a worker pool sharing
//! one [`ProfileCache`] — so a fleet of sweeps pays the profiling cost
//! of each distinct operator signature once, not once per request.
//!
//! Pure `std`: [`std::net::TcpListener`], one reader thread per
//! connection, a [`Condvar`]-signalled bounded admission queue, and a
//! fixed worker pool. No HTTP, no async runtime.
//!
//! # Lifecycle and backpressure
//!
//! - Each connection sends any number of request frames; responses
//!   carry the request's `id`, so a client may pipeline requests and
//!   match responses out of order.
//! - Admission is bounded: when `queue_depth` requests are already
//!   waiting, new work is rejected immediately with a `Busy` error
//!   rather than queued without limit — the client owns the retry,
//!   guided by the rejection's `retry_after_ms` hint (queue depth ×
//!   observed service time ÷ workers).
//! - A request's `budget.deadline_ms` counts from *admission*: time
//!   spent waiting in the queue is charged against it, and an already
//!   expired request is answered with `DeadlineExceeded` without being
//!   executed.
//! - A `Shutdown` frame drains: admission closes (`Busy`), queued and
//!   executing requests finish, then the shutdown response is written
//!   and the accept loop exits.
//!
//! # Fault tolerance
//!
//! - Request frames are length-bounded
//!   ([`max_frame_bytes`](ServerConfig::max_frame_bytes)): an oversized
//!   line is discarded and answered `BadRequest` with a size message,
//!   and the connection survives — an adversarial multi-GB line can no
//!   longer balloon the daemon.
//! - Every request executes under [`std::panic::catch_unwind`]: a
//!   panicking request is answered `Internal` with the panic message,
//!   the shared state (cache, queue, counters) stays poison-free (all
//!   locks recover a poisoned guard), and a worker thread that
//!   nevertheless dies is respawned by its supervisor.
//! - Under `--degrade bound-only`, sweep requests arriving with the
//!   queue past its high-water mark are answered from the analytic
//!   floor ([`crate::api::execute_degraded`]) instead of being shed —
//!   flagged `degraded: true` in the report.
//! - With `--snapshot <path>`, the profile cache is persisted
//!   crash-safely (tmp-file + atomic rename, versioned checksummed
//!   header) every [`snapshot_every`](ServerConfig::snapshot_every)
//!   completed requests and at drain; startup warm-restores from the
//!   snapshot, treating a truncated/corrupt/version-mismatched file as
//!   a logged cold start, never a crash.
//! - A seeded [`FaultPlan`] (`--fault-plan <json>`)
//!   injects connection drops, frame delays, frame corruption, and
//!   scripted worker panics for reproducible chaos testing.
//!
//! # Observability
//!
//! Aggregate counters are always available in-process via the `Stats`
//! request kind ([`crate::api::ServerStats`]). When the `vtrain-obs`
//! global registry is enabled, the daemon additionally publishes
//! `serve.requests`, `serve.completed`, `serve.busy_rejections`,
//! `serve.deadline_exceeded`, `serve.panics`, `serve.retries_observed`,
//! `serve.degraded_responses`, `serve.snapshot_saves`,
//! `serve.snapshot_loads`, `serve.snapshot_load_failures`,
//! `serve.queue_depth`, and the `serve.latency_ms` histogram.

pub mod faults;

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use vtrain_obs::Histogram;
use vtrain_profile::ProfileCache;

use crate::api::{
    ErrorBody, ErrorCode, Report, Request, RequestKind, Response, ServerStats, ShutdownReport,
};
use crate::error::Error;
use faults::{FaultPlan, FaultState, ResponseFault};

/// How a saturated daemon degrades instead of shedding load.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeMode {
    /// Answer sweep requests from the admissible analytic floor
    /// ([`crate::api::execute_degraded`]) once the queue passes the
    /// high-water mark, flagged `degraded: true` in the report.
    BoundOnly,
}

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:7071"` (port 0 picks an
    /// ephemeral port; read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing requests (default 2).
    pub workers: usize,
    /// Maximum requests waiting for a worker before admission rejects
    /// with `Busy` (default 32; executing requests do not count).
    pub queue_depth: usize,
    /// Sweep worker threads per request (default: all cores). Kept low
    /// when `workers` is high — the products multiply.
    pub threads: Option<usize>,
    /// Profile-cache capacity in entries (default unbounded).
    pub cache_capacity: Option<usize>,
    /// Largest accepted request frame, bytes (default 4 MiB). An
    /// oversized line is discarded and answered `BadRequest`; the
    /// connection survives.
    pub max_frame_bytes: usize,
    /// Degradation mode under overload (default `None`: shed with
    /// `Busy` once the queue is full).
    pub degrade: Option<DegradeMode>,
    /// Queue length at which degradation kicks in (default
    /// `queue_depth / 2`, at least 1; an explicit 0 degrades every
    /// sweep). Only consulted when [`degrade`](ServerConfig::degrade)
    /// is set.
    pub degrade_high_water: Option<usize>,
    /// Profile-cache snapshot path (default `None`: no persistence).
    /// Warm-restored at startup when the file exists.
    pub snapshot: Option<PathBuf>,
    /// Persist the snapshot every this many completed requests
    /// (default 32; a snapshot is also written at drain).
    pub snapshot_every: u64,
    /// Deterministic fault-injection plan (default `None`; test-only).
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7071".to_owned(),
            workers: 2,
            queue_depth: 32,
            threads: None,
            cache_capacity: None,
            max_frame_bytes: 4 << 20,
            degrade: None,
            degrade_high_water: None,
            snapshot: None,
            snapshot_every: 32,
            fault_plan: None,
        }
    }
}

impl ServerConfig {
    /// The queue length at which degraded mode engages.
    fn high_water(&self) -> usize {
        self.degrade_high_water.unwrap_or((self.queue_depth / 2).max(1))
    }
}

/// One admitted request waiting for (or holding) a worker.
struct Job {
    request: Request,
    /// The admission-relative deadline, pre-resolved so queue wait
    /// counts against it.
    deadline: Option<Instant>,
    admitted: Instant,
    /// Answer from the analytic floor: the queue was past the degrade
    /// high-water mark at admission.
    degraded: bool,
    out: Arc<Mutex<TcpStream>>,
}

/// Admission queue + drain flag behind one mutex, signalled by one
/// condvar for both "work available" (workers) and "work finished"
/// (the drain wait).
#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    draining: bool,
    executing: u64,
}

/// State shared by the accept loop, reader threads, and workers.
struct Shared {
    cache: Arc<ProfileCache>,
    config: ServerConfig,
    queue: Mutex<Queue>,
    cond: Condvar,
    requests: AtomicU64,
    completed: AtomicU64,
    busy_rejections: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
    retries_observed: AtomicU64,
    degraded_responses: AtomicU64,
    snapshot_saves: AtomicU64,
    snapshot_loads: AtomicU64,
    snapshot_load_failures: AtomicU64,
    /// Execution service time, summed/counted over completed jobs —
    /// the `retry_after_ms` hint's numerator.
    service_ms_total: AtomicU64,
    service_count: AtomicU64,
    /// Serializes snapshot writers (a slow save skips instead of
    /// queueing a second writer behind it).
    snapshot_lock: Mutex<()>,
    faults: Option<FaultState>,
    latency_ms: Histogram,
}

impl Shared {
    /// The admission queue, recovering a poisoned guard: queue state is
    /// a set of counters and a deque, consistent at every await point,
    /// so a worker that panicked while holding the lock left it valid.
    fn lock_queue(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn stats(&self) -> ServerStats {
        let (queue_depth, executing) = {
            let q = self.lock_queue();
            (q.jobs.len() as u64, q.executing)
        };
        let cache = self.cache.stats();
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            queue_depth,
            executing,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: self.cache.len() as u64,
            cache_evictions: self.cache.evictions(),
            latency_p50_ms: self.latency_ms.p50(),
            latency_p95_ms: self.latency_ms.p95(),
            latency_p99_ms: self.latency_ms.p99(),
            panics: self.panics.load(Ordering::Relaxed),
            retries_observed: self.retries_observed.load(Ordering::Relaxed),
            degraded_responses: self.degraded_responses.load(Ordering::Relaxed),
            snapshot_saves: self.snapshot_saves.load(Ordering::Relaxed),
            snapshot_loads: self.snapshot_loads.load(Ordering::Relaxed),
            snapshot_load_failures: self.snapshot_load_failures.load(Ordering::Relaxed),
        }
    }

    /// Publishes the always-on counters into the `vtrain-obs` global
    /// registry (no-op while tracing is disabled).
    fn publish_metrics(&self) {
        if !vtrain_obs::enabled() {
            return;
        }
        let m = vtrain_obs::global();
        let stats = self.stats();
        let set = |name: &str, v: u64| {
            let c = m.counter(name);
            c.add(v.saturating_sub(c.get()));
        };
        set("serve.requests", stats.requests);
        set("serve.completed", stats.completed);
        set("serve.busy_rejections", stats.busy_rejections);
        set("serve.deadline_exceeded", stats.deadline_exceeded);
        set("serve.panics", stats.panics);
        set("serve.retries_observed", stats.retries_observed);
        set("serve.degraded_responses", stats.degraded_responses);
        set("serve.snapshot_saves", stats.snapshot_saves);
        set("serve.snapshot_loads", stats.snapshot_loads);
        set("serve.snapshot_load_failures", stats.snapshot_load_failures);
        m.gauge("serve.queue_depth").set(stats.queue_depth);
        m.gauge("serve.latency_p95_ms").set(stats.latency_p95_ms);
        self.cache.publish_metrics();
    }

    /// The `Busy` rejection's backoff hint: how long until a worker
    /// plausibly frees up, from the queue depth ahead of the caller and
    /// the mean observed service time.
    fn retry_after_ms(&self, queued: usize) -> u64 {
        // Before any completion there is nothing observed; assume a
        // conservative 100 ms sweep.
        let mean_ms = self
            .service_ms_total
            .load(Ordering::Relaxed)
            .checked_div(self.service_count.load(Ordering::Relaxed))
            .map_or(100, |mean| mean.max(1));
        let workers = self.config.workers.max(1) as u64;
        ((queued as u64 + 1) * mean_ms / workers).max(1)
    }

    /// Persists the profile cache if a snapshot path is configured.
    /// Concurrent callers skip instead of queueing (the next trigger
    /// catches up); failures are logged, never fatal.
    fn maybe_save_snapshot(&self) {
        let Some(path) = &self.config.snapshot else { return };
        let Ok(_guard) = self.snapshot_lock.try_lock() else { return };
        match self.cache.save_snapshot(path) {
            Ok(entries) => {
                self.snapshot_saves.fetch_add(1, Ordering::Relaxed);
                let _ = entries;
            }
            Err(e) => eprintln!("vtrain serve: snapshot save failed: {e}"),
        }
    }
}

/// Writes one response frame, ignoring a peer that already hung up (its
/// request still ran; nothing is waiting on the bytes).
///
/// `faultable` responses additionally pass through the fault plan's
/// injection point (drop/delay/corrupt); `Stats` and `Shutdown` frames
/// are exempt — they are the health and lifecycle channel chaos tests
/// themselves rely on.
fn respond(shared: &Shared, out: &Arc<Mutex<TcpStream>>, response: &Response, faultable: bool) {
    let mut frame = response.to_frame().into_bytes();
    if faultable {
        if let Some(faults) = &shared.faults {
            let (fault, delay_ms) = faults.next_response_fault();
            if delay_ms > 0 {
                thread::sleep(Duration::from_millis(delay_ms));
            }
            match fault {
                ResponseFault::None => {}
                ResponseFault::Drop => {
                    let stream = out.lock().unwrap_or_else(|e| e.into_inner());
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    return;
                }
                ResponseFault::Corrupt => {
                    // Flip the high bit of a mid-payload byte: the frame
                    // is pure ASCII, so the result is invalid UTF-8 the
                    // client cannot mistake for a (different) valid
                    // response.
                    let mid = frame.len() / 2;
                    frame[mid] ^= 0x80;
                }
            }
        }
    }
    let mut stream = out.lock().unwrap_or_else(|e| e.into_inner());
    let _ = stream.write_all(&frame);
    let _ = stream.flush();
}

/// A bound serve daemon: accept loop not yet running.
///
/// ```no_run
/// use vtrain::serve::{Server, ServerConfig};
///
/// let server = Server::bind(ServerConfig::default())?;
/// eprintln!("listening on {}", server.local_addr());
/// server.run()?; // blocks until a Shutdown frame drains the daemon
/// # Ok::<(), vtrain::Error>(())
/// ```
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the configured address, prepares the shared state, and —
    /// when a snapshot path is configured and the file exists —
    /// warm-restores the profile cache from it. A snapshot that fails
    /// to restore (truncated, corrupt, version-mismatched) is a logged
    /// cold start, never a bind failure.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Server`] if the address cannot be bound.
    pub fn bind(config: ServerConfig) -> Result<Server, Error> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::server(format!("cannot bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::server(format!("cannot read bound address: {e}")))?;
        let cache = Arc::new(match config.cache_capacity {
            Some(capacity) => ProfileCache::with_capacity(capacity),
            None => ProfileCache::new(),
        });
        let (snapshot_loads, snapshot_load_failures) = match &config.snapshot {
            Some(path) if path.exists() => match cache.load_snapshot(path) {
                Ok(entries) => {
                    eprintln!(
                        "vtrain serve: warm start: {entries} cached profiles from {}",
                        path.display()
                    );
                    (1, 0)
                }
                Err(e) => {
                    eprintln!("vtrain serve: cold start ({e})");
                    (0, 1)
                }
            },
            _ => (0, 0),
        };
        let faults = config.fault_plan.clone().filter(FaultPlan::is_active).map(FaultState::new);
        let shared = Arc::new(Shared {
            cache,
            config,
            queue: Mutex::new(Queue::default()),
            cond: Condvar::new(),
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            retries_observed: AtomicU64::new(0),
            degraded_responses: AtomicU64::new(0),
            snapshot_saves: AtomicU64::new(0),
            snapshot_loads: AtomicU64::new(snapshot_loads),
            snapshot_load_failures: AtomicU64::new(snapshot_load_failures),
            service_ms_total: AtomicU64::new(0),
            service_count: AtomicU64::new(0),
            snapshot_lock: Mutex::new(()),
            faults,
            latency_ms: Histogram::new(),
        });
        Ok(Server { listener, local_addr, shared })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop until a `Shutdown` frame drains the daemon.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Server`] if accepting fails irrecoverably.
    pub fn run(self) -> Result<(), Error> {
        let supervisors: Vec<_> = (0..self.shared.config.workers.max(1))
            .map(|slot| {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || supervise_worker(&shared, slot))
            })
            .collect();
        for stream in self.listener.incoming() {
            if self.shared.lock_queue().draining {
                // Woken (possibly by the drain's own loopback connect)
                // after a shutdown: stop accepting.
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => return Err(Error::server(format!("accept failed: {e}"))),
            };
            let shared = Arc::clone(&self.shared);
            let addr = self.local_addr;
            thread::spawn(move || connection_loop(&shared, stream, addr));
        }
        // Drain already completed (the Shutdown handler waits for the
        // queue); workers exit on the draining flag.
        self.shared.cond.notify_all();
        for w in supervisors {
            let _ = w.join();
        }
        self.shared.publish_metrics();
        Ok(())
    }
}

/// Keeps one worker slot staffed: a worker thread that returns cleanly
/// (drain) ends the slot; one that dies — a panic escaping the per-job
/// isolation — is replaced, so a poisoned worker never silently shrinks
/// the pool.
fn supervise_worker(shared: &Arc<Shared>, slot: usize) {
    loop {
        let spawned = {
            let shared = Arc::clone(shared);
            thread::Builder::new()
                .name(format!("vtrain-worker-{slot}"))
                .spawn(move || worker_loop(&shared))
        };
        let Ok(worker) = spawned else { return };
        if worker.join().is_ok() {
            return;
        }
        if shared.lock_queue().draining {
            return;
        }
        eprintln!("vtrain serve: worker {slot} died outside request isolation; respawning");
    }
}

/// One frame read off a connection, bounded by `max_frame_bytes`.
enum Frame {
    /// The peer hung up (or the socket failed).
    Eof,
    /// One newline-terminated line within the bound.
    Line(String),
    /// A line that exceeded the bound; its bytes were discarded up to
    /// (and including) the terminating newline.
    TooLong,
}

/// Reads one bounded frame. Unlike `BufRead::lines`, an oversized line
/// never accumulates beyond `max + one buffer chunk` bytes in memory:
/// past the bound the line is streamed to the trash until its newline.
fn read_frame(reader: &mut BufReader<TcpStream>, max: usize) -> Frame {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = match reader.fill_buf() {
            Ok(c) => c,
            Err(_) => return Frame::Eof,
        };
        if chunk.is_empty() {
            // EOF: a trailing unterminated line still parses (matching
            // the previous `lines()` behavior).
            return if buf.is_empty() {
                Frame::Eof
            } else {
                Frame::Line(String::from_utf8_lossy(&buf).into_owned())
            };
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let over = buf.len() + pos > max;
                if !over {
                    buf.extend_from_slice(&chunk[..pos]);
                }
                reader.consume(pos + 1);
                return if over {
                    Frame::TooLong
                } else {
                    Frame::Line(String::from_utf8_lossy(&buf).into_owned())
                };
            }
            None => {
                let len = chunk.len();
                if buf.len() <= max {
                    buf.extend_from_slice(chunk);
                    buf.truncate(max + 1);
                }
                reader.consume(len);
                if buf.len() > max {
                    // Over the bound mid-line: stop buffering, stream
                    // the rest of the line into the void.
                    loop {
                        let chunk = match reader.fill_buf() {
                            Ok(c) => c,
                            Err(_) => return Frame::Eof,
                        };
                        if chunk.is_empty() {
                            return Frame::TooLong;
                        }
                        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
                            reader.consume(pos + 1);
                            return Frame::TooLong;
                        }
                        let len = chunk.len();
                        reader.consume(len);
                    }
                }
            }
        }
    }
}

/// Reads frames off one connection until EOF.
fn connection_loop(shared: &Arc<Shared>, stream: TcpStream, local_addr: SocketAddr) {
    let out = match stream.try_clone() {
        Ok(writer) => Arc::new(Mutex::new(writer)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let line = match read_frame(&mut reader, shared.config.max_frame_bytes) {
            Frame::Eof => return,
            Frame::TooLong => {
                shared.requests.fetch_add(1, Ordering::Relaxed);
                let body = ErrorBody::new(
                    ErrorCode::BadRequest,
                    format!(
                        "frame exceeds the {}-byte limit; the line was discarded",
                        shared.config.max_frame_bytes
                    ),
                );
                respond(shared, &out, &Response::err("", body), false);
                continue;
            }
            Frame::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let request: Request = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(e) => {
                // The frame never parsed, so there is no id to echo;
                // the empty id marks a frame-level failure.
                let body = ErrorBody::from_error(&Error::from(e));
                respond(shared, &out, &Response::err("", body), false);
                continue;
            }
        };
        if request.attempt > 1 {
            shared.retries_observed.fetch_add(1, Ordering::Relaxed);
        }
        match request.kind {
            RequestKind::Stats => {
                respond(
                    shared,
                    &out,
                    &Response::ok(request.id, Report::Stats(shared.stats())),
                    false,
                );
            }
            RequestKind::Shutdown => {
                drain(shared);
                let report = ShutdownReport { completed: shared.completed.load(Ordering::Relaxed) };
                respond(shared, &out, &Response::ok(request.id, Report::Shutdown(report)), false);
                shared.publish_metrics();
                // The accept loop blocks in `accept`; a loopback
                // connect wakes it to observe the draining flag.
                let _ = TcpStream::connect(local_addr);
                return;
            }
            RequestKind::Predict | RequestKind::Sweep | RequestKind::Validate => {
                admit(shared, request, &out);
            }
        }
    }
}

/// Admits one scenario request into the bounded queue, or rejects it
/// with `Busy` (carrying the backoff hint). Under a degrade mode, a
/// sweep arriving with the queue past its high-water mark is admitted
/// flagged for the bound-only path instead of waiting to be shed.
fn admit(shared: &Arc<Shared>, request: Request, out: &Arc<Mutex<TcpStream>>) {
    let admitted = Instant::now();
    let deadline =
        request.budget.and_then(|b| b.deadline_ms).map(|ms| admitted + Duration::from_millis(ms));
    let id = request.id.clone();
    let kind = request.kind;
    let rejection = {
        let mut q = shared.lock_queue();
        if q.draining {
            Some(("server is draining", q.jobs.len()))
        } else if q.jobs.len() >= shared.config.queue_depth {
            Some(("admission queue is full", q.jobs.len()))
        } else {
            let degraded = shared.config.degrade == Some(DegradeMode::BoundOnly)
                && kind == RequestKind::Sweep
                && q.jobs.len() >= shared.config.high_water();
            q.jobs.push_back(Job { request, deadline, admitted, degraded, out: Arc::clone(out) });
            None
        }
    };
    match rejection {
        None => shared.cond.notify_one(),
        Some((reason, queued)) => {
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            let body = ErrorBody::new(
                ErrorCode::Busy,
                format!("{reason} (queue depth {})", shared.config.queue_depth),
            )
            .with_retry_after(shared.retry_after_ms(queued));
            respond(shared, out, &Response::err(id, body), true);
        }
    }
}

/// Marks the daemon draining and blocks until queued and executing
/// requests have finished, then persists a final snapshot.
fn drain(shared: &Arc<Shared>) {
    let mut q = shared.lock_queue();
    q.draining = true;
    shared.cond.notify_all();
    while !(q.jobs.is_empty() && q.executing == 0) {
        q = shared.cond.wait(q).unwrap_or_else(|e| e.into_inner());
    }
    drop(q);
    shared.maybe_save_snapshot();
}

/// Decrements the executing count (and wakes the drain wait) when a
/// worker finishes a job — however it finishes: the drop runs even if
/// answering or bookkeeping panics, so `executing` can never leak and
/// wedge a drain.
struct ExecutingGuard<'a> {
    shared: &'a Shared,
}

impl Drop for ExecutingGuard<'_> {
    fn drop(&mut self) {
        let mut q = self.shared.lock_queue();
        q.executing -= 1;
        self.shared.cond.notify_all();
    }
}

/// One worker: pop, execute (panic-isolated), respond, repeat — until
/// draining and empty.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.lock_queue();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    q.executing += 1;
                    break job;
                }
                if q.draining {
                    return;
                }
                q = shared.cond.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let _guard = ExecutingGuard { shared };
        let executed = Instant::now();
        // Panic isolation: a panicking request answers `Internal` with
        // the panic message instead of killing the worker. The closure
        // only touches poison-recovering shared state (the cache's
        // locks all recover), so `AssertUnwindSafe` is sound: nothing
        // observable is left mid-mutation.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| execute_job(shared, &job)));
        let response = match result {
            Ok(response) => response,
            Err(payload) => {
                shared.panics.fetch_add(1, Ordering::Relaxed);
                Response::err(
                    job.request.id.clone(),
                    ErrorBody::new(
                        ErrorCode::Internal,
                        format!("request execution panicked: {}", panic_message(&payload)),
                    ),
                )
            }
        };
        let mut completed_now = 0;
        if matches!(
            &response.outcome,
            crate::api::Outcome::Err(body) if body.code == ErrorCode::DeadlineExceeded
        ) {
            shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        } else if matches!(&response.outcome, crate::api::Outcome::Ok(_)) {
            completed_now = shared.completed.fetch_add(1, Ordering::Relaxed) + 1;
            if job.degraded {
                shared.degraded_responses.fetch_add(1, Ordering::Relaxed);
            }
            let service_ms = executed.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
            shared.service_ms_total.fetch_add(service_ms, Ordering::Relaxed);
            shared.service_count.fetch_add(1, Ordering::Relaxed);
        }
        respond(shared, &job.out, &response, true);
        let elapsed_ms = job.admitted.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        shared.latency_ms.record(elapsed_ms);
        shared.publish_metrics();
        if completed_now > 0
            && shared.config.snapshot.is_some()
            && completed_now % shared.config.snapshot_every.max(1) == 0
        {
            shared.maybe_save_snapshot();
        }
        // `_guard` drops here: executing -= 1, drain wait woken.
    }
}

/// Renders a caught panic payload (the `panic!` message for the common
/// `&str`/`String` payloads).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Executes one admitted job with its deadline re-based to admission:
/// the remaining budget, not the original, reaches the executor.
fn execute_job(shared: &Arc<Shared>, job: &Job) -> Response {
    if let Some(faults) = &shared.faults {
        faults.on_execution();
    }
    let mut request = job.request.clone();
    if let Some(deadline) = job.deadline {
        let Some(remaining) =
            deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
        else {
            return Response::err(
                request.id,
                ErrorBody::new(
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "deadline exceeded: request spent its {} ms budget waiting in the queue",
                        job.request.budget.and_then(|b| b.deadline_ms).unwrap_or(0)
                    ),
                ),
            );
        };
        let mut budget = request.budget.unwrap_or_default();
        budget.deadline_ms = Some(remaining.as_millis().max(1).min(u128::from(u64::MAX)) as u64);
        request.budget = Some(budget);
    }
    if job.degraded {
        crate::api::execute_degraded(&request, &shared.cache, shared.config.threads)
    } else {
        crate::api::execute(&request, &shared.cache, shared.config.threads)
    }
}
