//! Sweep-as-a-service: the `vtrain serve` daemon.
//!
//! A long-running process that binds a TCP port, speaks the versioned
//! wire API of [`crate::api`] in newline-delimited JSON frames, and
//! multiplexes concurrent scenario requests onto a worker pool sharing
//! one [`ProfileCache`] — so a fleet of sweeps pays the profiling cost
//! of each distinct operator signature once, not once per request.
//!
//! Pure `std`: [`std::net::TcpListener`], one reader thread per
//! connection, a [`Condvar`]-signalled bounded admission queue, and a
//! fixed worker pool. No HTTP, no async runtime.
//!
//! # Lifecycle and backpressure
//!
//! - Each connection sends any number of request frames; responses
//!   carry the request's `id`, so a client may pipeline requests and
//!   match responses out of order.
//! - Admission is bounded: when `queue_depth` requests are already
//!   waiting, new work is rejected immediately with a `Busy` error
//!   rather than queued without limit — the client owns the retry.
//! - A request's `budget.deadline_ms` counts from *admission*: time
//!   spent waiting in the queue is charged against it, and an already
//!   expired request is answered with `DeadlineExceeded` without being
//!   executed.
//! - A `Shutdown` frame drains: admission closes (`Busy`), queued and
//!   executing requests finish, then the shutdown response is written
//!   and the accept loop exits.
//!
//! # Observability
//!
//! Aggregate counters are always available in-process via the `Stats`
//! request kind ([`crate::api::ServerStats`]). When the `vtrain-obs`
//! global registry is enabled, the daemon additionally publishes
//! `serve.requests`, `serve.completed`, `serve.busy_rejections`,
//! `serve.deadline_exceeded`, `serve.queue_depth`, and the
//! `serve.latency_ms` histogram.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use vtrain_obs::Histogram;
use vtrain_profile::ProfileCache;

use crate::api::{
    ErrorBody, ErrorCode, Report, Request, RequestKind, Response, ServerStats, ShutdownReport,
};
use crate::error::Error;

/// Configuration of a [`Server`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:7071"` (port 0 picks an
    /// ephemeral port; read it back with [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads executing requests (default 2).
    pub workers: usize,
    /// Maximum requests waiting for a worker before admission rejects
    /// with `Busy` (default 32; executing requests do not count).
    pub queue_depth: usize,
    /// Sweep worker threads per request (default: all cores). Kept low
    /// when `workers` is high — the products multiply.
    pub threads: Option<usize>,
    /// Profile-cache capacity in entries (default unbounded).
    pub cache_capacity: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7071".to_owned(),
            workers: 2,
            queue_depth: 32,
            threads: None,
            cache_capacity: None,
        }
    }
}

/// One admitted request waiting for (or holding) a worker.
struct Job {
    request: Request,
    /// The admission-relative deadline, pre-resolved so queue wait
    /// counts against it.
    deadline: Option<Instant>,
    admitted: Instant,
    out: Arc<Mutex<TcpStream>>,
}

/// Admission queue + drain flag behind one mutex, signalled by one
/// condvar for both "work available" (workers) and "work finished"
/// (the drain wait).
#[derive(Default)]
struct Queue {
    jobs: VecDeque<Job>,
    draining: bool,
    executing: u64,
}

/// State shared by the accept loop, reader threads, and workers.
struct Shared {
    cache: Arc<ProfileCache>,
    config: ServerConfig,
    queue: Mutex<Queue>,
    cond: Condvar,
    requests: AtomicU64,
    completed: AtomicU64,
    busy_rejections: AtomicU64,
    deadline_exceeded: AtomicU64,
    latency_ms: Histogram,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let (queue_depth, executing) = {
            let q = self.queue.lock().expect("queue lock");
            (q.jobs.len() as u64, q.executing)
        };
        let cache = self.cache.stats();
        ServerStats {
            requests: self.requests.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            queue_depth,
            executing,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_entries: self.cache.len() as u64,
            cache_evictions: self.cache.evictions(),
            latency_p50_ms: self.latency_ms.p50(),
            latency_p95_ms: self.latency_ms.p95(),
            latency_p99_ms: self.latency_ms.p99(),
        }
    }

    /// Publishes the always-on counters into the `vtrain-obs` global
    /// registry (no-op while tracing is disabled).
    fn publish_metrics(&self) {
        if !vtrain_obs::enabled() {
            return;
        }
        let m = vtrain_obs::global();
        let stats = self.stats();
        let set = |name: &str, v: u64| {
            let c = m.counter(name);
            c.add(v.saturating_sub(c.get()));
        };
        set("serve.requests", stats.requests);
        set("serve.completed", stats.completed);
        set("serve.busy_rejections", stats.busy_rejections);
        set("serve.deadline_exceeded", stats.deadline_exceeded);
        m.gauge("serve.queue_depth").set(stats.queue_depth);
        m.gauge("serve.latency_p95_ms").set(stats.latency_p95_ms);
        self.cache.publish_metrics();
    }
}

/// Writes one response frame, ignoring a peer that already hung up (its
/// request still ran; nothing is waiting on the bytes).
fn respond(out: &Arc<Mutex<TcpStream>>, response: &Response) {
    let frame = response.to_frame();
    let mut stream = out.lock().expect("stream lock");
    let _ = stream.write_all(frame.as_bytes());
    let _ = stream.flush();
}

/// A bound serve daemon: accept loop not yet running.
///
/// ```no_run
/// use vtrain::serve::{Server, ServerConfig};
///
/// let server = Server::bind(ServerConfig::default())?;
/// eprintln!("listening on {}", server.local_addr());
/// server.run()?; // blocks until a Shutdown frame drains the daemon
/// # Ok::<(), vtrain::Error>(())
/// ```
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the configured address and prepares the shared state.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Server`] if the address cannot be bound.
    pub fn bind(config: ServerConfig) -> Result<Server, Error> {
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| Error::server(format!("cannot bind {}: {e}", config.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| Error::server(format!("cannot read bound address: {e}")))?;
        let cache = Arc::new(match config.cache_capacity {
            Some(capacity) => ProfileCache::with_capacity(capacity),
            None => ProfileCache::new(),
        });
        let shared = Arc::new(Shared {
            cache,
            config,
            queue: Mutex::new(Queue::default()),
            cond: Condvar::new(),
            requests: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            latency_ms: Histogram::new(),
        });
        Ok(Server { listener, local_addr, shared })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop until a `Shutdown` frame drains the daemon.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Server`] if accepting fails irrecoverably.
    pub fn run(self) -> Result<(), Error> {
        let workers: Vec<_> = (0..self.shared.config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&self.shared);
                thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        for stream in self.listener.incoming() {
            if self.shared.queue.lock().expect("queue lock").draining {
                // Woken (possibly by the drain's own loopback connect)
                // after a shutdown: stop accepting.
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => return Err(Error::server(format!("accept failed: {e}"))),
            };
            let shared = Arc::clone(&self.shared);
            let addr = self.local_addr;
            thread::spawn(move || connection_loop(&shared, stream, addr));
        }
        // Drain already completed (the Shutdown handler waits for the
        // queue); workers exit on the draining flag.
        self.shared.cond.notify_all();
        for w in workers {
            let _ = w.join();
        }
        self.shared.publish_metrics();
        Ok(())
    }
}

/// Reads frames off one connection until EOF.
fn connection_loop(shared: &Arc<Shared>, stream: TcpStream, local_addr: SocketAddr) {
    let out = match stream.try_clone() {
        Ok(writer) => Arc::new(Mutex::new(writer)),
        Err(_) => return,
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let request: Request = match serde_json::from_str(&line) {
            Ok(r) => r,
            Err(e) => {
                // The frame never parsed, so there is no id to echo;
                // the empty id marks a frame-level failure.
                let body = ErrorBody::from_error(&Error::from(e));
                respond(&out, &Response::err("", body));
                continue;
            }
        };
        match request.kind {
            RequestKind::Stats => {
                respond(&out, &Response::ok(request.id, Report::Stats(shared.stats())));
            }
            RequestKind::Shutdown => {
                drain(shared);
                let report = ShutdownReport { completed: shared.completed.load(Ordering::Relaxed) };
                respond(&out, &Response::ok(request.id, Report::Shutdown(report)));
                shared.publish_metrics();
                // The accept loop blocks in `accept`; a loopback
                // connect wakes it to observe the draining flag.
                let _ = TcpStream::connect(local_addr);
                return;
            }
            RequestKind::Predict | RequestKind::Sweep | RequestKind::Validate => {
                admit(shared, request, &out);
            }
        }
    }
}

/// Admits one scenario request into the bounded queue, or rejects it
/// with `Busy`.
fn admit(shared: &Arc<Shared>, request: Request, out: &Arc<Mutex<TcpStream>>) {
    let admitted = Instant::now();
    let deadline =
        request.budget.and_then(|b| b.deadline_ms).map(|ms| admitted + Duration::from_millis(ms));
    let id = request.id.clone();
    let rejection = {
        let mut q = shared.queue.lock().expect("queue lock");
        if q.draining {
            Some("server is draining")
        } else if q.jobs.len() >= shared.config.queue_depth {
            Some("admission queue is full")
        } else {
            q.jobs.push_back(Job { request, deadline, admitted, out: Arc::clone(out) });
            None
        }
    };
    match rejection {
        None => shared.cond.notify_one(),
        Some(reason) => {
            shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
            respond(
                out,
                &Response::err(
                    id,
                    ErrorBody::new(
                        ErrorCode::Busy,
                        format!("{reason} (queue depth {})", shared.config.queue_depth),
                    ),
                ),
            );
        }
    }
}

/// Marks the daemon draining and blocks until queued and executing
/// requests have finished.
fn drain(shared: &Arc<Shared>) {
    let mut q = shared.queue.lock().expect("queue lock");
    q.draining = true;
    shared.cond.notify_all();
    while !(q.jobs.is_empty() && q.executing == 0) {
        q = shared.cond.wait(q).expect("queue lock");
    }
}

/// One worker: pop, execute, respond, repeat — until draining and empty.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    q.executing += 1;
                    break job;
                }
                if q.draining {
                    return;
                }
                q = shared.cond.wait(q).expect("queue lock");
            }
        };
        let response = execute_job(shared, &job);
        if matches!(
            &response.outcome,
            crate::api::Outcome::Err(body) if body.code == ErrorCode::DeadlineExceeded
        ) {
            shared.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
        } else if matches!(&response.outcome, crate::api::Outcome::Ok(_)) {
            shared.completed.fetch_add(1, Ordering::Relaxed);
        }
        respond(&job.out, &response);
        let elapsed_ms = job.admitted.elapsed().as_millis().min(u128::from(u64::MAX)) as u64;
        shared.latency_ms.record(elapsed_ms);
        shared.publish_metrics();
        let mut q = shared.queue.lock().expect("queue lock");
        q.executing -= 1;
        // Wake the drain wait (and any idle sibling) on completion.
        shared.cond.notify_all();
    }
}

/// Executes one admitted job with its deadline re-based to admission:
/// the remaining budget, not the original, reaches the executor.
fn execute_job(shared: &Arc<Shared>, job: &Job) -> Response {
    let mut request = job.request.clone();
    if let Some(deadline) = job.deadline {
        let Some(remaining) =
            deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
        else {
            return Response::err(
                request.id,
                ErrorBody::new(
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "deadline exceeded: request spent its {} ms budget waiting in the queue",
                        job.request.budget.and_then(|b| b.deadline_ms).unwrap_or(0)
                    ),
                ),
            );
        };
        let mut budget = request.budget.unwrap_or_default();
        budget.deadline_ms = Some(remaining.as_millis().max(1).min(u128::from(u64::MAX)) as u64);
        request.budget = Some(budget);
    }
    crate::api::execute(&request, &shared.cache, shared.config.threads)
}
