//! Deterministic, seeded fault injection for the serve daemon.
//!
//! A [`FaultPlan`] describes *what can go wrong* — dropped connections,
//! delayed or corrupted response frames, forced worker panics — as
//! probability knobs plus an explicit scripted schedule, in the style of
//! discrete-event network fault models. The daemon consults the plan's
//! runtime state (`FaultState`) at each injection point:
//!
//! - **before writing a scenario response frame**: drop the connection,
//!   delay the frame, or corrupt its bytes;
//! - **before executing an admitted scenario request**: panic, when the
//!   request's execution sequence number is on the scripted
//!   `panic_on_requests` list.
//!
//! Every probabilistic decision is a pure function of the plan's `seed`
//! and a monotonic injection-point counter, so a single-connection run
//! is exactly reproducible and a concurrent run draws the same fault
//! *sequence* (scheduling may permute which request observes which
//! fault, but never how many of each kind occur per N events).
//!
//! Wired behind `vtrain serve --fault-plan <json>` and the in-process
//! [`ServerConfig::fault_plan`](crate::serve::ServerConfig) field, so
//! chaos tests construct plans directly. Server-state frames (`Stats`,
//! `Shutdown`) are exempt from response faults: they are the health and
//! lifecycle channel the chaos harness itself relies on.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::error::Error;

/// A deterministic fault-injection plan: probability knobs plus a
/// scripted panic schedule, all seeded.
///
/// The default plan injects nothing; `vtrain serve` without
/// `--fault-plan` never consults one.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct FaultPlan {
    /// Seed of every probabilistic decision (same seed, same faults).
    #[serde(default)]
    pub seed: u64,
    /// Probability (0..=1) that a scenario response frame is answered by
    /// dropping the connection instead — the client sees a reset/EOF and
    /// must retry.
    #[serde(default)]
    pub drop_response: f64,
    /// Probability (0..=1) that a scenario response frame is delayed by
    /// a deterministic duration in `1..=max_delay_ms` before being
    /// written.
    #[serde(default)]
    pub delay_response: f64,
    /// Upper bound of an injected delay, milliseconds (default 20; a
    /// plan that leaves it unset — or 0 — gets the default).
    #[serde(default)]
    pub max_delay_ms: u64,
    /// Probability (0..=1) that a scenario response frame has one payload
    /// byte corrupted before the write — the client's parse fails and it
    /// must tear down the connection and retry.
    #[serde(default)]
    pub corrupt_response: f64,
    /// Scripted schedule: 1-based execution sequence numbers (counted
    /// over all scenario requests reaching a worker, retries included)
    /// whose execution panics — exercising the daemon's `catch_unwind`
    /// isolation and worker respawn.
    #[serde(default)]
    pub panic_on_requests: Vec<u64>,
}

fn default_max_delay_ms() -> u64 {
    20
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            drop_response: 0.0,
            delay_response: 0.0,
            max_delay_ms: default_max_delay_ms(),
            corrupt_response: 0.0,
            panic_on_requests: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// Parses a plan from its JSON form (the `--fault-plan <json>` file
    /// contents).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Scenario`] for unparseable JSON, unknown fields,
    /// or out-of-range probabilities.
    pub fn from_json(text: &str) -> Result<FaultPlan, Error> {
        let mut plan: FaultPlan = serde_json::from_str(text)
            .map_err(|e| Error::scenario(format!("invalid fault plan: {e}")))?;
        if plan.max_delay_ms == 0 {
            plan.max_delay_ms = default_max_delay_ms();
        }
        for (name, p) in [
            ("drop_response", plan.drop_response),
            ("delay_response", plan.delay_response),
            ("corrupt_response", plan.corrupt_response),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(Error::scenario(format!(
                    "invalid fault plan: {name} = {p} is not a probability in 0..=1"
                )));
            }
        }
        Ok(plan)
    }

    /// True if the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.drop_response > 0.0
            || self.delay_response > 0.0
            || self.corrupt_response > 0.0
            || !self.panic_on_requests.is_empty()
    }
}

/// What to do to one scenario response frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ResponseFault {
    /// Write the frame normally.
    None,
    /// Drop the connection instead of writing.
    Drop,
    /// Corrupt one payload byte, then write.
    Corrupt,
}

/// Runtime state of a [`FaultPlan`]: the plan plus the monotonic
/// injection-point counters its decisions are keyed on.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    /// Scenario response frames considered so far.
    responses: AtomicU64,
    /// Scenario requests handed to a worker so far.
    executions: AtomicU64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> FaultState {
        FaultState { plan, responses: AtomicU64::new(0), executions: AtomicU64::new(0) }
    }

    /// Decides the fate of the next scenario response frame. Drop wins
    /// over corrupt (independent draws from disjoint seed streams); the
    /// returned delay (0 = none) applies before either.
    pub(crate) fn next_response_fault(&self) -> (ResponseFault, u64) {
        let seq = self.responses.fetch_add(1, Ordering::Relaxed);
        let fault = if chance(self.plan.seed, 0x1, seq, self.plan.drop_response) {
            ResponseFault::Drop
        } else if chance(self.plan.seed, 0x2, seq, self.plan.corrupt_response) {
            ResponseFault::Corrupt
        } else {
            ResponseFault::None
        };
        let delay_ms = if chance(self.plan.seed, 0x3, seq, self.plan.delay_response) {
            1 + draw(self.plan.seed, 0x4, seq) % self.plan.max_delay_ms.max(1)
        } else {
            0
        };
        (fault, delay_ms)
    }

    /// Called once per scenario request reaching a worker; panics when
    /// the execution's 1-based sequence number is on the scripted
    /// schedule. The panic unwinds into the worker's `catch_unwind`.
    pub(crate) fn on_execution(&self) {
        let seq = self.executions.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.panic_on_requests.contains(&seq) {
            panic!("injected fault: forced panic on execution #{seq}");
        }
    }
}

/// One SplitMix64 draw keyed on `(seed, stream, seq)` — deterministic,
/// uniform, and independent across streams.
fn draw(seed: u64, stream: u64, seq: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add(seq.wrapping_mul(0xbf58476d1ce4e5b9));
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// True with probability `p`, deterministically in `(seed, stream, seq)`.
fn chance(seed: u64, stream: u64, seq: u64, p: f64) -> bool {
    if p <= 0.0 {
        return false;
    }
    if p >= 1.0 {
        return true;
    }
    // 53 uniform mantissa bits → a uniform draw in [0, 1).
    let unit = (draw(seed, stream, seq) >> 11) as f64 / (1u64 << 53) as f64;
    unit < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let state = FaultState::new(plan);
        for _ in 0..100 {
            assert_eq!(state.next_response_fault(), (ResponseFault::None, 0));
            state.on_execution(); // never panics: empty schedule
        }
    }

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let plan = FaultPlan {
            seed: 42,
            drop_response: 0.3,
            delay_response: 0.5,
            corrupt_response: 0.2,
            ..FaultPlan::default()
        };
        let a = FaultState::new(plan.clone());
        let b = FaultState::new(plan.clone());
        let seq_a: Vec<_> = (0..200).map(|_| a.next_response_fault()).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.next_response_fault()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same fault sequence");
        let reseeded = FaultState::new(FaultPlan { seed: 43, ..plan });
        let seq_c: Vec<_> = (0..200).map(|_| reseeded.next_response_fault()).collect();
        assert_ne!(seq_a, seq_c, "different seed, different sequence");
        // Frequencies track the knobs (loose bounds; 200 draws).
        let drops = seq_a.iter().filter(|(f, _)| *f == ResponseFault::Drop).count();
        let delays = seq_a.iter().filter(|(_, d)| *d > 0).count();
        assert!((30..=90).contains(&drops), "~30% drops, got {drops}/200");
        assert!((60..=140).contains(&delays), "~50% delays, got {delays}/200");
        assert!(seq_a.iter().all(|(_, d)| *d <= plan.max_delay_ms));
    }

    #[test]
    fn scripted_panics_fire_on_exact_sequence_numbers() {
        let plan = FaultPlan { panic_on_requests: vec![3], ..FaultPlan::default() };
        let state = FaultState::new(plan);
        state.on_execution();
        state.on_execution();
        let panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| state.on_execution()));
        assert!(panicked.is_err(), "execution #3 must panic");
        state.on_execution(); // #4 is clean again
    }

    #[test]
    fn json_plans_validate_probabilities_and_reject_unknown_fields() {
        let plan = FaultPlan::from_json(
            r#"{"seed": 7, "drop_response": 0.1, "panic_on_requests": [2, 5]}"#,
        )
        .expect("valid plan parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.max_delay_ms, 20, "defaults fill unset knobs");
        assert!(plan.is_active());
        assert!(FaultPlan::from_json(r#"{"drop_response": 1.5}"#).is_err());
        assert!(FaultPlan::from_json(r#"{"surprise": true}"#).is_err());
        assert!(FaultPlan::from_json("not json").is_err());
    }
}
