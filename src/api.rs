//! The versioned wire API — one schema for the CLI and the serve daemon.
//!
//! Before this module the machine interface was whatever the CLI happened
//! to print. [`Request`]/[`Response`] replace that: a `v: 1` envelope with
//! `deny_unknown_fields` throughout, spoken verbatim on `vtrain serve`'s
//! newline-delimited JSON connections and emitted byte-identically by
//! `vtrain <predict|sweep|validate> --json` (pinned by integration test).
//! Downstream tooling parses one schema regardless of transport.
//!
//! # Wire format
//!
//! One JSON document per line. Field names are the Rust identifiers;
//! enums are externally tagged, so a request kind is the bare string
//! `"Sweep"` and an outcome is `{"Ok": {...}}` or `{"Err": {...}}`.
//! Serialized envelopes are key-sorted ([`to_stable_json`]) so equal
//! values are equal bytes, whoever produced them.
//!
//! ```json
//! {"id": "r1", "kind": "Sweep", "scenario": { ... }, "v": 1}
//! {"id": "r1", "outcome": {"Ok": {"Sweep": { ... }}}, "v": 1}
//! ```
//!
//! # Error codes and exit codes
//!
//! [`ErrorCode`] is the single `Error -> (code, exit)` table both the CLI
//! and the server map through: bad input exits 2, an admission rejection
//! exits 3, a blown deadline/point budget exits 4, anything internal
//! exits 1.

use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize, Value};
use vtrain_core::search::{AbortReason, CancelToken, DesignPoint, SweepGoal, SweepRun};
use vtrain_core::{IterationEstimate, TrainingProjection};
use vtrain_profile::ProfileCache;

use crate::description::Scenario;
use crate::error::Error;

/// The wire-envelope version this build speaks.
pub const WIRE_VERSION: u64 = 1;

/// One request frame.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Request {
    /// Envelope version; must equal [`WIRE_VERSION`].
    pub v: u64,
    /// Caller-chosen correlation id, echoed verbatim in the [`Response`].
    pub id: String,
    /// What to do.
    pub kind: RequestKind,
    /// The scenario to run (required for `Predict`/`Sweep`/`Validate`,
    /// ignored by the server-state kinds).
    #[serde(default)]
    pub scenario: Option<Scenario>,
    /// Per-request limits; absent means the server's defaults.
    #[serde(default)]
    pub budget: Option<Budget>,
    /// Delivery attempt of this request, counted from 1 by retrying
    /// clients re-sending the same idempotent `id`; `0` (the wire
    /// default) means the sender does not track attempts. The server
    /// tallies `attempt > 1` into its `retries_observed` counter.
    #[serde(default)]
    pub attempt: u64,
}

impl Request {
    /// A version-1 request over `scenario` with no budget.
    pub fn new(id: impl Into<String>, kind: RequestKind, scenario: Scenario) -> Request {
        Request {
            v: WIRE_VERSION,
            id: id.into(),
            kind,
            scenario: Some(scenario),
            budget: None,
            attempt: 0,
        }
    }

    /// Serializes the request as one key-sorted wire frame (newline
    /// terminated).
    pub fn to_frame(&self) -> String {
        let mut frame = to_stable_json(self);
        frame.push('\n');
        frame
    }
}

/// The operation a [`Request`] asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Simulate the scenario's concrete plan.
    Predict,
    /// Explore the scenario's design space.
    Sweep,
    /// Parse and resolve every section without simulating.
    Validate,
    /// Report the server's aggregate counters (serve only).
    Stats,
    /// Drain in-flight work, then stop accepting (serve only).
    Shutdown,
}

/// Per-request execution limits, enforced cooperatively by the sweep
/// executor's candidate loop.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Budget {
    /// Wall-clock deadline, milliseconds from admission.
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// Maximum design points evaluated before the sweep must stop.
    #[serde(default)]
    pub max_points: Option<u64>,
}

impl Budget {
    /// True if neither limit is set.
    pub fn is_empty(&self) -> bool {
        self.deadline_ms.is_none() && self.max_points.is_none()
    }
}

/// One response frame: the request's `id` plus its outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Response {
    /// Envelope version (always [`WIRE_VERSION`]).
    pub v: u64,
    /// The request's correlation id, echoed verbatim.
    pub id: String,
    /// The result or the failure.
    pub outcome: Outcome,
}

impl Response {
    /// A success response.
    pub fn ok(id: impl Into<String>, report: Report) -> Response {
        Response { v: WIRE_VERSION, id: id.into(), outcome: Outcome::Ok(report) }
    }

    /// A failure response.
    pub fn err(id: impl Into<String>, body: ErrorBody) -> Response {
        Response { v: WIRE_VERSION, id: id.into(), outcome: Outcome::Err(body) }
    }

    /// Serializes the response as stable (key-sorted) JSON — the exact
    /// bytes the server writes and `--json` prints.
    pub fn to_json(&self) -> String {
        to_stable_json(self)
    }

    /// [`to_json`](Response::to_json) plus the frame-terminating newline.
    pub fn to_frame(&self) -> String {
        let mut frame = self.to_json();
        frame.push('\n');
        frame
    }
}

/// Success or failure of one request.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Outcome {
    /// The request ran to completion.
    Ok(Report),
    /// The request was rejected or failed.
    Err(ErrorBody),
}

/// The payload of a successful [`Response`], tagged by request kind.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Report {
    /// `Predict` result.
    Predict(PredictReport),
    /// `Sweep` result.
    Sweep(SweepReport),
    /// `Validate` result.
    Validate(ValidateReport),
    /// `Stats` result.
    Stats(ServerStats),
    /// `Shutdown` acknowledgement, sent after the drain completes.
    Shutdown(ShutdownReport),
}

/// A predicted iteration: the resolved model/plan labels, the estimate,
/// and (when the scenario carries a token budget) the end-to-end
/// projection.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PredictReport {
    /// Resolved model display label.
    pub model: String,
    /// Resolved plan display label.
    pub plan: String,
    /// The predicted iteration.
    pub estimate: IterationEstimate,
    /// End-to-end projection over the scenario's token budget, if any.
    #[serde(default)]
    pub projection: Option<TrainingProjection>,
}

/// A sweep's deterministic result: per-variant winner points, without
/// the timing/cache counters of `SweepStats` (those are host- and
/// run-dependent, which would break the byte-identity pin between CLI
/// and server; ask the server's `Stats` kind for aggregate counters).
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepReport {
    /// The goal the sweep guaranteed.
    pub goal: SweepGoal,
    /// One entry per placement variant (exactly one without a placement
    /// axis, labelled `""`).
    pub variants: Vec<SweepVariant>,
    /// True when the server answered in degraded bound-only mode
    /// (`--degrade bound-only` under overload): point `iteration_time`s
    /// are admissible analytic floors, not simulated estimates, and
    /// utilization/occupancy/busy fields are zeroed.
    #[serde(default)]
    pub degraded: bool,
}

/// One placement variant of a [`SweepReport`].
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepVariant {
    /// The variant's label (empty without a placement axis).
    pub label: String,
    /// Candidate plans submitted.
    pub candidates: usize,
    /// Candidates pruned as infeasible before lowering.
    pub pruned: usize,
    /// The goal's winner points, in candidate order.
    pub points: Vec<DesignPoint>,
    /// Why the sweep stopped early, if it did.
    #[serde(default)]
    pub aborted: Option<AbortReason>,
}

impl SweepReport {
    /// Builds the wire report of a finished [`SweepRun`].
    pub fn from_run(goal: SweepGoal, run: &SweepRun) -> SweepReport {
        SweepReport {
            goal,
            degraded: false,
            variants: run
                .variants()
                .iter()
                .map(|v| SweepVariant {
                    label: v.label.clone(),
                    candidates: v.outcome.stats.candidates,
                    pruned: v.outcome.stats.pruned,
                    points: v.outcome.points.clone(),
                    aborted: v.outcome.aborted,
                })
                .collect(),
        }
    }
}

/// A validated scenario's resolved summary.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ValidateReport {
    /// Resolved model display label.
    pub model: String,
    /// GPUs in the resolved cluster.
    pub cluster_gpus: usize,
    /// The cluster's GPU name.
    pub gpu: String,
    /// Resolved plan display label, when the scenario has one.
    #[serde(default)]
    pub plan: Option<String>,
    /// The sweep goal, when the scenario has a sweep section.
    #[serde(default)]
    pub sweep_goal: Option<SweepGoal>,
}

/// Aggregate serve-daemon counters, reported by the `Stats` kind.
///
/// Counters are monotonic over the daemon's lifetime; clients diff two
/// reports to attribute traffic to an interval (e.g. the cache hit-rate
/// of one repeated scenario).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ServerStats {
    /// Frames admitted (parsed and queued or answered), including
    /// rejected ones.
    pub requests: u64,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests rejected at admission with `Busy`.
    pub busy_rejections: u64,
    /// Requests that blew their deadline or point budget.
    pub deadline_exceeded: u64,
    /// Requests queued but not yet executing, at report time.
    pub queue_depth: u64,
    /// Requests executing at report time.
    pub executing: u64,
    /// Shared profile-cache hits over the daemon's lifetime.
    pub cache_hits: u64,
    /// Shared profile-cache misses over the daemon's lifetime.
    pub cache_misses: u64,
    /// Profiles currently cached.
    pub cache_entries: u64,
    /// Profiles evicted by the capacity bound.
    pub cache_evictions: u64,
    /// Median request latency, ms (admission to response write).
    pub latency_p50_ms: u64,
    /// 95th-percentile request latency, ms.
    pub latency_p95_ms: u64,
    /// 99th-percentile request latency, ms.
    pub latency_p99_ms: u64,
    /// Requests whose execution panicked; each was answered `Internal`
    /// with the panic message while the worker respawned.
    #[serde(default)]
    pub panics: u64,
    /// Requests carrying a client-reported `attempt > 1` — retries the
    /// server actually saw again.
    #[serde(default)]
    pub retries_observed: u64,
    /// Sweep requests answered from the analytic floor because the
    /// queue was past its degrade high-water mark.
    #[serde(default)]
    pub degraded_responses: u64,
    /// Profile-cache snapshots persisted (tmp-file + atomic rename).
    #[serde(default)]
    pub snapshot_saves: u64,
    /// Snapshots successfully restored at startup (0 or 1).
    #[serde(default)]
    pub snapshot_loads: u64,
    /// Startup snapshot restores rejected (missing, truncated, corrupt,
    /// or version-mismatched) — each one a logged cold start.
    #[serde(default)]
    pub snapshot_load_failures: u64,
}

/// Acknowledgement of a `Shutdown` frame, sent once the queue has
/// drained and no request is executing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ShutdownReport {
    /// Requests completed over the daemon's lifetime, including those
    /// drained after the shutdown frame arrived.
    pub completed: u64,
}

/// The stable error classification shared by the CLI's exit codes and
/// the server's wire errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// The request or scenario is malformed or infeasible (exit 2).
    BadRequest,
    /// The admission queue was full or the server is draining (exit 3).
    Busy,
    /// The deadline or point budget was exceeded (exit 4).
    DeadlineExceeded,
    /// An internal or I/O failure (exit 1).
    Internal,
}

impl ErrorCode {
    /// The one `Error -> code` table (the CLI and the server must never
    /// disagree on classification).
    pub fn classify(error: &Error) -> ErrorCode {
        match error {
            Error::Model(_)
            | Error::Plan(_)
            | Error::Estimate(_)
            | Error::Parse(_)
            | Error::Scenario(_) => ErrorCode::BadRequest,
            Error::Busy(_) => ErrorCode::Busy,
            Error::Deadline(_) => ErrorCode::DeadlineExceeded,
            Error::Io(_) | Error::Server(_) => ErrorCode::Internal,
        }
    }

    /// The CLI process exit code of this classification.
    pub fn exit_code(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 2,
            ErrorCode::Busy => 3,
            ErrorCode::DeadlineExceeded => 4,
            ErrorCode::Internal => 1,
        }
    }
}

/// The failure payload of a [`Response`]: classification, the display
/// message, and — when the message carries parser position context —
/// the structured line/column.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ErrorBody {
    /// Stable classification (drives the CLI exit code).
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
    /// Source line of a parse failure, when known.
    #[serde(default)]
    pub line: Option<u64>,
    /// Source column of a parse failure, when known.
    #[serde(default)]
    pub column: Option<u64>,
    /// On a `Busy` rejection: the server's backoff hint, derived from
    /// queue depth and observed service time. Retrying clients should
    /// wait at least this long before re-sending.
    #[serde(default)]
    pub retry_after_ms: Option<u64>,
}

impl ErrorBody {
    /// Classifies `error` and extracts any `line N column M` context
    /// from its message.
    pub fn from_error(error: &Error) -> ErrorBody {
        let message = error.to_string();
        let (line, column) = match error {
            Error::Parse(_) => (number_after(&message, "line "), number_after(&message, "column ")),
            _ => (None, None),
        };
        ErrorBody { code: ErrorCode::classify(error), message, line, column, retry_after_ms: None }
    }

    /// A bare classified message (no position context).
    pub fn new(code: ErrorCode, message: impl Into<String>) -> ErrorBody {
        ErrorBody { code, message: message.into(), line: None, column: None, retry_after_ms: None }
    }

    /// Attaches a backoff hint (the `Busy` rejection path).
    pub fn with_retry_after(mut self, ms: u64) -> ErrorBody {
        self.retry_after_ms = Some(ms);
        self
    }
}

/// The first unsigned integer directly after `prefix` in `text`.
fn number_after(text: &str, prefix: &str) -> Option<u64> {
    let rest = &text[text.find(prefix)? + prefix.len()..];
    let digits: &str =
        &rest[..rest.len() - rest.trim_start_matches(|c: char| c.is_ascii_digit()).len()];
    digits.parse().ok()
}

/// Serializes any [`Serialize`] value with every object's keys sorted —
/// the stable form in which equal values are equal bytes regardless of
/// field declaration order or producer.
pub fn to_stable_json<T: Serialize>(value: &T) -> String {
    let mut v = value.to_value();
    sort_keys(&mut v);
    serde_json::to_string(&v).expect("stable serialization is infallible")
}

fn sort_keys(value: &mut Value) {
    match value {
        Value::Object(fields) => {
            for (_, v) in fields.iter_mut() {
                sort_keys(v);
            }
            fields.sort_by(|a, b| a.0.cmp(&b.0));
        }
        Value::Array(items) => {
            for v in items.iter_mut() {
                sort_keys(v);
            }
        }
        _ => {}
    }
}

/// Executes one request against a shared profile cache and wraps the
/// result (or failure) in a [`Response`] — the single execution path
/// behind both `vtrain serve` and the CLI's `--json` mode, which is what
/// makes their bytes identical for the same scenario.
///
/// `threads` overrides the sweep worker count (`None` = all cores);
/// sweep results are thread-count-independent, so this never changes
/// response bytes. The server-state kinds (`Stats`, `Shutdown`) are
/// answered by the daemon before reaching this function and report
/// `BadRequest` here.
pub fn execute(request: &Request, cache: &Arc<ProfileCache>, threads: Option<usize>) -> Response {
    match run(request, cache, threads) {
        Ok(report) => Response::ok(request.id.clone(), report),
        Err(e) => Response::err(request.id.clone(), ErrorBody::from_error(&e)),
    }
}

/// [`execute`] in degraded bound-only mode — the load-shedding answer a
/// saturated `vtrain serve --degrade bound-only` hands out instead of a
/// `Busy` rejection. A `Sweep` request is priced at each candidate's
/// admissible analytic floor ([`Sweep::bound_only`](vtrain_core::search::Sweep::bound_only))
/// and flagged `degraded: true` in its report; every other kind runs
/// exactly as [`execute`] (prediction and validation are already cheap).
///
/// Point budgets do not apply (floors are not evaluations); a deadline
/// is still honored.
pub fn execute_degraded(
    request: &Request,
    cache: &Arc<ProfileCache>,
    threads: Option<usize>,
) -> Response {
    if request.kind != RequestKind::Sweep {
        return execute(request, cache, threads);
    }
    match run_degraded(request, cache) {
        Ok(report) => Response::ok(request.id.clone(), report),
        Err(e) => Response::err(request.id.clone(), ErrorBody::from_error(&e)),
    }
}

fn run_degraded(request: &Request, cache: &Arc<ProfileCache>) -> Result<Report, Error> {
    if request.v != WIRE_VERSION {
        return Err(Error::scenario(format!(
            "unsupported wire version {} (this build speaks v{WIRE_VERSION})",
            request.v
        )));
    }
    let budget = request.budget.unwrap_or_default();
    let deadline = budget.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let scenario = request
        .scenario
        .as_ref()
        .ok_or_else(|| Error::scenario(format!("{:?} request needs a `scenario`", request.kind)))?;
    scenario.check()?;
    let goal = scenario.goal()?;
    let run = scenario.sweep()?.cache(Arc::clone(cache)).bound_only();
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Err(Error::deadline(format!(
            "degraded sweep finished after its {} ms deadline",
            budget.deadline_ms.unwrap_or(0)
        )));
    }
    let mut report = SweepReport::from_run(goal, &run);
    report.degraded = true;
    Ok(Report::Sweep(report))
}

fn run(
    request: &Request,
    cache: &Arc<ProfileCache>,
    threads: Option<usize>,
) -> Result<Report, Error> {
    if request.v != WIRE_VERSION {
        return Err(Error::scenario(format!(
            "unsupported wire version {} (this build speaks v{WIRE_VERSION})",
            request.v
        )));
    }
    let budget = request.budget.unwrap_or_default();
    let deadline = budget.deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
    let scenario = || {
        request.scenario.as_ref().ok_or_else(|| {
            Error::scenario(format!("{:?} request needs a `scenario`", request.kind))
        })
    };
    match request.kind {
        RequestKind::Predict => {
            let scenario = scenario()?;
            scenario.check()?;
            let model = scenario.model()?;
            let plan = scenario.plan()?;
            let cost = scenario.cost_model()?;
            let estimate = scenario.estimator_with(Arc::clone(cache))?.estimate(&model, &plan)?;
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(Error::deadline(format!(
                    "prediction finished after its {} ms deadline",
                    budget.deadline_ms.unwrap_or(0)
                )));
            }
            let projection = scenario.tokens.map(|tokens| {
                TrainingProjection::project(
                    estimate.iteration_time,
                    estimate.tokens_per_iteration,
                    tokens,
                    estimate.num_gpus,
                    &cost,
                )
            });
            Ok(Report::Predict(PredictReport {
                model: model.to_string(),
                plan: plan.to_string(),
                estimate,
                projection,
            }))
        }
        RequestKind::Sweep => {
            let scenario = scenario()?;
            scenario.check()?;
            let goal = scenario.goal()?;
            let mut builder = scenario.sweep()?.cache(Arc::clone(cache));
            if let Some(threads) = threads {
                builder = builder.threads(threads);
            }
            if !budget.is_empty() {
                builder = builder.cancel(CancelToken::with_limits(deadline, budget.max_points));
            }
            let run = builder.run();
            // A blown limit is a request failure, not a silently
            // truncated result: budgeted callers asked for an answer
            // within the budget, and a partial winner set is not one.
            for variant in run.variants() {
                match variant.outcome.aborted {
                    None => {}
                    Some(AbortReason::Deadline) => {
                        return Err(Error::deadline(format!(
                            "sweep exceeded its {} ms deadline after {} evaluated points",
                            budget.deadline_ms.unwrap_or(0),
                            variant.outcome.stats.evaluated
                        )));
                    }
                    Some(AbortReason::Budget) => {
                        return Err(Error::deadline(format!(
                            "sweep exceeded its {}-point budget",
                            budget.max_points.unwrap_or(0)
                        )));
                    }
                    Some(AbortReason::Cancelled) => {
                        return Err(Error::server("sweep cancelled"));
                    }
                }
            }
            Ok(Report::Sweep(SweepReport::from_run(goal, &run)))
        }
        RequestKind::Validate => {
            let scenario = scenario()?;
            scenario.check()?;
            let model = scenario.model()?;
            let cluster = scenario.cluster()?;
            let plan = scenario
                .parallelism
                .as_ref()
                .map(|_| scenario.plan().map(|p| p.to_string()))
                .transpose()?;
            let sweep_goal = scenario.sweep.as_ref().map(|_| scenario.goal()).transpose()?;
            Ok(Report::Validate(ValidateReport {
                model: model.to_string(),
                cluster_gpus: cluster.total_gpus,
                gpu: cluster.gpu.name.clone(),
                plan,
                sweep_goal,
            }))
        }
        RequestKind::Stats | RequestKind::Shutdown => Err(Error::scenario(format!(
            "{:?} is a server-state request; only `vtrain serve` answers it",
            request.kind
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_scenario() -> Scenario {
        Scenario::from_json(
            r#"{
                "model": { "preset": "megatron-1.7B" },
                "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
                "sweep": { "global_batch": 16,
                           "limits": { "max_tensor": 2, "max_data": 2,
                                       "max_pipeline": 2, "max_micro_batch": 1 } }
            }"#,
        )
        .expect("test scenario parses")
    }

    #[test]
    fn stable_json_sorts_keys_recursively() {
        let req = Request::new("r-1", RequestKind::Sweep, sweep_scenario());
        let json = to_stable_json(&req);
        let v = json.find("\"v\":").unwrap();
        let id = json.find("\"id\":").unwrap();
        let kind = json.find("\"kind\":").unwrap();
        assert!(id < kind && kind < v, "top-level keys sorted: {json}");
        // Nested scenario keys sort too.
        let cluster = json.find("\"cluster\":").unwrap();
        let model = json.find("\"model\":").unwrap();
        assert!(cluster < model);
        // And the value round-trips from the sorted form.
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, "r-1");
        assert_eq!(back.kind, RequestKind::Sweep);
    }

    #[test]
    fn envelope_rejects_unknown_fields_and_wrong_version() {
        assert!(serde_json::from_str::<Request>(
            r#"{"v": 1, "id": "x", "kind": "Stats", "extra": true}"#
        )
        .is_err());
        let req: Request = serde_json::from_str(r#"{"v": 9, "id": "x", "kind": "Predict"}"#)
            .expect("future versions parse; execution rejects them");
        let resp = execute(&req, &Arc::new(ProfileCache::new()), Some(1));
        match resp.outcome {
            Outcome::Err(body) => {
                assert_eq!(body.code, ErrorCode::BadRequest);
                assert!(body.message.contains("wire version"), "{}", body.message);
            }
            Outcome::Ok(_) => panic!("v9 must be rejected"),
        }
    }

    #[test]
    fn execute_sweep_returns_points_and_echoes_id() {
        let cache = Arc::new(ProfileCache::new());
        let req = Request::new("sweep-42", RequestKind::Sweep, sweep_scenario());
        let resp = execute(&req, &cache, Some(2));
        assert_eq!(resp.id, "sweep-42");
        assert_eq!(resp.v, WIRE_VERSION);
        match resp.outcome {
            Outcome::Ok(Report::Sweep(report)) => {
                assert_eq!(report.variants.len(), 1);
                assert!(!report.variants[0].points.is_empty());
                assert!(report.variants[0].aborted.is_none());
            }
            other => panic!("expected a sweep report, got {other:?}"),
        }
    }

    #[test]
    fn degraded_execution_floors_the_sweep_and_flags_it() {
        let cache = Arc::new(ProfileCache::new());
        let req = Request::new("deg-1", RequestKind::Sweep, sweep_scenario());
        let full = execute(&req, &cache, Some(1));
        let degraded = execute_degraded(&req, &cache, Some(1));
        let report = |resp: &Response| match &resp.outcome {
            Outcome::Ok(Report::Sweep(r)) => r.clone(),
            other => panic!("expected sweep report, got {other:?}"),
        };
        let (full, degraded) = (report(&full), report(&degraded));
        assert!(degraded.degraded && !full.degraded);
        assert_eq!(degraded.variants.len(), full.variants.len());
        let (fv, dv) = (&full.variants[0], &degraded.variants[0]);
        assert_eq!(fv.points.len(), dv.points.len(), "same feasible set");
        for (f, d) in fv.points.iter().zip(&dv.points) {
            assert_eq!(f.plan, d.plan);
            assert!(d.estimate.iteration_time <= f.estimate.iteration_time, "floors floor");
        }
        // Non-sweep kinds pass through undegraded.
        let validate = Request::new("v-1", RequestKind::Validate, sweep_scenario());
        assert!(matches!(
            execute_degraded(&validate, &cache, Some(1)).outcome,
            Outcome::Ok(Report::Validate(_))
        ));
    }

    #[test]
    fn zero_point_budget_maps_to_deadline_code() {
        let cache = Arc::new(ProfileCache::new());
        let mut req = Request::new("tight", RequestKind::Sweep, sweep_scenario());
        req.budget = Some(Budget { deadline_ms: None, max_points: Some(0) });
        let resp = execute(&req, &cache, Some(1));
        match resp.outcome {
            Outcome::Err(body) => {
                assert_eq!(body.code, ErrorCode::DeadlineExceeded);
                assert_eq!(body.code.exit_code(), 4);
            }
            Outcome::Ok(_) => panic!("a 0-point budget cannot succeed"),
        }
    }

    #[test]
    fn parse_errors_carry_structured_position() {
        let err = Scenario::from_json("{\n  \"model\": nope").unwrap_err();
        let body = ErrorBody::from_error(&err);
        assert_eq!(body.code, ErrorCode::BadRequest);
        assert_eq!(body.line, Some(2));
        assert!(body.column.is_some());
    }

    #[test]
    fn exit_codes_follow_the_documented_table() {
        assert_eq!(ErrorCode::classify(&Error::scenario("x")).exit_code(), 2);
        assert_eq!(ErrorCode::classify(&Error::busy("x")).exit_code(), 3);
        assert_eq!(ErrorCode::classify(&Error::deadline("x")).exit_code(), 4);
        assert_eq!(ErrorCode::classify(&Error::io("x")).exit_code(), 1);
        assert_eq!(ErrorCode::classify(&Error::server("x")).exit_code(), 1);
    }
}
