//! # vTrain — a simulation framework for cost-effective and compute-optimal
//! LLM training
//!
//! Rust reproduction of *vTrain* (Bang et al., MICRO 2024): a
//! profiling-driven simulator that predicts the single-iteration training
//! time of transformer LLMs under `(t, d, p)`-way 3D parallelism, and the
//! three case studies built on it — cost-effective training-plan search,
//! multi-tenant GPU cluster scheduling, and compute-optimal model sizing.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`model`] | `vtrain-model` | LLM descriptions, parameter/FLOPs/memory accounting |
//! | [`parallel`] | `vtrain-parallel` | 3D-parallel plans, clusters, pipeline schedules |
//! | [`graph`] | `vtrain-graph` | operator-granularity execution graphs |
//! | [`gpu`] | `vtrain-gpu` | A100 device model + ground-truth emulation |
//! | [`net`] | `vtrain-net` | hierarchical interconnect topology, collective-algorithm costs |
//! | [`profile`] | `vtrain-profile` | CUPTI-like profiling, communication models |
//! | [`engine`] | `vtrain-engine` | deterministic discrete-event simulation kernel |
//! | [`obs`] | `vtrain-obs` | structured spans, metrics registry, Chrome-trace timelines |
//! | [`sim`] | `vtrain-core` | task graphs, Algorithm 1, cost model, DSE |
//! | [`cluster`] | `vtrain-cluster` | multi-tenant scheduler experiments |
//! | [`scaling`] | `vtrain-scaling` | Chinchilla law, compute-optimal sizing |
//!
//! # Quickstart
//!
//! ```
//! use vtrain::prelude::*;
//!
//! // A 512-GPU A100 cluster and an 18.4B-parameter model.
//! let cluster = ClusterSpec::aws_p4d(512);
//! let model = presets::megatron("18.4B");
//!
//! // An (8, 8, 8)-way 3D-parallel plan.
//! let plan = ParallelConfig::builder()
//!     .tensor(8).data(8).pipeline(8)
//!     .micro_batch(2).global_batch(512)
//!     .build()?;
//!
//! // Predict one training iteration.
//! let estimator = Estimator::builder(cluster).build();
//! let estimate = estimator.estimate(&model, &plan)?;
//! println!(
//!     "iteration {}, utilization {:.1}%",
//!     estimate.iteration_time,
//!     estimate.utilization * 100.0
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Or declaratively, from a scenario file (the `vtrain` CLI is a thin
//! wrapper over exactly this):
//!
//! ```
//! use vtrain::prelude::*;
//!
//! let scenario = Scenario::from_json(r#"{
//!     "model": { "preset": "megatron-1.7B" },
//!     "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
//!     "parallelism": { "tensor": 2, "data": 2, "pipeline": 2,
//!                      "micro_batch": 1, "global_batch": 8 }
//! }"#)?;
//! let estimate = scenario.estimator()?.estimate(&scenario.model()?, &scenario.plan()?)?;
//! assert!(estimate.utilization > 0.0);
//! # Ok::<(), vtrain::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod client;
pub mod description;
mod error;
pub mod serve;

pub use description::{Description, NetworkSection, Scenario};
pub use error::Error;

pub use vtrain_cluster as cluster;
pub use vtrain_core as sim;
pub use vtrain_engine as engine;
pub use vtrain_gpu as gpu;
pub use vtrain_graph as graph;
pub use vtrain_model as model;
pub use vtrain_net as net;
pub use vtrain_obs as obs;
pub use vtrain_parallel as parallel;
pub use vtrain_profile as profile;
pub use vtrain_scaling as scaling;

/// The types most programs need, in one import.
///
/// Engine, graph, and profiler internals (`Simulation`, `Handler`,
/// `plan_signatures`, `EstimatorScratch`, …) are deliberately absent:
/// programs that drive those layers directly should import them from
/// their home crates.
pub mod prelude {
    pub use crate::api::{
        ErrorCode, Outcome, Report, Request, RequestKind, Response, WIRE_VERSION,
    };
    pub use crate::client::{Client, ClientConfig};
    pub use crate::description::{Description, NetworkSection, Scenario};
    pub use crate::error::Error;
    pub use crate::serve::faults::FaultPlan;
    pub use crate::serve::{DegradeMode, Server, ServerConfig};
    pub use vtrain_core::bounds::iteration_floor;
    pub use vtrain_core::search::{
        self, AbortReason, CancelToken, DesignPoint, PlacementSweep, SearchLimits, StageProfile,
        Sweep, SweepGoal, SweepOutcome, SweepRun, SweepStats,
    };
    pub use vtrain_core::{
        CostModel, Estimator, EstimatorBuilder, IterationEstimate, IterationTimeline, SimMode,
        SimReport, StageNanos, TrainingProjection,
    };
    pub use vtrain_gpu::{NoiseConfig, NoiseModel};
    pub use vtrain_model::{presets, Bytes, Flops, ModelConfig, TimeNs};
    pub use vtrain_net::flow::{FlowPhase, FlowProgram, FlowSim};
    pub use vtrain_net::{GroupPlacement, NetworkBackend, TierSpec, Topology};
    pub use vtrain_obs::{MetricsRegistry, TimelineRecorder};
    pub use vtrain_parallel::{ClusterSpec, GpuSpec, ParallelConfig, PipelineSchedule};
    pub use vtrain_profile::{CacheStats, ProfileCache};
    pub use vtrain_scaling::ChinchillaLaw;
}
