//! A fault-tolerant blocking client for the `vtrain serve` wire API.
//!
//! [`Client`] wraps one TCP connection to a serve daemon and owns the
//! retry loop the wire API's failure model asks of callers:
//!
//! - **Idempotent ids**: every attempt of a request re-sends the same
//!   caller-chosen `id` with an incremented `attempt` counter, so the
//!   server can tell a retry from new work (its `retries_observed`
//!   counter) and the caller can correlate whichever attempt's response
//!   lands. Requests are pure functions of their scenario, so replaying
//!   one is always safe — the response is byte-identical whichever
//!   attempt produced it.
//! - **Deadline-aware backoff**: retryable failures back off
//!   exponentially from [`base_backoff_ms`](ClientConfig::base_backoff_ms)
//!   with *deterministic* jitter (seeded by `(seed, id, attempt)`, so a
//!   chaos run replays exactly), floored at the server's
//!   `retry_after_ms` hint on a `Busy` rejection, and truncated to the
//!   client-side [`deadline`](ClientConfig::deadline) — a blown
//!   deadline returns [`Error::Deadline`] instead of sleeping past it.
//! - **Retryable vs terminal**: connection failures (reset, EOF,
//!   timeout, unparseable or misdelivered frames) tear the connection
//!   down and retry, as do `Busy` rejections and `Internal` answers (a
//!   panicked execution); `BadRequest` and `DeadlineExceeded` are
//!   terminal — re-sending a malformed or already-late request cannot
//!   change the answer.
//!
//! ```no_run
//! use vtrain::client::Client;
//! use vtrain::prelude::*;
//!
//! let scenario = Scenario::from_json(r#"{
//!     "model": { "preset": "megatron-1.7B" },
//!     "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
//!     "sweep": { "global_batch": 16 }
//! }"#)?;
//! let mut client = Client::connect("127.0.0.1:7071");
//! let response = client.sweep("job-1", scenario)?;
//! # let _ = response;
//! # Ok::<(), vtrain::Error>(())
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::api::{
    ErrorBody, ErrorCode, Outcome, Report, Request, RequestKind, Response, ServerStats,
    ShutdownReport, WIRE_VERSION,
};
use crate::description::Scenario;
use crate::error::Error;

/// Configuration of a [`Client`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// The daemon's address, e.g. `"127.0.0.1:7071"`.
    pub addr: String,
    /// Attempts per request before giving up (default 8; 1 = no retry).
    pub max_attempts: u64,
    /// First retry's base backoff, milliseconds (default 10); doubles
    /// per attempt.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds (default 2000).
    pub max_backoff_ms: u64,
    /// Client-side wall-clock budget per request, covering every
    /// attempt and backoff sleep (default `None`: retry until
    /// `max_attempts`).
    pub deadline: Option<Duration>,
    /// Seed of the deterministic backoff jitter (default 0).
    pub seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            addr: "127.0.0.1:7071".to_owned(),
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 2000,
            deadline: None,
            seed: 0,
        }
    }
}

/// A blocking, retrying serve-daemon client. Not thread-safe: one
/// in-flight request per client (spawn one client per thread to drive
/// a daemon concurrently).
#[derive(Debug)]
pub struct Client {
    config: ClientConfig,
    conn: Option<Conn>,
    last_attempts: u64,
}

#[derive(Debug)]
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// A client with the default retry policy against `addr`. No I/O
    /// happens until the first request — a daemon that is still booting
    /// (or restarting) is just another retryable failure.
    pub fn connect(addr: impl Into<String>) -> Client {
        Client::new(ClientConfig { addr: addr.into(), ..ClientConfig::default() })
    }

    /// A client with an explicit retry policy.
    pub fn new(config: ClientConfig) -> Client {
        Client { config, conn: None, last_attempts: 0 }
    }

    /// Attempts the previous [`request`](Client::request) took to get
    /// its answer (1 = first try; diagnostics for chaos tests).
    pub fn last_attempts(&self) -> u64 {
        self.last_attempts
    }

    /// Sends `request` until it is answered terminally, retrying
    /// retryable failures with backoff. The request's `attempt` field
    /// is overwritten per try; everything else — in particular its
    /// `id` — is re-sent verbatim, and the response is byte-identical
    /// whichever attempt produced it.
    ///
    /// # Errors
    ///
    /// Returns the last transport failure once `max_attempts` is
    /// exhausted without any response, or [`Error::Deadline`] when the
    /// client-side deadline expires first. A response whose outcome is
    /// a wire error is *not* an `Err` — it is the server's answer;
    /// inspect [`Response::outcome`].
    pub fn request(&mut self, mut request: Request) -> Result<Response, Error> {
        let deadline = self.config.deadline.map(|d| Instant::now() + d);
        let mut last_failure = Error::server("request was never attempted");
        let mut last_response = None;
        for attempt in 1..=self.config.max_attempts.max(1) {
            request.attempt = attempt;
            self.last_attempts = attempt;
            let mut retry_floor_ms = 0;
            match self.round_trip(&request, deadline) {
                Ok(response) => match &response.outcome {
                    Outcome::Err(body) if body.code == ErrorCode::Busy => {
                        retry_floor_ms = body.retry_after_ms.unwrap_or(0);
                        last_failure = Error::busy(body.message.clone());
                        last_response = Some(response);
                    }
                    Outcome::Err(body) if body.code == ErrorCode::Internal => {
                        last_failure = Error::server(body.message.clone());
                        last_response = Some(response);
                    }
                    // Success, `BadRequest`, and `DeadlineExceeded` are
                    // terminal: the answer cannot improve by resending.
                    _ => return Ok(response),
                },
                Err(e) => {
                    self.conn = None;
                    last_failure = e;
                }
            }
            if attempt < self.config.max_attempts.max(1) {
                self.backoff(attempt, &request.id, retry_floor_ms, deadline)?;
            }
        }
        match last_response {
            Some(response) => Ok(response),
            None => Err(last_failure),
        }
    }

    /// [`request`](Client::request) for a `Sweep` over `scenario`.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn sweep(&mut self, id: impl Into<String>, scenario: Scenario) -> Result<Response, Error> {
        self.request(Request::new(id, RequestKind::Sweep, scenario))
    }

    /// [`request`](Client::request) for a `Predict` over `scenario`.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn predict(
        &mut self,
        id: impl Into<String>,
        scenario: Scenario,
    ) -> Result<Response, Error> {
        self.request(Request::new(id, RequestKind::Predict, scenario))
    }

    /// [`request`](Client::request) for a `Validate` over `scenario`.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request).
    pub fn validate(
        &mut self,
        id: impl Into<String>,
        scenario: Scenario,
    ) -> Result<Response, Error> {
        self.request(Request::new(id, RequestKind::Validate, scenario))
    }

    /// Fetches the daemon's aggregate counters.
    ///
    /// # Errors
    ///
    /// As [`request`](Client::request), plus a wire-error outcome
    /// mapped back to [`Error`].
    pub fn stats(&mut self) -> Result<ServerStats, Error> {
        let response = self.request(bare_request("stats", RequestKind::Stats))?;
        match response.outcome {
            Outcome::Ok(Report::Stats(stats)) => Ok(stats),
            Outcome::Ok(other) => {
                Err(Error::server(format!("expected a stats report, got {other:?}")))
            }
            Outcome::Err(body) => Err(error_from_body(&body)),
        }
    }

    /// Drains and stops the daemon, returning its lifetime completion
    /// count.
    ///
    /// # Errors
    ///
    /// As [`stats`](Client::stats).
    pub fn shutdown(&mut self) -> Result<ShutdownReport, Error> {
        let response = self.request(bare_request("shutdown", RequestKind::Shutdown))?;
        match response.outcome {
            Outcome::Ok(Report::Shutdown(report)) => Ok(report),
            Outcome::Ok(other) => {
                Err(Error::server(format!("expected a shutdown report, got {other:?}")))
            }
            Outcome::Err(body) => Err(error_from_body(&body)),
        }
    }

    /// One attempt: connect if needed, write the frame, block for the
    /// answer. Any failure invalidates the connection (the caller tears
    /// it down), because a half-delivered frame would desynchronize
    /// every later response.
    fn round_trip(
        &mut self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> Result<Response, Error> {
        let timeout = match deadline {
            Some(d) => Some(remaining(d)?),
            None => None,
        };
        if self.conn.is_none() {
            let writer = TcpStream::connect(&self.config.addr).map_err(|e| {
                Error::server(format!("cannot connect to {}: {e}", self.config.addr))
            })?;
            let reader = writer
                .try_clone()
                .map_err(|e| Error::server(format!("cannot clone connection: {e}")))?;
            self.conn = Some(Conn { writer, reader: BufReader::new(reader) });
        }
        let conn = self.conn.as_mut().expect("connection was just established");
        conn.writer
            .set_write_timeout(timeout)
            .and_then(|()| conn.reader.get_ref().set_read_timeout(timeout))
            .map_err(|e| Error::server(format!("cannot arm socket timeout: {e}")))?;
        conn.writer
            .write_all(request.to_frame().as_bytes())
            .and_then(|()| conn.writer.flush())
            .map_err(|e| Error::server(format!("cannot send request: {e}")))?;
        let mut line = String::new();
        let n = conn
            .reader
            .read_line(&mut line)
            .map_err(|e| Error::server(format!("cannot read response: {e}")))?;
        if n == 0 {
            return Err(Error::server("connection closed before the response arrived"));
        }
        let response: Response = serde_json::from_str(line.trim())
            .map_err(|e| Error::server(format!("unparseable response frame: {e}")))?;
        if response.id != request.id {
            return Err(Error::server(format!(
                "response id `{}` does not match request id `{}`",
                response.id, request.id
            )));
        }
        Ok(response)
    }

    /// Sleeps out the backoff before the next attempt: exponential in
    /// the attempt number with deterministic jitter, floored at the
    /// server's `retry_after_ms` hint, truncated to the deadline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Deadline`] when the deadline has already passed
    /// (sleeping further would be lying to the caller).
    fn backoff(
        &self,
        attempt: u64,
        id: &str,
        floor_ms: u64,
        deadline: Option<Instant>,
    ) -> Result<(), Error> {
        let exp = self
            .config
            .base_backoff_ms
            .saturating_mul(1u64 << (attempt - 1).min(20))
            .min(self.config.max_backoff_ms)
            .max(1);
        // Jitter in [exp/2, exp]: desynchronizes a thundering herd
        // without ever under-shooting half the nominal backoff, and is
        // a pure function of (seed, id, attempt) so runs replay.
        let jittered = exp / 2 + mix(self.config.seed, id, attempt) % (exp - exp / 2 + 1);
        let mut sleep_ms = jittered.max(floor_ms);
        if let Some(d) = deadline {
            let left = remaining(d)?;
            sleep_ms = sleep_ms.min(left.as_millis().min(u128::from(u64::MAX)) as u64);
        }
        std::thread::sleep(Duration::from_millis(sleep_ms));
        if let Some(d) = deadline {
            remaining(d)?;
        }
        Ok(())
    }
}

/// Time left until `deadline`, or [`Error::Deadline`] if none.
fn remaining(deadline: Instant) -> Result<Duration, Error> {
    deadline
        .checked_duration_since(Instant::now())
        .filter(|d| !d.is_zero())
        .ok_or_else(|| Error::deadline("client-side deadline expired before the request settled"))
}

/// A scenario-less request frame (the server-state kinds).
fn bare_request(id: &str, kind: RequestKind) -> Request {
    Request { v: WIRE_VERSION, id: id.to_owned(), kind, scenario: None, budget: None, attempt: 0 }
}

/// Maps a wire error body back onto the [`Error`] the CLI would have
/// produced locally.
fn error_from_body(body: &ErrorBody) -> Error {
    match body.code {
        ErrorCode::BadRequest => Error::scenario(body.message.clone()),
        ErrorCode::Busy => Error::busy(body.message.clone()),
        ErrorCode::DeadlineExceeded => Error::deadline(body.message.clone()),
        ErrorCode::Internal => Error::server(body.message.clone()),
    }
}

/// SplitMix64 over `(seed, id, attempt)` — the jitter's entropy.
fn mix(seed: u64, id: &str, attempt: u64) -> u64 {
    let mut z = seed ^ attempt.wrapping_mul(0xbf58476d1ce4e5b9);
    for b in id.bytes() {
        z = (z ^ u64::from(b)).wrapping_mul(0x100000001b3);
    }
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        assert_eq!(mix(7, "job-1", 3), mix(7, "job-1", 3));
        assert_ne!(mix(7, "job-1", 3), mix(7, "job-1", 4));
        assert_ne!(mix(7, "job-1", 3), mix(8, "job-1", 3));
        assert_ne!(mix(7, "job-1", 3), mix(7, "job-2", 3));
    }

    #[test]
    fn exhausted_transport_retries_surface_the_last_failure() {
        // Nothing listens on this port (bind-then-drop reserves one).
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
            listener.local_addr().expect("probe addr").port()
        };
        let mut client = Client::new(ClientConfig {
            addr: format!("127.0.0.1:{port}"),
            max_attempts: 2,
            base_backoff_ms: 1,
            max_backoff_ms: 2,
            ..ClientConfig::default()
        });
        let err = client.stats().expect_err("no daemon to answer");
        assert!(err.to_string().contains("connect"), "{err}");
        assert_eq!(client.last_attempts(), 2, "both attempts were spent");
    }

    #[test]
    fn client_deadline_cuts_retries_short() {
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
            listener.local_addr().expect("probe addr").port()
        };
        let mut client = Client::new(ClientConfig {
            addr: format!("127.0.0.1:{port}"),
            max_attempts: 1000,
            base_backoff_ms: 5,
            max_backoff_ms: 10,
            deadline: Some(Duration::from_millis(40)),
            ..ClientConfig::default()
        });
        let started = Instant::now();
        let err = client.stats().expect_err("deadline must fire");
        assert!(matches!(err, Error::Deadline(_)), "{err}");
        assert!(started.elapsed() < Duration::from_secs(5), "gave up promptly");
        assert!(client.last_attempts() < 1000, "nowhere near max_attempts");
    }
}
