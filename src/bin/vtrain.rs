//! The `vtrain` command-line front-end: evaluate an input description file
//! (paper Fig. 4, step ①) and print the predicted iteration time,
//! utilization, breakdown, and end-to-end projection.
//!
//! ```sh
//! cargo run --release --bin vtrain -- examples/descriptions/megatron_18b.json
//! ```

use std::process::ExitCode;

use vtrain::description::Description;
use vtrain::prelude::*;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: vtrain <description.json>");
        eprintln!("see examples/descriptions/ for the schema");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&text) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(text: &str) -> Result<(), Box<dyn std::error::Error>> {
    let description = Description::from_json(text)?;
    let model = description.model()?;
    let cluster = description.cluster()?;
    let plan = description.plan()?;

    let estimator = Estimator::new(cluster);
    let estimate = estimator.estimate(&model, &plan)?;

    println!("model:           {model}");
    println!("plan:            {plan}");
    println!("GPUs:            {}", estimate.num_gpus);
    println!("iteration time:  {}", estimate.iteration_time);
    println!("utilization:     {:.1}%", estimate.utilization * 100.0);
    println!(
        "busy breakdown:  compute {} | TP {} | DP {} | PP {}",
        estimate.busy.compute, estimate.busy.tp_comm, estimate.busy.dp_comm, estimate.busy.pp_comm
    );

    if let Some(tokens) = description.tokens {
        let cost = description.cost_per_gpu_hour.map(CostModel::new).unwrap_or_default();
        let projection = TrainingProjection::project(
            estimate.iteration_time,
            estimate.tokens_per_iteration,
            tokens,
            estimate.num_gpus,
            &cost,
        );
        println!("iterations:      {}", projection.iterations);
        println!("training time:   {:.2} days", projection.days());
        println!("training cost:   ${:.2}M", projection.total_dollars / 1e6);
    }
    Ok(())
}
