//! The `vtrain` command-line front-end: drive prediction, design-space
//! sweeps, validation, and the serve daemon from a single scenario file
//! (paper Fig. 4, step ①) — no Rust code required.
//!
//! ```sh
//! vtrain predict  examples/descriptions/megatron_18b.json --timeline trace.json
//! vtrain sweep    examples/descriptions/megatron_1_7b_sweep.json --metrics metrics.json
//! vtrain sweep    examples/descriptions/megatron_1_7b_sweep.json --json
//! vtrain explain  examples/descriptions/megatron_18b.json
//! vtrain validate examples/descriptions/megatron_18b.json
//! vtrain serve    127.0.0.1:7071 --workers 4 --cache-capacity 4096
//! ```
//!
//! `--json` swaps the human report for one [`vtrain::api::Response`]
//! line — byte-identical to what `vtrain serve` would answer for the
//! same scenario — and maps the failure classification onto the exit
//! codes below.
//!
//! Exit codes (one table for every command, `vtrain::api::ErrorCode`):
//! `0` success; `1` internal/I-O failure; `2` usage error or invalid
//! scenario; `3` server busy (admission rejected); `4` deadline or
//! point budget exceeded.

use std::process::ExitCode;
use std::sync::Arc;

use vtrain::api::{self, Budget, ErrorBody, ErrorCode, Request, RequestKind, Response};
use vtrain::prelude::*;
use vtrain::serve::{Server, ServerConfig};

const USAGE: &str = "usage: vtrain <command> <scenario.json> [options]
       vtrain serve <addr:port> [serve options]

commands:
  predict    simulate the scenario's plan: iteration time, utilization,
             busy breakdown, and (with `tokens`) the end-to-end projection
  sweep      explore the (t, d, p, m) design space the scenario bounds,
             honoring its goal and placement axis; given a directory,
             sweep every *.json scenario in it (sorted, one shared
             profile cache)
  explain    attribute where simulated (plan) or simulation (sweep) time
             goes: per-stage/per-stream tables
  validate   parse and resolve every section, reporting the first problem
  serve      run the sweep-as-a-service daemon: newline-delimited JSON
             request/response frames (the same `--json` envelope) over
             TCP, concurrent requests sharing one profile cache

options:
  --json                  (predict|sweep|validate) print one wire-API
                          response line instead of the human report —
                          byte-identical to the serve daemon's response
                          for the same scenario
  --deadline-ms <n>       (sweep; any command with --json) fail with the
                          deadline exit code if the run exceeds n ms
  --max-points <n>        (sweep; any command with --json) fail with the
                          deadline exit code beyond n evaluated points
  --network <backend>     (predict|sweep|explain) override the scenario's
                          communication pricing backend: `closed-form`
                          (each collective at full tier bandwidth, the
                          default) or `fair-sharing` (concurrent transfers
                          contend for links max-min fairly)
  --timeline <out.json>   (predict) export the predicted iteration as a
                          Chrome trace-event timeline (chrome://tracing,
                          Perfetto)
  --metrics <out.json>    (sweep) enable the metrics registry and write
                          its snapshot after the sweep
  --stage-profile         (sweep) attribute sweep CPU time across the
                          validate/bound/lower/simulate/summarize stages

serve options:
  --workers <n>           worker threads executing requests (default 2)
  --queue-depth <n>       max requests waiting for a worker before
                          admission rejects with the busy error (default 32)
  --threads <n>           sweep threads per request (default: all cores)
  --cache-capacity <n>    bound the shared profile cache to n entries,
                          evicting least-recently-used (default unbounded)
  --max-frame-bytes <n>   reject request frames longer than n bytes with
                          the bad-request error, keeping the connection
                          (default 4194304)
  --degrade bound-only    once the queue passes its high-water mark,
                          answer sweeps from the analytic lower bound
                          (flagged `degraded` in the report) instead of
                          shedding them with the busy error
  --degrade-high-water <n>  queue length that triggers degraded mode
                          (default queue-depth/2; 0 degrades every sweep)
  --snapshot <path>       persist the profile cache to <path> (tmp-file +
                          atomic rename) and warm-restore it at startup;
                          a corrupt or truncated file is a logged cold
                          start, never a crash
  --snapshot-every <n>    snapshot after every n completed requests
                          (default 32; a snapshot is also written at
                          shutdown drain)
  --fault-plan <file>     inject deterministic faults from a JSON plan
                          (testing: seeded drops/delays/corruption of
                          response frames, scripted worker panics)

exit codes:
  0  success
  1  internal or I/O failure
  2  usage error or invalid scenario (malformed JSON reports line/field
     context)
  3  server busy: the admission queue was full or the daemon is draining
  4  deadline or point budget exceeded

see examples/descriptions/ for the scenario schema";

/// Command-line options after the `<command> <scenario.json>` positionals.
#[derive(Default)]
struct Opts {
    network: Option<String>,
    timeline: Option<String>,
    metrics: Option<String>,
    stage_profile: bool,
    json: bool,
    deadline_ms: Option<u64>,
    max_points: Option<u64>,
}

impl Opts {
    /// Parses trailing options; `Err` carries the usage complaint.
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut opts = Opts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--network" => match it.next() {
                    Some(backend) => opts.network = Some(backend.clone()),
                    None => {
                        return Err("--network needs a backend (closed-form|fair-sharing)".into());
                    }
                },
                "--timeline" => match it.next() {
                    Some(path) => opts.timeline = Some(path.clone()),
                    None => return Err("--timeline needs an output path".into()),
                },
                "--metrics" => match it.next() {
                    Some(path) => opts.metrics = Some(path.clone()),
                    None => return Err("--metrics needs an output path".into()),
                },
                "--stage-profile" => opts.stage_profile = true,
                "--json" => opts.json = true,
                "--deadline-ms" => opts.deadline_ms = Some(parse_number(it.next(), arg)?),
                "--max-points" => opts.max_points = Some(parse_number(it.next(), arg)?),
                other => return Err(format!("unknown option `{other}`")),
            }
        }
        Ok(opts)
    }

    /// The budget the options describe, if any.
    fn budget(&self) -> Option<Budget> {
        let budget = Budget { deadline_ms: self.deadline_ms, max_points: self.max_points };
        (!budget.is_empty()).then_some(budget)
    }
}

/// Parses a numeric option value; `Err` carries the usage complaint.
fn parse_number(value: Option<&String>, flag: &str) -> Result<u64, String> {
    value
        .ok_or_else(|| format!("{flag} needs a number"))?
        .parse()
        .map_err(|_| format!("{flag} needs a number"))
}

/// The one place an [`Error`] becomes a process exit code — the same
/// classification table the wire API's error bodies carry.
fn exit_for(e: &Error) -> ExitCode {
    ExitCode::from(ErrorCode::classify(e).exit_code())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, path, rest) = match args.as_slice() {
        [command, path, rest @ ..] => (command.as_str(), path.as_str(), rest),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if command == "serve" {
        return match serve_cmd(path, rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                exit_for(&e)
            }
        };
    }
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(complaint) => {
            eprintln!("error: {complaint}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.json {
        return json_mode(command, path, &opts);
    }
    if opts.budget().is_some() && command != "sweep" {
        eprintln!(
            "error: --deadline-ms/--max-points apply to `sweep` (or any command with --json)\
             \n\n{USAGE}"
        );
        return ExitCode::from(2);
    }
    if std::fs::metadata(path).is_ok_and(|m| m.is_dir()) {
        if command != "sweep" {
            eprintln!("error: {path} is a directory (only `sweep` accepts one)\n\n{USAGE}");
            return ExitCode::from(2);
        }
        return match sweep_batch(path, &opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {path}: {e}");
                exit_for(&e)
            }
        };
    }
    let scenario = match load_scenario(path) {
        Ok(mut s) => {
            apply_network_override(&mut s, &opts);
            s
        }
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return exit_for(&e);
        }
    };
    let result = match command {
        "predict" => predict(&scenario, &opts),
        "sweep" => sweep(&scenario, &opts),
        "explain" => explain(&scenario),
        "validate" => validate(&scenario),
        other => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            exit_for(&e)
        }
    }
}

/// Reads and parses one scenario file, both failure modes in the
/// [`Error`] domain so they classify onto the exit-code table.
fn load_scenario(path: &str) -> Result<Scenario, Error> {
    let text =
        std::fs::read_to_string(path).map_err(|e| Error::io(format!("cannot read {path}: {e}")))?;
    Scenario::from_json(&text)
}

/// `--network` replaces the scenario's own `network` section (the CLI
/// wins); the name is validated downstream by `Scenario::check`, so a
/// typo classifies as an invalid scenario (exit code 2).
fn apply_network_override(scenario: &mut Scenario, opts: &Opts) {
    if let Some(backend) = &opts.network {
        scenario.network = Some(NetworkSection { backend: backend.clone() });
    }
}

/// `--json`: execute through the wire API and print the one response
/// line the serve daemon would send — same bytes, same classification.
fn json_mode(command: &str, path: &str, opts: &Opts) -> ExitCode {
    let kind = match command {
        "predict" => RequestKind::Predict,
        "sweep" => RequestKind::Sweep,
        "validate" => RequestKind::Validate,
        other => {
            eprintln!("error: `{other}` has no --json mode (predict|sweep|validate)\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let response = match load_scenario(path) {
        Ok(mut scenario) => {
            apply_network_override(&mut scenario, opts);
            let mut request = Request::new("cli", kind, scenario);
            request.budget = opts.budget();
            api::execute(&request, &Arc::new(ProfileCache::new()), None)
        }
        Err(e) => Response::err("cli", ErrorBody::from_error(&e)),
    };
    println!("{}", response.to_json());
    match &response.outcome {
        vtrain::api::Outcome::Ok(_) => ExitCode::SUCCESS,
        vtrain::api::Outcome::Err(body) => ExitCode::from(body.code.exit_code()),
    }
}

/// `vtrain serve <addr>`: bind, announce, and run until a shutdown
/// frame drains the daemon.
fn serve_cmd(addr: &str, rest: &[String]) -> Result<(), Error> {
    let mut config = ServerConfig { addr: addr.to_owned(), ..ServerConfig::default() };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        let number = |v: Option<&String>| parse_number(v, arg).map_err(Error::scenario);
        match arg.as_str() {
            "--workers" => config.workers = number(it.next())?.max(1) as usize,
            "--queue-depth" => config.queue_depth = number(it.next())? as usize,
            "--threads" => config.threads = Some(number(it.next())?.clamp(1, 512) as usize),
            "--cache-capacity" => config.cache_capacity = Some(number(it.next())?.max(1) as usize),
            "--max-frame-bytes" => {
                config.max_frame_bytes = number(it.next())?.max(64) as usize;
            }
            "--degrade" => match it.next().map(String::as_str) {
                Some("bound-only") => config.degrade = Some(DegradeMode::BoundOnly),
                Some(other) => {
                    return Err(Error::scenario(format!(
                        "unknown degrade mode `{other}` (expected `bound-only`)"
                    )));
                }
                None => return Err(Error::scenario("--degrade needs a mode (`bound-only`)")),
            },
            "--degrade-high-water" => {
                config.degrade_high_water = Some(number(it.next())? as usize);
            }
            "--snapshot" => match it.next() {
                Some(path) => config.snapshot = Some(std::path::PathBuf::from(path)),
                None => return Err(Error::scenario("--snapshot needs a file path")),
            },
            "--snapshot-every" => config.snapshot_every = number(it.next())?.max(1),
            "--fault-plan" => match it.next() {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| Error::io(format!("cannot read fault plan {path}: {e}")))?;
                    config.fault_plan = Some(FaultPlan::from_json(&text)?);
                }
                None => return Err(Error::scenario("--fault-plan needs a JSON file path")),
            },
            other => return Err(Error::scenario(format!("unknown serve option `{other}`"))),
        }
    }
    let server = Server::bind(config)?;
    eprintln!("vtrain serve: listening on {}", server.local_addr());
    server.run()
}

/// Writes `contents` to `path`, mapping I/O failures into the scenario
/// error domain.
fn write_file(path: &str, contents: &str) -> Result<(), Error> {
    std::fs::write(path, contents).map_err(|e| Error::io(format!("cannot write {path}: {e}")))
}

/// Prints the end-to-end projection if the scenario carries a token
/// budget; `indent` matches the caller's block structure.
fn print_projection(
    scenario: &Scenario,
    cost: &CostModel,
    estimate: &IterationEstimate,
    indent: &str,
) {
    if let Some(tokens) = scenario.tokens {
        let projection = TrainingProjection::project(
            estimate.iteration_time,
            estimate.tokens_per_iteration,
            tokens,
            estimate.num_gpus,
            cost,
        );
        println!("{indent}iterations:      {}", projection.iterations);
        println!("{indent}training time:   {:.2} days", projection.days());
        println!("{indent}training cost:   ${:.2}M", projection.total_dollars / 1e6);
    }
}

fn predict(scenario: &Scenario, opts: &Opts) -> Result<(), Error> {
    // Full cross-section validation: anything `validate` rejects must
    // not run (e.g. a noise section that would be silently ignored).
    scenario.check()?;
    let model = scenario.model()?;
    let plan = scenario.plan()?;
    let cost = scenario.cost_model()?;
    let estimator = scenario.estimator()?;
    let estimate = estimator.estimate(&model, &plan)?;

    if let Some(out) = &opts.timeline {
        let timeline = estimator.timeline(&model, &plan)?;
        assert_eq!(
            timeline.recorder.max_end_ns(),
            estimate.iteration_time.as_nanos(),
            "timeline must end exactly at the predicted iteration time"
        );
        write_file(out, &timeline.recorder.to_chrome_trace())?;
        println!(
            "timeline:        {} spans over {} tracks -> {out}",
            timeline.recorder.len(),
            timeline.report.device_busy.len()
        );
    }

    println!("model:           {model}");
    println!("plan:            {plan}");
    println!("GPUs:            {}", estimate.num_gpus);
    println!("iteration time:  {}", estimate.iteration_time);
    println!("utilization:     {:.1}%", estimate.utilization * 100.0);
    println!(
        "busy breakdown:  compute {} | TP {} | DP {} | PP {}",
        estimate.busy.compute, estimate.busy.tp_comm, estimate.busy.dp_comm, estimate.busy.pp_comm
    );
    if scenario.noise.is_some() {
        let measured = estimator.measure(&model, &plan)?;
        println!("measured:        {} (noise-emulated ground truth)", measured.iteration_time);
    }
    print_projection(scenario, &cost, &estimate, "");
    Ok(())
}

fn sweep(scenario: &Scenario, opts: &Opts) -> Result<(), Error> {
    // A shared cache handle so its traffic can be published after the
    // run; `--metrics` turns the (otherwise free) registry on.
    let cache = std::sync::Arc::new(ProfileCache::new());
    if opts.metrics.is_some() {
        vtrain::obs::set_enabled(true);
    }
    sweep_one(scenario, opts, &cache)?;
    dump_sweep_metrics(opts, &cache)
}

/// `sweep` over a directory: every `*.json` scenario in it, in sorted
/// (deterministic) order, all sharing one profile cache — compute
/// profiles depend on the operator signature and the GPU, not the
/// scenario, so later scenarios start from the hits of earlier ones.
fn sweep_batch(dir: &str, opts: &Opts) -> Result<(), Error> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| Error::io(format!("cannot read directory {dir}: {e}")))?;
    let mut files: Vec<std::path::PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "json"))
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(Error::scenario(format!("no *.json scenarios in {dir}")));
    }
    let cache = std::sync::Arc::new(ProfileCache::new());
    if opts.metrics.is_some() {
        vtrain::obs::set_enabled(true);
    }
    println!("batch sweep: {} scenarios, one shared profile cache", files.len());
    for (i, file) in files.iter().enumerate() {
        let path = file.display();
        let text = std::fs::read_to_string(file)
            .map_err(|e| Error::io(format!("cannot read {path}: {e}")))?;
        let mut scenario =
            Scenario::from_json(&text).map_err(|e| Error::scenario(format!("{path}: {e}")))?;
        apply_network_override(&mut scenario, opts);
        println!("\n[{}/{}] {path}", i + 1, files.len());
        sweep_one(&scenario, opts, &cache).map_err(|e| Error::scenario(format!("{path}: {e}")))?;
    }
    dump_sweep_metrics(opts, &cache)
}

/// Writes the metrics-registry snapshot after a sweep (or a batch of
/// them) when `--metrics` asked for one.
fn dump_sweep_metrics(opts: &Opts, cache: &ProfileCache) -> Result<(), Error> {
    if let Some(out) = &opts.metrics {
        cache.publish_metrics();
        write_file(out, &vtrain::obs::global().to_json())?;
        println!("metrics: registry snapshot -> {out}");
    }
    Ok(())
}

/// Runs one scenario's sweep against a caller-owned profile cache and
/// prints its report.
fn sweep_one(
    scenario: &Scenario,
    opts: &Opts,
    cache: &std::sync::Arc<ProfileCache>,
) -> Result<(), Error> {
    scenario.check()?;
    let goal = scenario.goal()?;
    let cost = scenario.cost_model()?;
    let mut builder = scenario.sweep()?.cache(std::sync::Arc::clone(cache));
    if opts.stage_profile {
        builder = builder.stage_profile(true);
    }
    if let Some(budget) = opts.budget() {
        let deadline = budget
            .deadline_ms
            .map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
        builder = builder.cancel(CancelToken::with_limits(deadline, budget.max_points));
    }
    let run = builder.run();
    // A blown limit fails the command (exit code 4), exactly like the
    // wire API: a truncated winner set is not the answer asked for.
    for variant in run.variants() {
        match variant.outcome.aborted {
            None => {}
            Some(AbortReason::Deadline) => {
                return Err(Error::deadline(format!(
                    "sweep exceeded its {} ms deadline",
                    opts.deadline_ms.unwrap_or(0)
                )));
            }
            Some(AbortReason::Budget) => {
                return Err(Error::deadline(format!(
                    "sweep exceeded its {}-point budget",
                    opts.max_points.unwrap_or(0)
                )));
            }
            Some(AbortReason::Cancelled) => return Err(Error::server("sweep cancelled")),
        }
    }
    for variant in run.variants() {
        let outcome = &variant.outcome;
        let stats = outcome.stats;
        if variant.label.is_empty() {
            println!("sweep (goal {goal:?}):");
        } else {
            println!("placement {} (goal {goal:?}):", variant.label);
        }
        println!(
            "  {} candidates -> {} points ({} infeasible, {} bound-pruned) in {:.2}s \
             ({:.0} points/s, cache hit-rate {:.1}%)",
            stats.candidates,
            outcome.points.len(),
            stats.pruned,
            stats.bound_pruned,
            stats.wall_s,
            stats.points_per_sec(),
            stats.cache_hit_rate() * 100.0
        );
        if let Some(profile) = &outcome.stage_profile {
            print_stage_profile(profile, "  ");
        }
        for point in outcome.points.iter().take(10) {
            println!(
                "  {:>24}  {:>6} GPUs  {:>12}  util {:>5.1}%",
                point.plan.to_string(),
                point.estimate.num_gpus,
                point.estimate.iteration_time.to_string(),
                point.estimate.utilization * 100.0
            );
        }
        if outcome.points.len() > 10 {
            println!("  ... and {} more points", outcome.points.len() - 10);
        }
        if let Some(best) = outcome.points.iter().min_by_key(|p| p.estimate.iteration_time) {
            println!(
                "  fastest: {} -> {} on {} GPUs",
                best.plan, best.estimate.iteration_time, best.estimate.num_gpus
            );
            print_projection(scenario, &cost, &best.estimate, "  ");
        }
    }
    Ok(())
}

/// Prints a sweep's per-stage CPU-time attribution table.
fn print_stage_profile(profile: &StageProfile, indent: &str) {
    let budget = (profile.wall_ns as f64 * profile.threads.max(1) as f64).max(1.0);
    let pct = |ns: u64| ns as f64 / budget * 100.0;
    let row = |name: &str, ns: u64| {
        println!("{indent}{name:<12} {:>12.3} ms  {:>5.1}%", ns as f64 / 1e6, pct(ns));
    };
    println!(
        "{indent}stage attribution ({} thread{}, {:.2}s wall):",
        profile.threads,
        if profile.threads == 1 { "" } else { "s" },
        profile.wall_ns as f64 / 1e9
    );
    row("order", profile.order_ns);
    row("validate", profile.stages.validate_ns);
    row("bound", profile.bound_ns);
    row("lower", profile.stages.lower_ns);
    row("simulate", profile.stages.simulate_ns);
    row("summarize", profile.stages.summarize_ns);
    println!(
        "{indent}{:<12} {:>12.3} ms  {:>5.1}%  (scheduling + merge overhead: {:.1}%)",
        "attributed",
        profile.attributed_ns() as f64 / 1e6,
        profile.attributed_fraction() * 100.0,
        (1.0 - profile.attributed_fraction()) * 100.0
    );
}

/// `explain`: where does the time go?
///
/// * For a scenario with a concrete plan: a per-pipeline-stage /
///   per-stream busy table of the predicted iteration, derived from the
///   same traced replay `predict --timeline` exports.
/// * For a scenario with a sweep section: a stage-profiled
///   single-threaded sweep whose CPU-time attribution table accounts for
///   (nearly all of) the wall clock.
fn explain(scenario: &Scenario) -> Result<(), Error> {
    scenario.check()?;
    let model = scenario.model()?;
    if scenario.parallelism.is_some() {
        let plan = scenario.plan()?;
        let estimator = scenario.estimator()?;
        let timeline = estimator.timeline(&model, &plan)?;
        let iteration_ns = timeline.report.iteration_time.as_nanos();
        println!("model:           {model}");
        println!("plan:            {plan}");
        println!("iteration time:  {}", timeline.report.iteration_time);
        println!("per-stage stream attribution (% of iteration):");
        println!("  {:<10} {:>14} {:>7}   {:>14} {:>7}", "stage", "compute", "", "comm", "");
        let busy = timeline.recorder.busy_per_stream();
        let lookup = |pid: u64, tid: u64| {
            busy.iter().find(|((p, t), _)| *p == pid && *t == tid).map_or(0, |(_, ns)| *ns)
        };
        let stages: Vec<u64> = {
            let mut pids: Vec<u64> = busy.iter().map(|((p, _), _)| *p).collect();
            pids.dedup();
            pids
        };
        let pct = |ns: u64| ns as f64 / iteration_ns.max(1) as f64 * 100.0;
        for pid in stages {
            let compute = lookup(pid, 0);
            let comm = lookup(pid, 1);
            println!(
                "  {:<10} {:>11.3} ms {:>6.1}%   {:>11.3} ms {:>6.1}%",
                format!("stage {pid}"),
                compute as f64 / 1e6,
                pct(compute),
                comm as f64 / 1e6,
                pct(comm)
            );
        }
        println!("by category (% of aggregate stage-time, all tracks):");
        let budget = (iteration_ns.max(1) * timeline.report.device_busy.len().max(1) as u64) as f64;
        for (cat, ns) in timeline.recorder.busy_per_category() {
            println!(
                "  {cat:<14} {:>11.3} ms {:>6.1}%",
                ns as f64 / 1e6,
                ns as f64 / budget * 100.0
            );
        }
    }
    if scenario.sweep.is_some() {
        // Single-threaded so CPU time ≈ wall time and the attribution
        // table accounts for the whole run.
        let outcome = scenario.sweep()?.threads(1).stage_profile(true).run().into_outcome();
        println!(
            "sweep: {} candidates -> {} points in {:.2}s",
            outcome.stats.candidates,
            outcome.points.len(),
            outcome.stats.wall_s
        );
        let profile = outcome.stage_profile.expect("stage_profile(true) attaches a profile");
        print_stage_profile(&profile, "  ");
    }
    if scenario.parallelism.is_none() && scenario.sweep.is_none() {
        return Err(Error::scenario(
            "nothing to explain: add a `parallelism` plan or a `sweep` section",
        ));
    }
    Ok(())
}

fn validate(scenario: &Scenario) -> Result<(), Error> {
    scenario.check()?;
    let model = scenario.model()?;
    let cluster = scenario.cluster()?;
    println!("scenario OK");
    println!("model:    {model}");
    println!("cluster:  {} x {}", cluster.total_gpus, cluster.gpu.name);
    if scenario.parallelism.is_some() {
        println!("plan:     {}", scenario.plan()?);
    }
    if scenario.sweep.is_some() {
        let limits = scenario.limits();
        println!(
            "sweep:    goal {:?}, t <= {}, d <= {}, p <= {}, m <= {}",
            scenario.goal()?,
            limits.max_tensor,
            limits.max_data,
            limits.max_pipeline,
            limits.max_micro_batch
        );
    }
    Ok(())
}
