//! The `vtrain` command-line front-end: drive prediction, design-space
//! sweeps, and validation from a single scenario file (paper Fig. 4,
//! step ①) — no Rust code required.
//!
//! ```sh
//! vtrain predict  examples/descriptions/megatron_18b.json
//! vtrain sweep    examples/descriptions/megatron_1_7b_sweep.json
//! vtrain validate examples/descriptions/megatron_18b.json
//! ```
//!
//! Exit codes: `0` success, `1` runtime failure (e.g. unreadable file),
//! `2` usage or invalid scenario (malformed JSON reports line/field
//! context).

use std::process::ExitCode;

use vtrain::prelude::*;

const USAGE: &str = "usage: vtrain <command> <scenario.json>

commands:
  predict    simulate the scenario's plan: iteration time, utilization,
             busy breakdown, and (with `tokens`) the end-to-end projection
  sweep      explore the (t, d, p, m) design space the scenario bounds,
             honoring its goal and placement axis
  validate   parse and resolve every section, reporting the first problem

see examples/descriptions/ for the scenario schema";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, path) = match args.as_slice() {
        [command, path] => (command.as_str(), path.as_str()),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scenario = match Scenario::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let result = match command {
        "predict" => predict(&scenario),
        "sweep" => sweep(&scenario),
        "validate" => validate(&scenario),
        other => {
            eprintln!("error: unknown command `{other}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::from(2)
        }
    }
}

/// Prints the end-to-end projection if the scenario carries a token
/// budget; `indent` matches the caller's block structure.
fn print_projection(
    scenario: &Scenario,
    cost: &CostModel,
    estimate: &IterationEstimate,
    indent: &str,
) {
    if let Some(tokens) = scenario.tokens {
        let projection = TrainingProjection::project(
            estimate.iteration_time,
            estimate.tokens_per_iteration,
            tokens,
            estimate.num_gpus,
            cost,
        );
        println!("{indent}iterations:      {}", projection.iterations);
        println!("{indent}training time:   {:.2} days", projection.days());
        println!("{indent}training cost:   ${:.2}M", projection.total_dollars / 1e6);
    }
}

fn predict(scenario: &Scenario) -> Result<(), Error> {
    // Full cross-section validation: anything `validate` rejects must
    // not run (e.g. a noise section that would be silently ignored).
    scenario.check()?;
    let model = scenario.model()?;
    let plan = scenario.plan()?;
    let cost = scenario.cost_model()?;
    let estimator = scenario.estimator()?;
    let estimate = estimator.estimate(&model, &plan)?;

    println!("model:           {model}");
    println!("plan:            {plan}");
    println!("GPUs:            {}", estimate.num_gpus);
    println!("iteration time:  {}", estimate.iteration_time);
    println!("utilization:     {:.1}%", estimate.utilization * 100.0);
    println!(
        "busy breakdown:  compute {} | TP {} | DP {} | PP {}",
        estimate.busy.compute, estimate.busy.tp_comm, estimate.busy.dp_comm, estimate.busy.pp_comm
    );
    if scenario.noise.is_some() {
        let measured = estimator.measure(&model, &plan)?;
        println!("measured:        {} (noise-emulated ground truth)", measured.iteration_time);
    }
    print_projection(scenario, &cost, &estimate, "");
    Ok(())
}

fn sweep(scenario: &Scenario) -> Result<(), Error> {
    scenario.check()?;
    let goal = scenario.goal()?;
    let cost = scenario.cost_model()?;
    let run = scenario.sweep()?.run();
    for variant in run.variants() {
        let outcome = &variant.outcome;
        let stats = outcome.stats;
        if variant.label.is_empty() {
            println!("sweep (goal {goal:?}):");
        } else {
            println!("placement {} (goal {goal:?}):", variant.label);
        }
        println!(
            "  {} candidates -> {} points ({} infeasible, {} bound-pruned) in {:.2}s \
             ({:.0} points/s, cache hit-rate {:.1}%)",
            stats.candidates,
            outcome.points.len(),
            stats.pruned,
            stats.bound_pruned,
            stats.wall_s,
            stats.points_per_sec(),
            stats.cache_hit_rate() * 100.0
        );
        for point in outcome.points.iter().take(10) {
            println!(
                "  {:>24}  {:>6} GPUs  {:>12}  util {:>5.1}%",
                point.plan.to_string(),
                point.estimate.num_gpus,
                point.estimate.iteration_time.to_string(),
                point.estimate.utilization * 100.0
            );
        }
        if outcome.points.len() > 10 {
            println!("  ... and {} more points", outcome.points.len() - 10);
        }
        if let Some(best) = outcome.points.iter().min_by_key(|p| p.estimate.iteration_time) {
            println!(
                "  fastest: {} -> {} on {} GPUs",
                best.plan, best.estimate.iteration_time, best.estimate.num_gpus
            );
            print_projection(scenario, &cost, &best.estimate, "  ");
        }
    }
    Ok(())
}

fn validate(scenario: &Scenario) -> Result<(), Error> {
    scenario.check()?;
    let model = scenario.model()?;
    let cluster = scenario.cluster()?;
    println!("scenario OK");
    println!("model:    {model}");
    println!("cluster:  {} x {}", cluster.total_gpus, cluster.gpu.name);
    if scenario.parallelism.is_some() {
        println!("plan:     {}", scenario.plan()?);
    }
    if scenario.sweep.is_some() {
        let limits = scenario.limits();
        println!(
            "sweep:    goal {:?}, t <= {}, d <= {}, p <= {}, m <= {}",
            scenario.goal()?,
            limits.max_tensor,
            limits.max_data,
            limits.max_pipeline,
            limits.max_micro_batch
        );
    }
    Ok(())
}
