//! The scenario file (paper Fig. 4, step ①) — vTrain's single input.
//!
//! A [`Scenario`] describes everything a run needs declaratively: the
//! target LLM, the training system, and optionally the parallelization
//! strategy to evaluate, the interconnect topology, the ground-truth
//! noise model, and a design-space sweep (limits + goal + placement
//! axis). New workloads enter the system as JSON files, not Rust code:
//!
//! ```json
//! {
//!   "model": { "preset": "megatron-18.4B" },
//!   "cluster": { "preset": "aws-p4d", "total_gpus": 512 },
//!   "parallelism": { "tensor": 8, "data": 8, "pipeline": 8,
//!                    "micro_batch": 2, "global_batch": 512,
//!                    "schedule": "1f1b" },
//!   "topology": { "alpha": 1.0 },
//!   "sweep": { "goal": "front",
//!              "limits": { "max_tensor": 8, "max_data": 16 },
//!              "placements": [ {}, { "nodes_per_rack": 4 } ] },
//!   "tokens": 300000000000
//! }
//! ```
//!
//! Unknown fields are rejected (a typo'd key is an error, not a silent
//! no-op), and every resolution error is a [`crate::Error`].
//!
//! [`Description`] is an alias for [`Scenario`]: the paper calls the
//! minimal (model, cluster, parallelism) file an "input description";
//! the scenario schema extends it with the optional sections.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use vtrain_core::search::{SearchLimits, Sweep, SweepGoal};
use vtrain_core::{CostModel, Estimator, EstimatorBuilder};
use vtrain_gpu::NoiseConfig;
use vtrain_model::{presets, ModelConfig, TimeNs};
use vtrain_net::{NetworkBackend, TierSpec, Topology};
use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule};
use vtrain_profile::ProfileCache;

use crate::Error;

/// Default rack-spine bandwidth (bytes/s) when a placement or rack
/// section omits it — a 200 Gb/s-class aggregation uplink.
const DEFAULT_SPINE_BANDWIDTH: f64 = 25e9;
/// Default rack-spine base latency (µs) when omitted.
const DEFAULT_SPINE_LATENCY_US: f64 = 35.0;

/// Root of the scenario file.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct Scenario {
    /// The target LLM.
    pub model: ModelSection,
    /// The training system.
    pub cluster: ClusterSection,
    /// The `(t, d, p)` strategy to evaluate (required by `predict`;
    /// optional when the scenario only sweeps).
    #[serde(default)]
    pub parallelism: Option<ParallelismSection>,
    /// Interconnect topology overrides (α calibration, rack tier).
    #[serde(default)]
    pub topology: Option<TopologySection>,
    /// Communication pricing backend (closed-form vs. fair sharing).
    #[serde(default)]
    pub network: Option<NetworkSection>,
    /// Ground-truth emulation effects for "measured" runs.
    #[serde(default)]
    pub noise: Option<NoiseSection>,
    /// Design-space sweep: limits, goal, and placement axis.
    #[serde(default)]
    pub sweep: Option<SweepSection>,
    /// Total training tokens (enables the end-to-end projection).
    #[serde(default)]
    pub tokens: Option<u64>,
    /// Dollars per GPU-hour (default $5.00, the paper's P4d rate).
    #[serde(default)]
    pub cost_per_gpu_hour: Option<f64>,
}

/// The paper's name for the minimal input file; the scenario schema is
/// its superset, so the alias keeps both spellings valid.
pub type Description = Scenario;

/// Model: either a named preset or explicit hyperparameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(untagged, deny_unknown_fields)]
pub enum ModelSection {
    /// A named preset, e.g. `"gpt3-175b"`, `"mt-nlg-530b"`,
    /// `"megatron-18.4B"`.
    Preset {
        /// Preset name.
        preset: String,
    },
    /// Explicit hyperparameters (paper Fig. 2 notation).
    Explicit {
        /// Display name.
        #[serde(default)]
        name: Option<String>,
        /// Hidden size `h`.
        hidden_size: usize,
        /// Decoder layers `L`.
        num_layers: usize,
        /// Attention heads `n`.
        num_heads: usize,
        /// Sequence length `s`.
        seq_len: usize,
        /// Vocabulary size `V`.
        vocab_size: usize,
    },
}

/// Cluster: a platform preset plus size.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ClusterSection {
    /// `"aws-p4d"` (A100-40GB) or `"dgx-a100-80gb"`.
    pub preset: String,
    /// Total GPUs.
    pub total_gpus: usize,
}

/// The 3D-parallelism plan.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct ParallelismSection {
    /// Tensor-parallel degree `t`.
    pub tensor: usize,
    /// Data-parallel degree `d`.
    pub data: usize,
    /// Pipeline depth `p`.
    pub pipeline: usize,
    /// Micro-batch size `m`.
    pub micro_batch: usize,
    /// Global batch (sequences per iteration).
    pub global_batch: usize,
    /// `"1f1b"` (default) or `"gpipe"`.
    #[serde(default)]
    pub schedule: Option<String>,
    /// DP gradient bucketing (default true).
    #[serde(default)]
    pub gradient_bucketing: Option<bool>,
}

/// Interconnect topology overrides for prediction.
///
/// `alpha` alone keeps the paper's flat Equation (1) model (it is the
/// flat model's §IV calibration knob); hierarchical topology-aware
/// pricing engages only when a `rack` tier is declared or
/// `hierarchical` is set.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct TopologySection {
    /// Bandwidth-effectiveness factor `α ∈ (0, 1]` applied above the
    /// node tier (paper §IV; default 1.0).
    #[serde(default)]
    pub alpha: Option<f64>,
    /// Prices collectives on the cluster's two-tier hierarchy (NVLink /
    /// InfiniBand) via the algorithm library instead of the flat model,
    /// even without a rack tier.
    #[serde(default)]
    pub hierarchical: Option<bool>,
    /// Adds a rack tier: nodes grouped into racks joined by a spine
    /// (implies hierarchical pricing).
    #[serde(default)]
    pub rack: Option<RackSection>,
}

/// One rack tier of the hierarchy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct RackSection {
    /// Nodes per rack.
    pub nodes_per_rack: usize,
    /// Rack-spine bandwidth, bytes/s (default 25e9).
    #[serde(default)]
    pub bandwidth: Option<f64>,
    /// Rack-spine base latency, µs (default 35).
    #[serde(default)]
    pub base_latency_us: Option<f64>,
}

/// How communication time is priced.
///
/// `"closed-form"` (the default) prices every collective in isolation
/// via the paper's Equation (1) family; `"fair-sharing"` replays the
/// task graph with concurrent transfers contending for link bandwidth
/// under progressive-filling max-min fair sharing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct NetworkSection {
    /// `"closed-form"` or `"fair-sharing"` (case-insensitive).
    pub backend: String,
}

/// Ground-truth emulation magnitudes; every field defaults to the
/// paper's §IV decomposition ([`NoiseConfig::default`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct NoiseSection {
    /// Seed for all deterministic pseudo-randomness.
    #[serde(default)]
    pub seed: Option<u64>,
    /// Mean fractional slow-down of overlapped collectives (~0.30).
    #[serde(default)]
    pub comm_inflation: Option<f64>,
    /// Log-normal σ of per-kernel jitter.
    #[serde(default)]
    pub jitter_sigma: Option<f64>,
    /// Log-normal σ of per-node straggler slow-down.
    #[serde(default)]
    pub straggler_sigma: Option<f64>,
    /// Fractional slow-down per additional DP group sharing uplinks.
    #[serde(default)]
    pub congestion_per_group: Option<f64>,
    /// Host-side launch overhead per kernel, ns.
    #[serde(default)]
    pub launch_overhead_ns: Option<u64>,
    /// Log-normal σ of the per-configuration iteration bias.
    #[serde(default)]
    pub iteration_bias_sigma: Option<f64>,
}

/// Design-space sweep: what to enumerate and what the result must
/// guarantee.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepSection {
    /// Grid bounds (each axis defaults to the paper's §V-A limits).
    #[serde(default)]
    pub limits: Option<LimitsSection>,
    /// `"exhaustive"` (default), `"front"`, or `"best"`.
    #[serde(default)]
    pub goal: Option<String>,
    /// Global batch for candidate enumeration (defaults to the
    /// parallelism section's).
    #[serde(default)]
    pub global_batch: Option<usize>,
    /// Schedule for enumerated candidates (defaults to the parallelism
    /// section's, else `"1f1b"`).
    #[serde(default)]
    pub schedule: Option<String>,
    /// Worker threads (default: all cores).
    #[serde(default)]
    pub threads: Option<usize>,
    /// Placement axis: the same grid priced under several interconnect
    /// layouts, sharing one profile cache.
    #[serde(default)]
    pub placements: Option<Vec<PlacementSection>>,
}

/// Bounds of the `(t, d, p, m)` grid; omitted axes take the defaults of
/// [`SearchLimits`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct LimitsSection {
    /// Maximum tensor-parallel degree.
    #[serde(default)]
    pub max_tensor: Option<usize>,
    /// Maximum data-parallel degree.
    #[serde(default)]
    pub max_data: Option<usize>,
    /// Maximum pipeline depth.
    #[serde(default)]
    pub max_pipeline: Option<usize>,
    /// Maximum micro-batch size.
    #[serde(default)]
    pub max_micro_batch: Option<usize>,
}

/// One placement variant: `{}` is the cluster's plain two-tier layout;
/// `nodes_per_rack` adds a rack tier with an optional explicit spine.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PlacementSection {
    /// Display label (default `"two-tier"` or `"multi-rack/N"`).
    #[serde(default)]
    pub label: Option<String>,
    /// Nodes per rack (absent → no rack tier).
    #[serde(default)]
    pub nodes_per_rack: Option<usize>,
    /// Rack-spine bandwidth, bytes/s (default 25e9).
    #[serde(default)]
    pub bandwidth: Option<f64>,
    /// Rack-spine base latency, µs (default 35).
    #[serde(default)]
    pub base_latency_us: Option<f64>,
}

/// Builds a rack-spine tier from scenario fields, converting the
/// constructor's panics on nonsense values into scenario errors (user
/// input must never reach an `assert!`).
fn spine(bandwidth: Option<f64>, base_latency_us: Option<f64>) -> Result<TierSpec, Error> {
    let bandwidth = bandwidth.unwrap_or(DEFAULT_SPINE_BANDWIDTH);
    // The 1 MB/s floor keeps transfer times finite on the u64 ns clock;
    // anything slower is not a rack spine.
    const MIN_SPINE_BANDWIDTH: f64 = 1e6;
    if !(bandwidth >= MIN_SPINE_BANDWIDTH && bandwidth.is_finite()) {
        return Err(Error::scenario(format!(
            "spine bandwidth must be at least {MIN_SPINE_BANDWIDTH} bytes/s, got {bandwidth}"
        )));
    }
    let latency_us = base_latency_us.unwrap_or(DEFAULT_SPINE_LATENCY_US);
    // Capped at 1 s, like `noise.launch_overhead_ns`: a larger per-hop
    // latency is nonsense and overflows the u64 nanosecond clock.
    const MAX_SPINE_LATENCY_US: f64 = 1e6;
    if !(0.0..=MAX_SPINE_LATENCY_US).contains(&latency_us) {
        return Err(Error::scenario(format!(
            "spine base latency must be in 0..={MAX_SPINE_LATENCY_US} µs, got {latency_us}"
        )));
    }
    Ok(TierSpec::new(bandwidth, TimeNs::from_secs_f64(latency_us * 1e-6), 1.0))
}

/// Validates a scenario's `nodes_per_rack` before it can trip
/// `Topology::with_rack_tier`'s assertion.
fn checked_rack_size(nodes_per_rack: usize) -> Result<usize, Error> {
    if nodes_per_rack == 0 {
        return Err(Error::scenario("`nodes_per_rack` must be at least 1"));
    }
    Ok(nodes_per_rack)
}

fn parse_schedule(text: Option<&str>) -> Result<PipelineSchedule, Error> {
    // Case-insensitive, like the goal names.
    match text.map(str::to_lowercase).as_deref() {
        None | Some("1f1b") => Ok(PipelineSchedule::OneFOneB),
        Some("gpipe") => Ok(PipelineSchedule::GPipe),
        Some(other) => Err(Error::scenario(format!("unknown schedule `{other}`"))),
    }
}

impl Scenario {
    /// Parses a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] describing the malformed field, with
    /// line/column context for syntax errors.
    pub fn from_json(text: &str) -> Result<Self, Error> {
        Ok(serde_json::from_str(text)?)
    }

    /// Serializes the scenario back to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialization is infallible")
    }

    /// Resolves the model section.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown presets or invalid hyperparameters.
    pub fn model(&self) -> Result<ModelConfig, Error> {
        match &self.model {
            ModelSection::Preset { preset } => match preset.to_lowercase().as_str() {
                "gpt2-1.5b" => Ok(presets::gpt2_1_5b()),
                "gpt3-175b" => Ok(presets::gpt3_175b()),
                "mt-nlg-530b" => Ok(presets::mt_nlg_530b()),
                other => {
                    if let Some(size) = other.strip_prefix("megatron-") {
                        // Exact-name match: suffix matching would let a
                        // typo'd size ("8.4B") silently resolve to a
                        // different model ("18.4B").
                        let target = format!("Megatron {}", size.to_uppercase());
                        presets::megatron_family()
                            .into_iter()
                            .find(|m| m.name() == target)
                            .ok_or_else(|| {
                                Error::scenario(format!("unknown megatron size `{size}`"))
                            })
                    } else {
                        Err(Error::scenario(format!("unknown model preset `{preset}`")))
                    }
                }
            },
            ModelSection::Explicit {
                name,
                hidden_size,
                num_layers,
                num_heads,
                seq_len,
                vocab_size,
            } => Ok(ModelConfig::builder()
                .name(name.clone().unwrap_or_else(|| "scenario".to_owned()))
                .hidden_size(*hidden_size)
                .num_layers(*num_layers)
                .num_heads(*num_heads)
                .seq_len(*seq_len)
                .vocab_size(*vocab_size)
                .build()?),
        }
    }

    /// Resolves the cluster section.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown platform presets.
    pub fn cluster(&self) -> Result<ClusterSpec, Error> {
        match self.cluster.preset.to_lowercase().as_str() {
            "aws-p4d" => Ok(ClusterSpec::aws_p4d(self.cluster.total_gpus)),
            "dgx-a100-80gb" => Ok(ClusterSpec::dgx_a100_80gb(self.cluster.total_gpus)),
            other => Err(Error::scenario(format!("unknown cluster preset `{other}`"))),
        }
    }

    /// Resolves the parallelism section into a typed plan.
    ///
    /// # Errors
    ///
    /// Returns an error if the section is absent, a degree is invalid,
    /// or the schedule is unknown.
    pub fn plan(&self) -> Result<ParallelConfig, Error> {
        let Some(p) = &self.parallelism else {
            return Err(Error::scenario(
                "missing `parallelism` section (required to predict a single plan)",
            ));
        };
        let schedule = parse_schedule(p.schedule.as_deref())?;
        Ok(ParallelConfig::builder()
            .tensor(p.tensor)
            .data(p.data)
            .pipeline(p.pipeline)
            .micro_batch(p.micro_batch)
            .global_batch(p.global_batch)
            .schedule(schedule)
            .gradient_bucketing(p.gradient_bucketing.unwrap_or(true))
            .build()?)
    }

    /// The §IV bandwidth-effectiveness factor (default 1.0).
    pub fn alpha(&self) -> f64 {
        self.topology.as_ref().and_then(|t| t.alpha).unwrap_or(1.0)
    }

    /// [`Scenario::alpha`], rejecting values outside `(0, 1]` before
    /// they can trip a tier constructor's assertion.
    fn checked_alpha(&self) -> Result<f64, Error> {
        let alpha = self.alpha();
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(Error::scenario(format!(
                "`topology.alpha` must be in (0, 1], got {alpha}"
            )));
        }
        Ok(alpha)
    }

    /// The communication pricing backend the scenario selects (default
    /// [`NetworkBackend::ClosedForm`]).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown backend name.
    pub fn network_backend(&self) -> Result<NetworkBackend, Error> {
        match &self.network {
            None => Ok(NetworkBackend::default()),
            Some(section) => NetworkBackend::parse(&section.backend).ok_or_else(|| {
                Error::scenario(format!(
                    "unknown network backend `{}` (expected closed-form|fair-sharing)",
                    section.backend
                ))
            }),
        }
    }

    /// The noise configuration: the optional section's overrides merged
    /// over [`NoiseConfig::default`]. `None` when no section is present.
    ///
    /// # Errors
    ///
    /// Returns an error for negative or non-finite magnitudes — the
    /// noise model scales times by these factors, and they must never
    /// reach its assertions from user input.
    pub fn noise_config(&self) -> Result<Option<NoiseConfig>, Error> {
        let Some(n) = &self.noise else { return Ok(None) };
        let base = NoiseConfig::default();
        let merged = NoiseConfig {
            seed: n.seed.unwrap_or(base.seed),
            comm_inflation: n.comm_inflation.unwrap_or(base.comm_inflation),
            jitter_sigma: n.jitter_sigma.unwrap_or(base.jitter_sigma),
            straggler_sigma: n.straggler_sigma.unwrap_or(base.straggler_sigma),
            congestion_per_group: n.congestion_per_group.unwrap_or(base.congestion_per_group),
            launch_overhead: n
                .launch_overhead_ns
                .map(TimeNs::from_nanos)
                .unwrap_or(base.launch_overhead),
            iteration_bias_sigma: n.iteration_bias_sigma.unwrap_or(base.iteration_bias_sigma),
        };
        // 10 is far beyond any physical magnitude (the paper's largest
        // is 0.30) yet small enough that `exp(σ·z)` and the inflation
        // factors stay finite through the replay's multiplications.
        const MAX_NOISE_MAGNITUDE: f64 = 10.0;
        for (value, field) in [
            (merged.comm_inflation, "comm_inflation"),
            (merged.jitter_sigma, "jitter_sigma"),
            (merged.straggler_sigma, "straggler_sigma"),
            (merged.congestion_per_group, "congestion_per_group"),
            (merged.iteration_bias_sigma, "iteration_bias_sigma"),
        ] {
            if !(0.0..=MAX_NOISE_MAGNITUDE).contains(&value) {
                return Err(Error::scenario(format!(
                    "`noise.{field}` must be in 0..={MAX_NOISE_MAGNITUDE}, got {value}"
                )));
            }
        }
        // A per-kernel overhead beyond 1 s is nonsense and, accumulated
        // over a replay, overflows the u64 nanosecond clock.
        const MAX_LAUNCH_OVERHEAD_NS: u64 = 1_000_000_000;
        if merged.launch_overhead.as_nanos() > MAX_LAUNCH_OVERHEAD_NS {
            return Err(Error::scenario(format!(
                "`noise.launch_overhead_ns` must be at most {MAX_LAUNCH_OVERHEAD_NS} (1 s), \
                 got {}",
                merged.launch_overhead.as_nanos()
            )));
        }
        Ok(Some(merged))
    }

    /// The topology the prediction estimator prices communication on:
    /// `None` for the flat Equation (1) model (no topology section, or
    /// one that only calibrates `alpha`), otherwise the cluster's
    /// two-tier layout, extended by a rack tier if the section declares
    /// one.
    ///
    /// # Errors
    ///
    /// Returns an error if the cluster preset is unknown or a section
    /// value is out of range.
    pub fn topology(&self) -> Result<Option<Topology>, Error> {
        let Some(section) = &self.topology else { return Ok(None) };
        // A rack tier only exists under hierarchical pricing; an
        // explicit opt-out alongside one is contradictory, not a
        // precedence question.
        if section.hierarchical == Some(false) && section.rack.is_some() {
            return Err(Error::scenario(
                "`topology.hierarchical: false` contradicts `topology.rack` — a rack tier \
                 requires hierarchical pricing",
            ));
        }
        // `alpha` alone calibrates the flat model; it must not silently
        // switch pricing models (the numbers differ).
        if section.rack.is_none() && !section.hierarchical.unwrap_or(false) {
            self.checked_alpha()?;
            return Ok(None);
        }
        let cluster = self.cluster()?;
        let mut topo = cluster.topology(self.checked_alpha()?);
        if let Some(rack) = &section.rack {
            topo = topo.with_rack_tier(
                checked_rack_size(rack.nodes_per_rack)?,
                spine(rack.bandwidth, rack.base_latency_us)?,
            );
        }
        Ok(Some(topo))
    }

    /// Builds the estimator the scenario describes: cluster + α +
    /// optional topology + optional noise, via [`Estimator::builder`].
    ///
    /// # Errors
    ///
    /// Returns an error if the cluster or topology cannot be resolved.
    pub fn estimator(&self) -> Result<Estimator, Error> {
        Ok(self.estimator_builder()?.build())
    }

    /// [`Scenario::estimator`] over a shared profile cache — the serving
    /// path, where one cache spans every request's estimator.
    ///
    /// # Errors
    ///
    /// Returns an error if the cluster or topology cannot be resolved.
    pub fn estimator_with(&self, cache: Arc<ProfileCache>) -> Result<Estimator, Error> {
        Ok(self.estimator_builder()?.cache(cache).build())
    }

    fn estimator_builder(&self) -> Result<EstimatorBuilder, Error> {
        let mut builder = Estimator::builder(self.cluster()?)
            .alpha(self.checked_alpha()?)
            .network(self.network_backend()?);
        if let Some(topology) = self.topology()? {
            builder = builder.topology(topology);
        }
        if let Some(noise) = self.noise_config()? {
            builder = builder.noise(noise);
        }
        Ok(builder)
    }

    /// The cost model: the scenario's GPU-hour rate, or the paper's
    /// default P4d rate when unset.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive or non-finite rate — the
    /// cost model asserts positivity, and user input must never reach
    /// that assertion.
    pub fn cost_model(&self) -> Result<CostModel, Error> {
        match self.cost_per_gpu_hour {
            None => Ok(CostModel::default()),
            Some(rate) if rate > 0.0 && rate.is_finite() => Ok(CostModel::new(rate)),
            Some(rate) => Err(Error::scenario(format!(
                "`cost_per_gpu_hour` must be a positive finite number, got {rate}"
            ))),
        }
    }

    /// Resolves the sweep section's grid bounds (defaults where omitted).
    pub fn limits(&self) -> SearchLimits {
        let defaults = SearchLimits::default();
        let Some(l) = self.sweep.as_ref().and_then(|s| s.limits.as_ref()) else {
            return defaults;
        };
        SearchLimits {
            max_tensor: l.max_tensor.unwrap_or(defaults.max_tensor),
            max_data: l.max_data.unwrap_or(defaults.max_data),
            max_pipeline: l.max_pipeline.unwrap_or(defaults.max_pipeline),
            max_micro_batch: l.max_micro_batch.unwrap_or(defaults.max_micro_batch),
        }
    }

    /// Resolves the sweep section's goal (default exhaustive).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown goal name.
    pub fn goal(&self) -> Result<SweepGoal, Error> {
        // Case-insensitive, like the schedule names.
        match self.sweep.as_ref().and_then(|s| s.goal.as_deref()).map(str::to_lowercase).as_deref()
        {
            None | Some("exhaustive") => Ok(SweepGoal::Exhaustive),
            Some("front") => Ok(SweepGoal::Front),
            Some("best") => Ok(SweepGoal::Best),
            Some(other) => Err(Error::scenario(format!(
                "unknown sweep goal `{other}` (expected exhaustive|front|best)"
            ))),
        }
    }

    /// Builds the configured [`Sweep`] the scenario describes (not yet
    /// run). The global batch comes from the sweep section, falling back
    /// to the parallelism section's.
    ///
    /// # Errors
    ///
    /// Returns an error if no global batch is available, or any section
    /// fails to resolve.
    pub fn sweep(&self) -> Result<Sweep, Error> {
        let model = self.model()?;
        let cluster = self.cluster()?;
        let section = self.sweep.as_ref();
        let batch = section
            .and_then(|s| s.global_batch)
            .or_else(|| self.parallelism.as_ref().map(|p| p.global_batch))
            .ok_or_else(|| {
                Error::scenario(
                    "no global batch for the sweep (set `sweep.global_batch` or a \
                     `parallelism` section)",
                )
            })?;
        if batch == 0 {
            return Err(Error::scenario("the sweep's global batch must be at least 1"));
        }
        let schedule = parse_schedule(
            section
                .and_then(|s| s.schedule.as_deref())
                .or_else(|| self.parallelism.as_ref().and_then(|p| p.schedule.as_deref())),
        )?;
        let limits = self.limits();
        for (value, field) in [
            (limits.max_tensor, "max_tensor"),
            (limits.max_data, "max_data"),
            (limits.max_pipeline, "max_pipeline"),
            (limits.max_micro_batch, "max_micro_batch"),
        ] {
            if value == 0 {
                return Err(Error::scenario(format!(
                    "`sweep.limits.{field}` must be at least 1 (a zero limit sweeps nothing)"
                )));
            }
        }
        let mut sweep = Sweep::over(&model, &cluster)
            .batch(batch)
            .schedule(schedule)
            .limits(limits)
            .goal(self.goal()?)
            .alpha(self.checked_alpha()?)
            .network(self.network_backend()?);
        if let Some(threads) = section.and_then(|s| s.threads) {
            // Bound worker threads: a runaway value would panic at OS
            // thread-spawn instead of erroring like every other field.
            const MAX_SWEEP_THREADS: usize = 512;
            if !(1..=MAX_SWEEP_THREADS).contains(&threads) {
                return Err(Error::scenario(format!(
                    "`sweep.threads` must be in 1..={MAX_SWEEP_THREADS}, got {threads}"
                )));
            }
            sweep = sweep.threads(threads);
        }
        // An empty placement list means "no placement axis", not "flat
        // sweep": fall through to the scenario's topology section.
        let placements = section.and_then(|s| s.placements.as_ref()).filter(|p| !p.is_empty());
        if let Some(placements) = placements {
            // The placement axis defines each variant's rack structure
            // and always prices hierarchically; a scenario-level rack
            // tier would be silently overridden, and an explicit flat
            // opt-out silently ignored.
            if self.topology.as_ref().is_some_and(|t| t.rack.is_some()) {
                return Err(Error::scenario(
                    "`topology.rack` conflicts with `sweep.placements` — declare rack tiers \
                     per placement variant instead",
                ));
            }
            if self.topology.as_ref().is_some_and(|t| t.hierarchical == Some(false)) {
                return Err(Error::scenario(
                    "`topology.hierarchical: false` conflicts with `sweep.placements` — \
                     placement variants are always priced hierarchically",
                ));
            }
            let base = cluster.topology(self.checked_alpha()?);
            let resolved: Vec<(String, Topology)> = placements
                .iter()
                .map(|p| match p.nodes_per_rack {
                    None => {
                        // Spine fields describe the rack tier; without
                        // one they would be silently meaningless.
                        if p.bandwidth.is_some() || p.base_latency_us.is_some() {
                            return Err(Error::scenario(
                                "placement sets spine fields (`bandwidth`/`base_latency_us`) \
                                 without `nodes_per_rack`",
                            ));
                        }
                        Ok((p.label.clone().unwrap_or_else(|| "two-tier".to_owned()), base.clone()))
                    }
                    Some(nodes) => Ok((
                        p.label.clone().unwrap_or_else(|| format!("multi-rack/{nodes}")),
                        base.clone().with_rack_tier(
                            checked_rack_size(nodes)?,
                            spine(p.bandwidth, p.base_latency_us)?,
                        ),
                    )),
                })
                .collect::<Result<_, Error>>()?;
            let mut sorted: Vec<&(String, Topology)> = resolved.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            for pair in sorted.windows(2) {
                if pair[0].0 != pair[1].0 {
                    continue;
                }
                return Err(if pair[0].1 == pair[1].1 {
                    Error::scenario(format!(
                        "duplicate placement `{}` — each copy would run the identical sweep \
                         under an indistinguishable label",
                        pair[0].0
                    ))
                } else {
                    Error::scenario(format!(
                        "distinct placements share the label `{}` — set explicit `label`s to \
                         tell the variants apart",
                        pair[0].0
                    ))
                });
            }
            sweep = sweep.placements(resolved);
        } else if let Some(topology) = self.topology()? {
            sweep = sweep.topology(topology);
        }
        Ok(sweep)
    }

    /// Resolves every section that is present, returning the first
    /// error — the `vtrain validate` subcommand.
    ///
    /// # Errors
    ///
    /// Returns the first resolution error across sections.
    pub fn check(&self) -> Result<(), Error> {
        let model = self.model()?;
        let cluster = self.cluster()?;
        if self.parallelism.is_some() {
            let plan = self.plan()?;
            plan.validate(&model, &cluster)?;
        }
        self.topology()?;
        self.network_backend()?;
        self.noise_config()?;
        self.cost_model()?;
        self.goal()?;
        if self.sweep.is_some() {
            self.sweep()?;
        }
        if self.parallelism.is_none() && self.sweep.is_none() {
            return Err(Error::scenario(
                "scenario has neither a `parallelism` nor a `sweep` section — nothing to run",
            ));
        }
        // Noise only drives `predict`'s measured emulation; in a
        // sweep-only scenario it would be silently ignored.
        if self.noise.is_some() && self.parallelism.is_none() {
            return Err(Error::scenario(
                "`noise` requires a `parallelism` section — sweeps use clean predictions, so \
                 noise would be silently ignored",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "model": { "preset": "megatron-18.4B" },
        "cluster": { "preset": "aws-p4d", "total_gpus": 512 },
        "parallelism": { "tensor": 8, "data": 8, "pipeline": 8,
                         "micro_batch": 2, "global_batch": 512,
                         "schedule": "1f1b" },
        "tokens": 300000000000
    }"#;

    #[test]
    fn example_description_resolves() {
        let d = Scenario::from_json(EXAMPLE).unwrap();
        assert_eq!(d.model().unwrap().hidden_size(), 6144);
        assert_eq!(d.cluster().unwrap().total_gpus, 512);
        let plan = d.plan().unwrap();
        assert_eq!(plan.num_gpus(), 512);
        assert_eq!(d.tokens, Some(300_000_000_000));
        d.check().unwrap();
    }

    #[test]
    fn explicit_model_resolves() {
        let text = r#"{
            "model": { "hidden_size": 1024, "num_layers": 8, "num_heads": 16,
                       "seq_len": 512, "vocab_size": 50257 },
            "cluster": { "preset": "dgx-a100-80gb", "total_gpus": 8 },
            "parallelism": { "tensor": 2, "data": 2, "pipeline": 2,
                             "micro_batch": 1, "global_batch": 8 }
        }"#;
        let d = Scenario::from_json(text).unwrap();
        assert_eq!(d.model().unwrap().num_layers(), 8);
        assert_eq!(d.plan().unwrap().schedule(), PipelineSchedule::OneFOneB);
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let text = EXAMPLE.replace("megatron-18.4B", "bert-base");
        let d = Scenario::from_json(&text).unwrap();
        let err = d.model().unwrap_err();
        assert!(err.to_string().contains("unknown"));
        // A typo'd size must error, not suffix-match a larger model.
        let text = EXAMPLE.replace("megatron-18.4B", "megatron-8.4B");
        let err = Scenario::from_json(&text).unwrap().model().unwrap_err();
        assert!(err.to_string().contains("unknown megatron size"), "{err}");
    }

    #[test]
    fn unknown_schedule_is_an_error() {
        let text = EXAMPLE.replace("1f1b", "interleaved");
        let d = Scenario::from_json(&text).unwrap();
        assert!(d.plan().is_err());
    }

    #[test]
    fn malformed_json_reports_position() {
        let err = Scenario::from_json("{\n  \"model\": }").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 2"), "position context in: {msg}");
    }

    #[test]
    fn unknown_fields_are_rejected() {
        let text = EXAMPLE.replace("\"tokens\"", "\"tokns\"");
        let err = Scenario::from_json(&text).unwrap_err();
        assert!(err.to_string().contains("unknown field `tokns`"), "{err}");
        // ... in nested sections too.
        let text = EXAMPLE.replace("\"tensor\"", "\"tensr\"");
        assert!(Scenario::from_json(&text).is_err());
    }

    #[test]
    fn topology_and_noise_sections_resolve() {
        let text = r#"{
            "model": { "preset": "megatron-1.7B" },
            "cluster": { "preset": "aws-p4d", "total_gpus": 64 },
            "parallelism": { "tensor": 2, "data": 4, "pipeline": 2,
                             "micro_batch": 1, "global_batch": 16 },
            "topology": { "alpha": 0.8, "rack": { "nodes_per_rack": 2 } },
            "noise": { "seed": 7, "comm_inflation": 0.25 }
        }"#;
        let d = Scenario::from_json(text).unwrap();
        assert_eq!(d.alpha(), 0.8);
        let topo = d.topology().unwrap().unwrap();
        assert_eq!(topo.num_tiers(), 3);
        let noise = d.noise_config().unwrap().unwrap();
        assert_eq!(noise.seed, 7);
        assert_eq!(noise.comm_inflation, 0.25);
        // Unset noise fields keep their defaults.
        assert_eq!(noise.jitter_sigma, NoiseConfig::default().jitter_sigma);
        let est = d.estimator().unwrap();
        assert!(est.is_topology_aware());
        assert_eq!(est.alpha(), 0.8);
    }

    #[test]
    fn alpha_only_topology_section_keeps_the_flat_model() {
        let text = r#"{
            "model": { "preset": "megatron-1.7B" },
            "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
            "parallelism": { "tensor": 2, "data": 2, "pipeline": 2,
                             "micro_batch": 1, "global_batch": 8 },
            "topology": { "alpha": 0.9 }
        }"#;
        let d = Scenario::from_json(text).unwrap();
        // α is the flat model's calibration knob: stating it must not
        // silently switch to hierarchical pricing.
        assert_eq!(d.topology().unwrap(), None);
        let est = d.estimator().unwrap();
        assert!(!est.is_topology_aware());
        assert_eq!(est.alpha(), 0.9);
        // Explicit opt-in engages the hierarchy without a rack tier.
        let aware = Scenario::from_json(&text.replace(
            r#""topology": { "alpha": 0.9 }"#,
            r#""topology": { "alpha": 0.9, "hierarchical": true }"#,
        ))
        .unwrap();
        assert!(aware.estimator().unwrap().is_topology_aware());
        // An explicit opt-out next to a rack tier is contradictory.
        let conflicted = Scenario::from_json(&text.replace(
            r#""topology": { "alpha": 0.9 }"#,
            r#""topology": { "hierarchical": false, "rack": { "nodes_per_rack": 2 } }"#,
        ))
        .unwrap();
        assert!(conflicted.topology().unwrap_err().to_string().contains("contradicts"));
        // Schedule names are case-insensitive, like goals.
        let cased =
            Scenario::from_json(&text.replace("\"topology\"", "\"tokens\": 1, \"topology\""))
                .unwrap();
        assert!(cased.plan().is_ok());
        let mut scenario = cased;
        scenario.parallelism.as_mut().unwrap().schedule = Some("GPIPE".to_owned());
        assert_eq!(scenario.plan().unwrap().schedule(), PipelineSchedule::GPipe);
    }

    #[test]
    fn network_section_selects_the_pricing_backend() {
        let base = r#"{
            "model": { "preset": "megatron-1.7B" },
            "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
            "parallelism": { "tensor": 2, "data": 4, "pipeline": 2,
                             "micro_batch": 1, "global_batch": 8 }
        }"#;
        let d = Scenario::from_json(base).unwrap();
        assert_eq!(d.network_backend().unwrap(), NetworkBackend::ClosedForm);
        assert_eq!(d.estimator().unwrap().network(), NetworkBackend::ClosedForm);

        let with = |backend: &str| {
            let text = format!(
                "{}, \"network\": {{ \"backend\": \"{backend}\" }}}}",
                &base[..base.rfind('}').unwrap()]
            );
            Scenario::from_json(&text).unwrap()
        };
        // Both canonical spellings parse, case-insensitively.
        let fair = with("fair-sharing");
        fair.check().unwrap();
        assert_eq!(fair.network_backend().unwrap(), NetworkBackend::FairSharing);
        assert_eq!(fair.estimator().unwrap().network(), NetworkBackend::FairSharing);
        assert_eq!(with("Closed-Form").network_backend().unwrap(), NetworkBackend::ClosedForm);
        // An unknown backend errors at resolution and at validation.
        let bad = with("tdma");
        let err = bad.network_backend().unwrap_err();
        assert!(err.to_string().contains("unknown network backend `tdma`"), "{err}");
        assert!(bad.check().is_err(), "validate must flag the unknown backend");
        // The section round-trips through serialization.
        let reparsed = Scenario::from_json(&fair.to_json()).unwrap();
        assert_eq!(reparsed.network_backend().unwrap(), NetworkBackend::FairSharing);
    }

    #[test]
    fn sweep_section_builds_a_goal_guided_placement_sweep() {
        let text = r#"{
            "model": { "preset": "megatron-1.7B" },
            "cluster": { "preset": "aws-p4d", "total_gpus": 32 },
            "sweep": {
                "global_batch": 16,
                "goal": "best",
                "threads": 2,
                "limits": { "max_tensor": 2, "max_data": 4, "max_pipeline": 2,
                            "max_micro_batch": 2 },
                "placements": [ {}, { "nodes_per_rack": 2 } ]
            }
        }"#;
        let d = Scenario::from_json(text).unwrap();
        d.check().unwrap();
        assert_eq!(d.goal().unwrap(), SweepGoal::Best);
        let cased = Scenario::from_json(&text.replace("\"best\"", "\"Best\"")).unwrap();
        assert_eq!(cased.goal().unwrap(), SweepGoal::Best, "goal names are case-insensitive");
        let run = d.sweep().unwrap().run();
        let variants = run.variants();
        assert_eq!(variants.len(), 2);
        assert_eq!(variants[0].label, "two-tier");
        assert_eq!(variants[1].label, "multi-rack/2");
        for v in variants {
            assert_eq!(v.outcome.points.len(), 1, "Best returns exactly the winner");
        }
    }

    #[test]
    fn nonsense_numeric_inputs_error_instead_of_panicking() {
        let base = r#"{
            "model": { "preset": "megatron-1.7B" },
            "cluster": { "preset": "aws-p4d", "total_gpus": 32 },
            "parallelism": { "tensor": 2, "data": 4, "pipeline": 2,
                             "micro_batch": 1, "global_batch": 16 }
        }"#;
        let with = |extra: &str| {
            let text = format!("{}{}{}", &base[..base.rfind('}').unwrap()], extra, "}");
            Scenario::from_json(&text).unwrap()
        };
        // α outside (0, 1].
        let d = with(r#", "topology": { "alpha": 1.5 }"#);
        assert!(d.estimator().unwrap_err().to_string().contains("alpha"));
        assert!(d.check().is_err());
        // Zero-node racks.
        let d = with(r#", "topology": { "rack": { "nodes_per_rack": 0 } }"#);
        assert!(d.topology().unwrap_err().to_string().contains("nodes_per_rack"));
        // Non-positive spine bandwidth on the placement axis.
        let d =
            with(r#", "sweep": { "placements": [ { "nodes_per_rack": 2, "bandwidth": 0.0 } ] }"#);
        assert!(d.sweep().unwrap_err().to_string().contains("bandwidth"));
        // A zero global batch cannot enumerate candidates.
        let d = with(r#", "sweep": { "global_batch": 0 }"#);
        assert!(d.sweep().unwrap_err().to_string().contains("global batch"));
        // Zero limits sweep nothing — error like the other zero fields.
        let d = with(r#", "sweep": { "global_batch": 8, "limits": { "max_tensor": 0 } }"#);
        assert!(d.sweep().unwrap_err().to_string().contains("max_tensor"));
        // Noise in a sweep-only scenario would be silently ignored.
        {
            let mut scenario = with(r#", "sweep": { "global_batch": 8 }"#);
            scenario.parallelism = None;
            scenario.noise = Some(NoiseSection {
                seed: Some(1),
                comm_inflation: None,
                jitter_sigma: None,
                straggler_sigma: None,
                congestion_per_group: None,
                launch_overhead_ns: None,
                iteration_bias_sigma: None,
            });
            assert!(scenario.check().unwrap_err().to_string().contains("noise"));
        }
        // Duplicate placement variants would run identical sweeps under
        // indistinguishable labels.
        let d = with(r#", "sweep": { "global_batch": 8, "placements": [ {}, {} ] }"#);
        assert!(d.sweep().unwrap_err().to_string().contains("duplicate placement"));
        // Distinct variants colliding on a default label need explicit
        // labels, not a false "identical sweep" claim.
        let d = with(
            r#", "sweep": { "global_batch": 8, "placements": [
                 { "nodes_per_rack": 2, "bandwidth": 25e9 },
                 { "nodes_per_rack": 2, "bandwidth": 12.5e9 } ] }"#,
        );
        assert!(d.sweep().unwrap_err().to_string().contains("set explicit `label`s"));
        // ... and with labels the same pair is a legitimate comparison.
        let d = with(
            r#", "sweep": { "global_batch": 8, "placements": [
                 { "nodes_per_rack": 2, "bandwidth": 25e9, "label": "thick" },
                 { "nodes_per_rack": 2, "bandwidth": 12.5e9, "label": "thin" } ] }"#,
        );
        assert!(d.sweep().is_ok());
        // Runaway thread counts would panic at OS thread-spawn.
        let d = with(r#", "sweep": { "global_batch": 8, "threads": 1000000 }"#);
        assert!(d.sweep().unwrap_err().to_string().contains("threads"));
        let d = with(r#", "sweep": { "global_batch": 8, "threads": 0 }"#);
        assert!(d.sweep().unwrap_err().to_string().contains("threads"));
        // Negative or non-finite noise magnitudes would reach
        // `TimeNs::scale`'s assertion inside the noise model.
        let d = with(r#", "noise": { "comm_inflation": -2.0 }"#);
        assert!(d.estimator().unwrap_err().to_string().contains("comm_inflation"));
        assert!(d.check().is_err(), "validate must flag what predict would panic on");
        let d = with(r#", "noise": { "jitter_sigma": 1e400 }"#);
        assert!(d.noise_config().is_err(), "non-finite sigma must be rejected");
        let d = with(r#", "noise": { "jitter_sigma": 1e308 }"#);
        assert!(d.noise_config().is_err(), "huge finite sigma would overflow exp(sigma*z)");
        // An absurd spine latency would saturate and overflow the ns
        // clock inside the communication model.
        let d =
            with(r#", "topology": { "rack": { "nodes_per_rack": 1, "base_latency_us": 1e25 } }"#);
        assert!(d.topology().unwrap_err().to_string().contains("latency"));
        // An absurd launch overhead would overflow the ns clock.
        let d = with(r#", "noise": { "launch_overhead_ns": 18446744073709551615 }"#);
        assert!(d.noise_config().unwrap_err().to_string().contains("launch_overhead_ns"));
        assert!(d.check().is_err());
        // Placement variants always price hierarchically; an explicit
        // flat opt-out is contradictory.
        let d = with(
            r#", "topology": { "hierarchical": false },
               "sweep": { "global_batch": 8, "placements": [ {} ] }"#,
        );
        assert!(d.sweep().unwrap_err().to_string().contains("hierarchical"));
        // Non-positive or non-finite GPU-hour rates would reach
        // `CostModel::new`'s assertion via the projection.
        for rate in ["-1.0", "0.0", "1e400"] {
            let d = with(&format!(r#", "tokens": 1000, "cost_per_gpu_hour": {rate}"#));
            assert!(
                d.cost_model().unwrap_err().to_string().contains("cost_per_gpu_hour"),
                "rate {rate} must be rejected"
            );
            assert!(d.check().is_err(), "validate must flag rate {rate}");
        }
        // Spine fields are meaningless without a rack tier — reject
        // rather than silently pricing the plain two-tier layout.
        let d = with(r#", "sweep": { "placements": [ { "bandwidth": 100e9 } ] }"#);
        assert!(d.sweep().unwrap_err().to_string().contains("nodes_per_rack"));
        assert!(d.check().is_err());
        // A scenario-level rack tier would be silently overridden by the
        // placement axis — reject the ambiguous combination.
        let d = with(
            r#", "topology": { "rack": { "nodes_per_rack": 2 } },
               "sweep": { "placements": [ {} ] }"#,
        );
        assert!(d.sweep().unwrap_err().to_string().contains("conflicts"));
    }

    #[test]
    fn empty_placement_list_falls_back_to_the_topology_section() {
        let text = r#"{
            "model": { "preset": "megatron-1.7B" },
            "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
            "topology": { "rack": { "nodes_per_rack": 1 } },
            "sweep": { "global_batch": 8, "threads": 1, "placements": [],
                       "limits": { "max_tensor": 2, "max_data": 2, "max_pipeline": 2,
                                   "max_micro_batch": 1 } }
        }"#;
        let d = Scenario::from_json(text).unwrap();
        // `placements: []` must not silently discard the declared rack
        // tier: the single-variant sweep prices on the 3-tier topology.
        let run = d.sweep().unwrap().run();
        assert_eq!(run.variants().len(), 1);
        assert!(!run.outcome().points.is_empty());
        let est = d.estimator().unwrap();
        assert_eq!(est.topology().num_tiers(), 3);
        let flat = {
            let mut scenario = d.clone();
            scenario.topology = None;
            scenario.sweep().unwrap().run()
        };
        for (racked, flat) in run.outcome().points.iter().zip(&flat.outcome().points) {
            assert!(racked.estimate.iteration_time >= flat.estimate.iteration_time);
        }
    }

    #[test]
    fn scenario_without_work_is_invalid() {
        let text = r#"{
            "model": { "preset": "megatron-1.7B" },
            "cluster": { "preset": "aws-p4d", "total_gpus": 32 }
        }"#;
        let d = Scenario::from_json(text).unwrap();
        let err = d.check().unwrap_err();
        assert!(err.to_string().contains("nothing to run"), "{err}");
    }
}
