//! The input description file (paper Fig. 4, step ①).
//!
//! vTrain is driven by a single description containing the target LLM, the
//! training-system configuration, and the parallelization strategy to
//! evaluate. This module defines the JSON schema and its conversion into
//! the workspace's typed configs.
//!
//! ```json
//! {
//!   "model": { "preset": "megatron-18.4B" },
//!   "cluster": { "preset": "aws-p4d", "total_gpus": 512 },
//!   "parallelism": { "tensor": 8, "data": 8, "pipeline": 8,
//!                    "micro_batch": 2, "global_batch": 512,
//!                    "schedule": "1f1b" },
//!   "tokens": 300000000000
//! }
//! ```

use serde::{Deserialize, Serialize};
use vtrain_model::{presets, ModelConfig};
use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule};

/// Root of the input description file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Description {
    /// The target LLM.
    pub model: ModelSection,
    /// The training system.
    pub cluster: ClusterSection,
    /// The `(t, d, p)` strategy to evaluate.
    pub parallelism: ParallelismSection,
    /// Total training tokens (enables the end-to-end projection).
    #[serde(default)]
    pub tokens: Option<u64>,
    /// Dollars per GPU-hour (default $5.00, the paper's P4d rate).
    #[serde(default)]
    pub cost_per_gpu_hour: Option<f64>,
}

/// Model: either a named preset or explicit hyperparameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ModelSection {
    /// A named preset, e.g. `"gpt3-175b"`, `"mt-nlg-530b"`,
    /// `"megatron-18.4B"`.
    Preset {
        /// Preset name.
        preset: String,
    },
    /// Explicit hyperparameters (paper Fig. 2 notation).
    Explicit {
        /// Display name.
        #[serde(default)]
        name: Option<String>,
        /// Hidden size `h`.
        hidden_size: usize,
        /// Decoder layers `L`.
        num_layers: usize,
        /// Attention heads `n`.
        num_heads: usize,
        /// Sequence length `s`.
        seq_len: usize,
        /// Vocabulary size `V`.
        vocab_size: usize,
    },
}

/// Cluster: a platform preset plus size.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterSection {
    /// `"aws-p4d"` (A100-40GB) or `"dgx-a100-80gb"`.
    pub preset: String,
    /// Total GPUs.
    pub total_gpus: usize,
}

/// The 3D-parallelism plan.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ParallelismSection {
    /// Tensor-parallel degree `t`.
    pub tensor: usize,
    /// Data-parallel degree `d`.
    pub data: usize,
    /// Pipeline depth `p`.
    pub pipeline: usize,
    /// Micro-batch size `m`.
    pub micro_batch: usize,
    /// Global batch (sequences per iteration).
    pub global_batch: usize,
    /// `"1f1b"` (default) or `"gpipe"`.
    #[serde(default)]
    pub schedule: Option<String>,
    /// DP gradient bucketing (default true).
    #[serde(default)]
    pub gradient_bucketing: Option<bool>,
}

/// Error turning a description into typed configs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DescriptionError(String);

impl std::fmt::Display for DescriptionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid description: {}", self.0)
    }
}

impl std::error::Error for DescriptionError {}

impl Description {
    /// Parses a description from JSON text.
    ///
    /// # Errors
    ///
    /// Returns an error describing the malformed field.
    pub fn from_json(text: &str) -> Result<Self, DescriptionError> {
        serde_json::from_str(text).map_err(|e| DescriptionError(e.to_string()))
    }

    /// Resolves the model section.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown presets or invalid hyperparameters.
    pub fn model(&self) -> Result<ModelConfig, DescriptionError> {
        match &self.model {
            ModelSection::Preset { preset } => match preset.to_lowercase().as_str() {
                "gpt2-1.5b" => Ok(presets::gpt2_1_5b()),
                "gpt3-175b" => Ok(presets::gpt3_175b()),
                "mt-nlg-530b" => Ok(presets::mt_nlg_530b()),
                other => {
                    if let Some(size) = other.strip_prefix("megatron-") {
                        let target = size.to_uppercase();
                        presets::megatron_family()
                            .into_iter()
                            .find(|m| m.name().ends_with(&target))
                            .ok_or_else(|| {
                                DescriptionError(format!("unknown megatron size `{size}`"))
                            })
                    } else {
                        Err(DescriptionError(format!("unknown model preset `{preset}`")))
                    }
                }
            },
            ModelSection::Explicit {
                name,
                hidden_size,
                num_layers,
                num_heads,
                seq_len,
                vocab_size,
            } => ModelConfig::builder()
                .name(name.clone().unwrap_or_else(|| "description".to_owned()))
                .hidden_size(*hidden_size)
                .num_layers(*num_layers)
                .num_heads(*num_heads)
                .seq_len(*seq_len)
                .vocab_size(*vocab_size)
                .build()
                .map_err(|e| DescriptionError(e.to_string())),
        }
    }

    /// Resolves the cluster section.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown platform presets.
    pub fn cluster(&self) -> Result<ClusterSpec, DescriptionError> {
        match self.cluster.preset.to_lowercase().as_str() {
            "aws-p4d" => Ok(ClusterSpec::aws_p4d(self.cluster.total_gpus)),
            "dgx-a100-80gb" => Ok(ClusterSpec::dgx_a100_80gb(self.cluster.total_gpus)),
            other => Err(DescriptionError(format!("unknown cluster preset `{other}`"))),
        }
    }

    /// Resolves the parallelism section.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid degrees or an unknown schedule.
    pub fn plan(&self) -> Result<ParallelConfig, DescriptionError> {
        let schedule = match self.parallelism.schedule.as_deref() {
            None | Some("1f1b") | Some("1F1B") => PipelineSchedule::OneFOneB,
            Some("gpipe") | Some("GPipe") => PipelineSchedule::GPipe,
            Some(other) => {
                return Err(DescriptionError(format!("unknown schedule `{other}`")));
            }
        };
        ParallelConfig::builder()
            .tensor(self.parallelism.tensor)
            .data(self.parallelism.data)
            .pipeline(self.parallelism.pipeline)
            .micro_batch(self.parallelism.micro_batch)
            .global_batch(self.parallelism.global_batch)
            .schedule(schedule)
            .gradient_bucketing(self.parallelism.gradient_bucketing.unwrap_or(true))
            .build()
            .map_err(|e| DescriptionError(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = r#"{
        "model": { "preset": "megatron-18.4B" },
        "cluster": { "preset": "aws-p4d", "total_gpus": 512 },
        "parallelism": { "tensor": 8, "data": 8, "pipeline": 8,
                         "micro_batch": 2, "global_batch": 512,
                         "schedule": "1f1b" },
        "tokens": 300000000000
    }"#;

    #[test]
    fn example_description_resolves() {
        let d = Description::from_json(EXAMPLE).unwrap();
        assert_eq!(d.model().unwrap().hidden_size(), 6144);
        assert_eq!(d.cluster().unwrap().total_gpus, 512);
        let plan = d.plan().unwrap();
        assert_eq!(plan.num_gpus(), 512);
        assert_eq!(d.tokens, Some(300_000_000_000));
    }

    #[test]
    fn explicit_model_resolves() {
        let text = r#"{
            "model": { "hidden_size": 1024, "num_layers": 8, "num_heads": 16,
                       "seq_len": 512, "vocab_size": 50257 },
            "cluster": { "preset": "dgx-a100-80gb", "total_gpus": 8 },
            "parallelism": { "tensor": 2, "data": 2, "pipeline": 2,
                             "micro_batch": 1, "global_batch": 8 }
        }"#;
        let d = Description::from_json(text).unwrap();
        assert_eq!(d.model().unwrap().num_layers(), 8);
        assert_eq!(d.plan().unwrap().schedule(), PipelineSchedule::OneFOneB);
    }

    #[test]
    fn unknown_preset_is_an_error() {
        let text = EXAMPLE.replace("megatron-18.4B", "bert-base");
        let d = Description::from_json(&text).unwrap();
        let err = d.model().unwrap_err();
        assert!(err.to_string().contains("unknown"));
    }

    #[test]
    fn unknown_schedule_is_an_error() {
        let text = EXAMPLE.replace("1f1b", "interleaved");
        let d = Description::from_json(&text).unwrap();
        assert!(d.plan().is_err());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(Description::from_json("{").is_err());
    }
}
