//! End-to-end tests of the `vtrain serve` daemon: a real TCP listener
//! on an ephemeral port, std-socket clients speaking newline-delimited
//! wire frames, and the full admission/backpressure/deadline/drain
//! lifecycle.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::{self, JoinHandle};

use vtrain::api::{Outcome, Report, Response, WIRE_VERSION};
use vtrain::serve::{Server, ServerConfig};

/// A scenario small enough that a debug-build sweep finishes in tens of
/// milliseconds.
const SCENARIO: &str = r#"{
    "model": { "preset": "megatron-1.7B" },
    "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
    "sweep": { "global_batch": 16,
               "limits": { "max_tensor": 2, "max_data": 2,
                           "max_pipeline": 2, "max_micro_batch": 1 } }
}"#;

/// Binds an ephemeral port and runs the daemon on a background thread.
fn spawn_server(mut config: ServerConfig) -> (SocketAddr, JoinHandle<()>) {
    config.addr = "127.0.0.1:0".to_owned();
    let server = Server::bind(config).expect("ephemeral bind succeeds");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("serve loop exits cleanly"));
    (addr, handle)
}

/// One connection: write frames, read response lines.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let writer = TcpStream::connect(addr).expect("connect to daemon");
        let reader = BufReader::new(writer.try_clone().expect("clone stream"));
        Client { writer, reader }
    }

    fn send_raw(&mut self, frame: &str) {
        self.writer.write_all(frame.as_bytes()).expect("write frame");
        self.writer.write_all(b"\n").expect("write newline");
    }

    fn send(&mut self, id: &str, kind: &str, scenario: Option<&str>, budget: Option<&str>) {
        let mut frame = format!(r#"{{"v":{WIRE_VERSION},"id":"{id}","kind":"{kind}""#);
        if let Some(s) = scenario {
            frame.push_str(",\"scenario\":");
            frame.push_str(s);
        }
        if let Some(b) = budget {
            frame.push_str(",\"budget\":");
            frame.push_str(b);
        }
        frame.push('}');
        // One frame per line: flatten the pretty-printed scenario.
        self.send_raw(&frame.replace('\n', " "));
    }

    fn recv(&mut self) -> Response {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response line");
        serde_json::from_str(&line).expect("response parses")
    }
}

fn stats_of(response: &Response) -> vtrain::api::ServerStats {
    match &response.outcome {
        Outcome::Ok(Report::Stats(s)) => *s,
        other => panic!("expected stats, got {other:?}"),
    }
}

fn shutdown(client: &mut Client) {
    client.send("bye", "Shutdown", None, None);
    let ack = client.recv();
    assert!(matches!(ack.outcome, Outcome::Ok(Report::Shutdown(_))), "shutdown acks");
}

#[test]
fn concurrent_sweeps_echo_ids_and_share_the_cache() {
    const CONCURRENT: usize = 8;
    let (addr, server) =
        spawn_server(ServerConfig { workers: 4, threads: Some(1), ..ServerConfig::default() });

    // N concurrent connections, each one sweep; every response must
    // carry its request's id (the envelope's correlation contract).
    let clients: Vec<_> = (0..CONCURRENT)
        .map(|i| {
            thread::spawn(move || {
                let mut client = Client::connect(addr);
                let id = format!("req-{i}");
                client.send(&id, "Sweep", Some(SCENARIO), None);
                let response = client.recv();
                assert_eq!(response.id, id);
                assert_eq!(response.v, WIRE_VERSION);
                assert!(
                    matches!(response.outcome, Outcome::Ok(Report::Sweep(_))),
                    "sweep succeeds: {response:?}"
                );
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }

    // The daemon's whole point: a request identical to earlier traffic
    // runs almost entirely out of the shared profile cache.
    let mut client = Client::connect(addr);
    client.send("stats-before", "Stats", None, None);
    let before = stats_of(&client.recv());
    assert_eq!(before.completed, CONCURRENT as u64);
    client.send("again", "Sweep", Some(SCENARIO), None);
    assert!(matches!(client.recv().outcome, Outcome::Ok(Report::Sweep(_))));
    client.send("stats-after", "Stats", None, None);
    let after = stats_of(&client.recv());
    let hits = after.cache_hits - before.cache_hits;
    let misses = after.cache_misses - before.cache_misses;
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(
        hit_rate > 0.96,
        "repeated scenario must be nearly all cache hits, got {hit_rate:.3} \
         ({hits} hits / {misses} misses)"
    );

    shutdown(&mut client);
    server.join().expect("server thread");
}

#[test]
fn admission_queue_rejects_beyond_its_depth() {
    // Depth 0: no waiting room at all, so every scenario request is
    // rejected at admission — the backpressure path with no timing race.
    let (addr, server) = spawn_server(ServerConfig {
        workers: 1,
        queue_depth: 0,
        threads: Some(1),
        ..ServerConfig::default()
    });
    let mut client = Client::connect(addr);
    client.send("full", "Sweep", Some(SCENARIO), None);
    let response = client.recv();
    match response.outcome {
        Outcome::Err(body) => {
            assert_eq!(body.code, vtrain::api::ErrorCode::Busy);
            assert_eq!(body.code.exit_code(), 3);
            assert!(body.message.contains("queue"), "{}", body.message);
        }
        Outcome::Ok(_) => panic!("a depth-0 queue must reject"),
    }
    client.send("stats", "Stats", None, None);
    assert_eq!(stats_of(&client.recv()).busy_rejections, 1);
    shutdown(&mut client);
    server.join().expect("server thread");
}

#[test]
fn budgets_are_enforced_with_the_deadline_code() {
    let (addr, server) = spawn_server(ServerConfig { threads: Some(1), ..ServerConfig::default() });
    let mut client = Client::connect(addr);

    // A 1-point budget cannot cover the grid: cooperative cancellation
    // stops the sweep and the request fails with the deadline code.
    client.send("points", "Sweep", Some(SCENARIO), Some(r#"{"max_points":1}"#));
    match client.recv().outcome {
        Outcome::Err(body) => {
            assert_eq!(body.code, vtrain::api::ErrorCode::DeadlineExceeded);
            assert_eq!(body.code.exit_code(), 4);
        }
        Outcome::Ok(_) => panic!("a 1-point budget must fail this sweep"),
    }

    // A 0 ms deadline expires while the request waits in the queue; it
    // must be answered without being executed.
    client.send("expired", "Sweep", Some(SCENARIO), Some(r#"{"deadline_ms":0}"#));
    match client.recv().outcome {
        Outcome::Err(body) => {
            assert_eq!(body.code, vtrain::api::ErrorCode::DeadlineExceeded);
            assert!(body.message.contains("deadline"), "{}", body.message);
        }
        Outcome::Ok(_) => panic!("a 0 ms deadline must fail"),
    }
    client.send("stats", "Stats", None, None);
    assert_eq!(stats_of(&client.recv()).deadline_exceeded, 2);
    shutdown(&mut client);
    server.join().expect("server thread");
}

#[test]
fn malformed_and_unversioned_frames_fail_cleanly() {
    let (addr, server) = spawn_server(ServerConfig { threads: Some(1), ..ServerConfig::default() });
    let mut client = Client::connect(addr);

    // Not JSON at all: answered with an empty id (nothing to echo).
    client.send_raw("this is not a frame");
    let response = client.recv();
    assert_eq!(response.id, "");
    assert!(
        matches!(&response.outcome, Outcome::Err(b) if b.code == vtrain::api::ErrorCode::BadRequest)
    );

    // Unknown envelope field: rejected, not ignored.
    client.send_raw(r#"{"v":1,"id":"x","kind":"Stats","surprise":true}"#);
    assert!(matches!(&client.recv().outcome, Outcome::Err(_)));

    // Future wire version: classified as bad request.
    client.send_raw(&format!(
        r#"{{"v":{},"id":"future","kind":"Sweep","scenario":{}}}"#,
        WIRE_VERSION + 1,
        SCENARIO.replace(['\n', ' '], "")
    ));
    let response = client.recv();
    assert_eq!(response.id, "future");
    match response.outcome {
        Outcome::Err(body) => assert!(body.message.contains("wire version"), "{}", body.message),
        Outcome::Ok(_) => panic!("future versions must be rejected"),
    }

    // A server-state kind addressed to the execution path is an error
    // (e.g. a client replaying a recorded Stats frame as a scenario).
    client.send("mis", "Predict", None, None);
    assert!(
        matches!(&client.recv().outcome, Outcome::Err(b) if b.code == vtrain::api::ErrorCode::BadRequest)
    );

    shutdown(&mut client);
    server.join().expect("server thread");
}

#[test]
fn shutdown_drains_inflight_work_before_acking() {
    let (addr, server) =
        spawn_server(ServerConfig { workers: 1, threads: Some(1), ..ServerConfig::default() });
    let mut client = Client::connect(addr);
    // The sweep is admitted first; the shutdown frame that follows on
    // the same connection must wait for it — and its response must hit
    // the wire before the shutdown ack.
    client.send("work", "Sweep", Some(SCENARIO), None);
    client.send("bye", "Shutdown", None, None);
    let first = client.recv();
    assert_eq!(first.id, "work");
    assert!(matches!(first.outcome, Outcome::Ok(Report::Sweep(_))), "drained work completes");
    let second = client.recv();
    assert_eq!(second.id, "bye");
    match second.outcome {
        Outcome::Ok(Report::Shutdown(report)) => assert_eq!(report.completed, 1),
        other => panic!("expected shutdown ack, got {other:?}"),
    }
    server.join().expect("accept loop exits after the drain");

    // After shutdown a new scenario on a fresh connection (raced
    // against the dying listener) must never execute; both observable
    // outcomes are acceptable: connection refused, or a Busy rejection.
    if let Ok(stream) = TcpStream::connect(addr) {
        let mut late =
            Client { reader: BufReader::new(stream.try_clone().unwrap()), writer: stream };
        late.send("late", "Sweep", Some(SCENARIO), None);
        let mut line = String::new();
        if late.reader.read_line(&mut line).is_ok() && !line.is_empty() {
            let response: Response = serde_json::from_str(&line).expect("late response parses");
            assert!(
                matches!(&response.outcome, Outcome::Err(b) if b.code == vtrain::api::ErrorCode::Busy),
                "a post-drain request must not run: {response:?}"
            );
        }
    }
}
