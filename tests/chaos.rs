//! Chaos end-to-end suite: a seeded [`FaultPlan`] injecting connection
//! drops, frame delays, frame corruption, and scripted worker panics
//! while a fleet of retrying [`Client`]s drives the daemon — every
//! accepted request must eventually be answered correctly, byte-for-byte
//! identical to a fault-free run; plus crash-safe snapshot coverage
//! (kill-and-restart warm start, corrupt/truncated snapshots as logged
//! cold starts).

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use vtrain::client::{Client, ClientConfig};
use vtrain::prelude::*;
use vtrain::serve::{Server, ServerConfig};

/// The same small sweep the serve e2e tests use: a 16-GPU megatron-1.7B
/// design space of a few candidates — real lowering and profiling, but
/// fast enough to run dozens of times per test.
const SCENARIO: &str = r#"{
    "model": { "preset": "megatron-1.7B" },
    "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
    "sweep": { "global_batch": 16,
               "limits": { "max_tensor": 2, "max_data": 2,
                           "max_pipeline": 2, "max_micro_batch": 1 } }
}"#;

fn scenario() -> Scenario {
    Scenario::from_json(SCENARIO).expect("fixture parses")
}

fn spawn_server(mut config: ServerConfig) -> (SocketAddr, thread::JoinHandle<()>) {
    config.addr = "127.0.0.1:0".to_owned();
    let server = Server::bind(config).expect("ephemeral bind succeeds");
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run().expect("serve loop")))
}

fn retrying_client(addr: SocketAddr, seed: u64) -> Client {
    Client::new(ClientConfig {
        addr: addr.to_string(),
        max_attempts: 16,
        base_backoff_ms: 2,
        max_backoff_ms: 100,
        deadline: None,
        seed,
    })
}

/// The stable response bytes of `ids` against a fault-free daemon — the
/// ground truth the chaos run must reproduce exactly.
fn fault_free_bytes(ids: &[String]) -> BTreeMap<String, String> {
    let (addr, daemon) =
        spawn_server(ServerConfig { workers: 2, threads: Some(1), ..ServerConfig::default() });
    let mut client = retrying_client(addr, 0);
    let mut bytes = BTreeMap::new();
    for id in ids {
        let response = client.sweep(id.clone(), scenario()).expect("fault-free sweep settles");
        assert!(
            matches!(response.outcome, Outcome::Ok(Report::Sweep(_))),
            "fault-free sweep succeeds: {response:?}"
        );
        bytes.insert(id.clone(), response.to_json());
    }
    client.shutdown().expect("fault-free daemon drains");
    daemon.join().expect("fault-free daemon thread");
    bytes
}

#[test]
fn chaos_fleet_settles_to_fault_free_bytes() {
    const CLIENTS: usize = 8;
    const REQUESTS_PER_CLIENT: usize = 3;
    let ids: Vec<String> = (0..CLIENTS)
        .flat_map(|c| (0..REQUESTS_PER_CLIENT).map(move |r| format!("chaos-{c}-{r}")))
        .collect();
    let expected = fault_free_bytes(&ids);

    let plan = FaultPlan {
        seed: 0xC4A05,
        drop_response: 0.15,
        delay_response: 0.2,
        max_delay_ms: 5,
        corrupt_response: 0.1,
        panic_on_requests: vec![2, 5, 9],
    };
    let (addr, daemon) = spawn_server(ServerConfig {
        workers: 2,
        threads: Some(1),
        fault_plan: Some(plan),
        ..ServerConfig::default()
    });

    let fleet: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let ids: Vec<String> =
                (0..REQUESTS_PER_CLIENT).map(|r| format!("chaos-{c}-{r}")).collect();
            thread::spawn(move || {
                let mut client = retrying_client(addr, c as u64);
                let mut got = Vec::new();
                for id in ids {
                    let response =
                        client.sweep(id.clone(), scenario()).expect("chaos sweep settles");
                    got.push((id, response, client.last_attempts()));
                }
                got
            })
        })
        .collect();
    let mut attempts_total = 0;
    for worker in fleet {
        for (id, response, attempts) in worker.join().expect("chaos client thread") {
            assert!(
                matches!(response.outcome, Outcome::Ok(Report::Sweep(_))),
                "{id} must settle to success through retries: {response:?}"
            );
            assert_eq!(
                response.to_json(),
                expected[&id],
                "{id}: the settled response must be byte-identical to the fault-free run"
            );
            attempts_total += attempts;
        }
    }

    // The daemon survived every injected fault: the scripted panics all
    // fired (answered `Internal`, worker respawned), the fleet's retries
    // were observed, and the daemon still drains cleanly.
    let mut control = retrying_client(addr, 99);
    let stats = control.stats().expect("daemon still answers stats");
    assert_eq!(stats.panics, 3, "every scripted panic fired exactly once");
    assert!(
        stats.retries_observed >= 3,
        "the three panicked requests alone force three retries, observed {}",
        stats.retries_observed
    );
    assert!(
        attempts_total >= (CLIENTS * REQUESTS_PER_CLIENT + 3) as u64,
        "retries actually happened (attempts {attempts_total})"
    );
    control.shutdown().expect("chaos daemon drains");
    daemon.join().expect("chaos daemon thread");
}

#[test]
fn oversized_frames_bounce_but_the_connection_survives() {
    let (addr, daemon) = spawn_server(ServerConfig {
        workers: 1,
        threads: Some(1),
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // An oversized line — far past the bound — bounces as BadRequest...
    let huge = format!("{}\n", "x".repeat(8 * 1024));
    stream.write_all(huge.as_bytes()).expect("write oversized frame");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read bounce");
    let bounce: Response = serde_json::from_str(line.trim()).expect("bounce parses");
    match bounce.outcome {
        Outcome::Err(body) => {
            assert_eq!(body.code, ErrorCode::BadRequest);
            assert!(body.message.contains("1024-byte limit"), "{}", body.message);
        }
        other => panic!("oversized frame must bounce, got {other:?}"),
    }

    // ...and the same connection keeps working.
    stream
        .write_all(b"{\"v\":1,\"id\":\"still-alive\",\"kind\":\"Stats\"}\n")
        .expect("write stats");
    line.clear();
    reader.read_line(&mut line).expect("read stats");
    let stats: Response = serde_json::from_str(line.trim()).expect("stats parses");
    assert_eq!(stats.id, "still-alive");
    assert!(matches!(stats.outcome, Outcome::Ok(Report::Stats(_))));

    let mut control = retrying_client(addr, 0);
    control.shutdown().expect("daemon drains");
    daemon.join().expect("daemon thread");
}

fn temp_snapshot(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("vtrain-chaos-{tag}-{}.snapshot", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn snapshot_warm_restart_after_a_kill() {
    let path = temp_snapshot("kill");
    let snapshotting = || ServerConfig {
        workers: 2,
        threads: Some(1),
        snapshot: Some(path.clone()),
        snapshot_every: 1,
        ..ServerConfig::default()
    };

    // First life: populate the cache; `snapshot_every: 1` persists after
    // the completion. Then *abandon* the daemon without draining it —
    // the crash case; only the periodic snapshot survives.
    let (addr, abandoned) = spawn_server(snapshotting());
    let mut client = retrying_client(addr, 0);
    let response = client.sweep("warmup", scenario()).expect("warmup sweep settles");
    assert!(matches!(response.outcome, Outcome::Ok(Report::Sweep(_))));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = client.stats().expect("stats during first life");
        if stats.snapshot_saves >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "snapshot save never happened");
        thread::sleep(Duration::from_millis(20));
    }
    drop(abandoned); // detach: the "killed" daemon never drains

    // Second life: a fresh daemon on a fresh port warm-restores, and the
    // first batch runs almost entirely out of the restored cache.
    let (addr, daemon) = spawn_server(snapshotting());
    let mut client = retrying_client(addr, 1);
    let before = client.stats().expect("stats after restart");
    assert_eq!(before.snapshot_loads, 1, "restart must warm-restore the snapshot");
    assert_eq!(before.snapshot_load_failures, 0);
    assert!(before.cache_entries > 0, "restored entries are visible");
    let response = client.sweep("warm-batch", scenario()).expect("warm sweep settles");
    assert!(matches!(response.outcome, Outcome::Ok(Report::Sweep(_))));
    let after = client.stats().expect("stats after warm batch");
    let hits = after.cache_hits - before.cache_hits;
    let misses = after.cache_misses - before.cache_misses;
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    assert!(
        hit_rate > 0.9,
        "first post-restart batch must run out of the restored cache \
         (hit rate {hit_rate:.4}, {hits} hits / {misses} misses)"
    );
    client.shutdown().expect("restarted daemon drains");
    daemon.join().expect("restarted daemon thread");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn corrupt_or_truncated_snapshots_cold_start_without_crashing() {
    let path = temp_snapshot("corrupt");
    let snapshotting = || ServerConfig {
        workers: 1,
        threads: Some(1),
        snapshot: Some(path.clone()),
        snapshot_every: 1,
        ..ServerConfig::default()
    };

    // Produce a valid snapshot, then mutilate it three ways. Every
    // restart must come up cold — counted, not crashed — and still
    // serve.
    let (addr, daemon) = spawn_server(snapshotting());
    let mut client = retrying_client(addr, 0);
    client.sweep("seed-cache", scenario()).expect("seeding sweep settles");
    client.shutdown().expect("seed daemon drains");
    daemon.join().expect("seed daemon thread");
    let valid = std::fs::read_to_string(&path).expect("snapshot was persisted");
    assert!(!valid.is_empty());

    let mutilations: [(&str, String); 3] = [
        ("truncated", valid[..valid.len() / 2].to_owned()),
        ("corrupted", {
            let mut bytes = valid.clone().into_bytes();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x01;
            String::from_utf8_lossy(&bytes).into_owned()
        }),
        ("garbage", "not a snapshot at all\n".to_owned()),
    ];
    for (tag, contents) in mutilations {
        std::fs::write(&path, contents).expect("write mutilated snapshot");
        let (addr, daemon) = spawn_server(snapshotting());
        let mut client = retrying_client(addr, 0);
        let stats = client.stats().expect("daemon answers after cold start");
        assert_eq!(stats.snapshot_loads, 0, "{tag}: must not count as a load");
        assert_eq!(stats.snapshot_load_failures, 1, "{tag}: must count the rejected restore");
        assert_eq!(stats.cache_entries, 0, "{tag}: the cache starts cold");
        let response = client.sweep("after-cold-start", scenario()).expect("cold sweep settles");
        assert!(
            matches!(response.outcome, Outcome::Ok(Report::Sweep(_))),
            "{tag}: a cold daemon still serves"
        );
        client.shutdown().expect("cold daemon drains");
        daemon.join().expect("cold daemon thread");
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn degraded_mode_answers_from_the_floor_instead_of_shedding() {
    // High-water 0: every sweep is answered from the analytic floor —
    // the deterministic way to pin the degraded path end-to-end.
    let (addr, daemon) = spawn_server(ServerConfig {
        workers: 1,
        threads: Some(1),
        degrade: Some(DegradeMode::BoundOnly),
        degrade_high_water: Some(0),
        ..ServerConfig::default()
    });
    let mut client = retrying_client(addr, 0);
    let response = client.sweep("degraded-1", scenario()).expect("degraded sweep settles");
    match response.outcome {
        Outcome::Ok(Report::Sweep(report)) => {
            assert!(report.degraded, "the report must be flagged degraded");
            assert!(!report.variants.is_empty());
            assert!(!report.variants[0].points.is_empty(), "floors are still full answers");
        }
        other => panic!("degraded sweep must succeed, got {other:?}"),
    }
    // Predict is not degraded even at high water.
    let response = client.predict("predict-1", scenario_with_plan()).expect("predict settles");
    assert!(matches!(response.outcome, Outcome::Ok(Report::Predict(_))));
    let stats = client.stats().expect("stats");
    assert_eq!(stats.degraded_responses, 1, "exactly the sweep was degraded");
    client.shutdown().expect("degraded daemon drains");
    daemon.join().expect("degraded daemon thread");
}

fn scenario_with_plan() -> Scenario {
    Scenario::from_json(
        r#"{
            "model": { "preset": "megatron-1.7B" },
            "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
            "parallelism": { "tensor": 2, "data": 2, "pipeline": 2,
                             "micro_batch": 1, "global_batch": 8 }
        }"#,
    )
    .expect("plan fixture parses")
}
