//! Golden-equivalence suite for the topology subsystem: the flat model
//! the seed figures rest on must be reproducible *by construction* from
//! the new collective-algorithm library.

use proptest::prelude::*;
use vtrain::gpu::comm::{all_reduce_time, send_recv_time};
use vtrain::net::{collective, Algorithm, Collective, GroupPlacement, TierSpec, Topology};
use vtrain::prelude::*;

fn flat(bandwidth: f64, alpha: f64, latency_us: u64) -> Topology {
    Topology::flat(TierSpec::new(bandwidth, TimeNs::from_micros(latency_us), alpha))
}

/// Ring All-Reduce on a single-tier topology computes the exact
/// Equation (1) expression — same float operations, same order, same
/// nanosecond quantization — as the legacy flat model.
#[test]
fn golden_flat_ring_equals_legacy_all_reduce() {
    for (mib, ranks, bw, alpha, lat) in [
        (1u64, 2usize, 235e9, 1.0, 8u64),
        (64, 8, 235e9, 1.0, 8),
        (512, 8, 100e9, 1.0, 20),
        (1024, 64, 100e9, 0.7, 20),
        (256, 512, 100e9, 0.31, 20),
        (2048, 3, 25e9, 0.5, 35),
    ] {
        let topo = flat(bw, alpha, lat);
        let got = collective::cost(
            &topo,
            GroupPlacement::intra_node(ranks),
            Collective::AllReduce,
            Algorithm::Ring,
            Bytes::from_mib(mib),
        )
        .total();
        let want =
            all_reduce_time(Bytes::from_mib(mib), ranks, alpha * bw, TimeNs::from_micros(lat));
        assert_eq!(got, want, "{mib}MiB × {ranks} ranks @ {bw}·{alpha}");
    }
}

/// The two-tier topology built from a cluster prices an inter-node ring
/// exactly like the paper's `InterNodeModel` (Equation (1) with α).
#[test]
fn golden_two_tier_ring_equals_equation_one() {
    let cluster = ClusterSpec::aws_p4d(64);
    for alpha in [1.0, 0.7, 0.31] {
        let topo = cluster.topology(alpha);
        // One rank per node: the flat ring at the inter-node tier.
        let placement = GroupPlacement { ranks_per_node: 1, nodes_per_rack: 8, racks: 1 };
        let got = collective::cost(
            &topo,
            placement,
            Collective::AllReduce,
            Algorithm::Ring,
            Bytes::from_mib(512),
        )
        .total();
        let want = all_reduce_time(
            Bytes::from_mib(512),
            8,
            alpha * cluster.internode_bandwidth,
            cluster.internode_latency,
        );
        assert_eq!(got, want, "alpha {alpha}");
    }
}

/// A full topology-aware estimator run is bit-identical to the legacy
/// flat estimator whenever every multi-tier group is one-rank-per-node
/// (the selector's tie rule keeps the flat ring there) — which covers
/// the node-filling `t = 8` plans all seed figures sweep.
#[test]
fn golden_topology_estimator_reproduces_flat_sweep() {
    let cluster = ClusterSpec::aws_p4d(128);
    let model = presets::megatron("18.4B");
    let flat_est = Estimator::builder(cluster.clone()).build();
    let aware = Estimator::builder(cluster.clone()).topology(cluster.topology(1.0)).build();
    for (d, p, m) in [(8, 1, 2), (16, 1, 1), (4, 2, 2), (8, 2, 1)] {
        let plan = ParallelConfig::builder()
            .tensor(8)
            .data(d)
            .pipeline(p)
            .micro_batch(m)
            .global_batch(64)
            .build()
            .unwrap();
        let a = flat_est.estimate(&model, &plan).unwrap();
        let b = aware.estimate(&model, &plan).unwrap();
        assert_eq!(a.iteration_time, b.iteration_time, "t=8 d={d} p={p} m={m}");
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
        assert_eq!(a.occupancy.to_bits(), b.occupancy.to_bits());
    }
}

proptest! {
    /// Bit-identity of the flat ring against the legacy primitive over
    /// the whole parameter space (including the repaired boundaries:
    /// zero bytes, one rank).
    #[test]
    fn flat_ring_bit_identical_to_legacy(
        mib in 0u64..4096,
        ranks in 1usize..600,
        bw_gbps in 1u64..400,
        alpha_pct in 1u64..=100,
        lat_us in 0u64..100,
    ) {
        let bw = bw_gbps as f64 * 1e9;
        let alpha = alpha_pct as f64 / 100.0;
        let topo = flat(bw, alpha, lat_us);
        let got = collective::cost(
            &topo,
            GroupPlacement::intra_node(ranks),
            Collective::AllReduce,
            Algorithm::Ring,
            Bytes::from_mib(mib),
        )
        .total();
        let want = all_reduce_time(
            Bytes::from_mib(mib), ranks, alpha * bw, TimeNs::from_micros(lat_us),
        );
        prop_assert_eq!(got, want);
    }

    /// Pipeline transfers priced through a topology tier match the
    /// legacy send/recv primitive at that tier's parameters.
    #[test]
    fn tiered_send_recv_matches_legacy(mib in 0u64..2048, bw_gbps in 1u64..400) {
        let bw = bw_gbps as f64 * 1e9;
        let lat = TimeNs::from_micros(20);
        let tier = TierSpec::new(bw, lat, 1.0);
        let got = send_recv_time(Bytes::from_mib(mib), tier.effective_bandwidth(), tier.base_latency);
        let want = send_recv_time(Bytes::from_mib(mib), bw, lat);
        prop_assert_eq!(got, want);
    }

    /// Hierarchical All-Reduce on the paper's platform shape never beats
    /// the bound set by its own intra-node phases.
    #[test]
    fn hierarchical_respects_intra_node_bound(
        mib in 1u64..4096,
        rpn in 2usize..=8,
        nodes in 2usize..64,
    ) {
        let cluster = ClusterSpec::aws_p4d(512);
        let topo = cluster.topology(1.0);
        let grouped = GroupPlacement { ranks_per_node: rpn, nodes_per_rack: nodes, racks: 1 };
        let hier = collective::cost(
            &topo, grouped, Collective::AllReduce, Algorithm::Hierarchical, Bytes::from_mib(mib),
        );
        let intra_bound = collective::cost(
            &topo,
            GroupPlacement::intra_node(rpn),
            Collective::AllReduce,
            Algorithm::Ring,
            Bytes::from_mib(mib),
        );
        prop_assert!(hier.total() >= intra_bound.total());
        // And it always undercuts the flat ring at scale: strictly less
        // traffic crosses the slow tier.
        let flat_ring = collective::cost(
            &topo, grouped, Collective::AllReduce, Algorithm::Ring, Bytes::from_mib(mib),
        );
        prop_assert!(
            collective::select(&topo, grouped, Collective::AllReduce, Bytes::from_mib(mib))
                != Algorithm::Tree
                || flat_ring.total() > hier.total()
        );
    }
}
