//! Wire-API contract tests: the CLI's `--json` output is pinned
//! byte-identical to the serve daemon's response for the same scenario,
//! the stable-JSON serialization of the result types round-trips, and
//! the CLI honors the one exit-code table.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::Command;
use std::thread;

use vtrain::api::{self, Outcome, Report, Request, RequestKind, Response};
use vtrain::prelude::*;
use vtrain::serve::{Server, ServerConfig};

const SCENARIO: &str = r#"{
    "model": { "preset": "megatron-1.7B" },
    "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
    "sweep": { "global_batch": 16,
               "limits": { "max_tensor": 2, "max_data": 2,
                           "max_pipeline": 2, "max_micro_batch": 1 } }
}"#;

/// Writes a scenario to a unique temp file and returns its path.
fn scenario_file(name: &str, contents: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("vtrain-api-test-{name}-{}.json", std::process::id()));
    std::fs::write(&path, contents).expect("write scenario fixture");
    path
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vtrain"))
}

#[test]
fn cli_json_is_byte_identical_to_the_server_response() {
    let path = scenario_file("pin", SCENARIO);
    let output = cli().arg("sweep").arg(&path).arg("--json").output().expect("run CLI");
    assert!(output.status.success(), "CLI --json sweep succeeds: {output:?}");
    let cli_line = String::from_utf8(output.stdout).expect("utf8 stdout");
    let cli_line = cli_line.trim_end_matches('\n');

    // The same scenario through the daemon, with the CLI's request id.
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        threads: Some(2),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let daemon = thread::spawn(move || server.run().expect("serve loop"));
    let scenario = Scenario::from_json(SCENARIO).expect("fixture parses");
    let request = Request::new("cli", RequestKind::Sweep, scenario);
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.to_frame().as_bytes()).expect("send request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut server_line = String::new();
    reader.read_line(&mut server_line).expect("read response");
    stream.write_all(b"{\"v\":1,\"id\":\"bye\",\"kind\":\"Shutdown\"}\n").expect("send shutdown");
    daemon.join().expect("daemon thread");

    // The tentpole pin: one schema, one serializer, identical bytes —
    // tooling may treat CLI output and server frames interchangeably.
    assert_eq!(
        cli_line,
        server_line.trim_end_matches('\n'),
        "CLI --json and server response must be byte-identical"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn stable_json_round_trips_the_result_types() {
    let scenario = Scenario::from_json(SCENARIO).expect("fixture parses");
    let run = scenario.sweep().expect("sweep builds").threads(1).run();

    // SweepRun: stable bytes re-parse to the same points.
    let json = api::to_stable_json(&run);
    let back: SweepRun = serde_json::from_str(&json).expect("SweepRun round-trips");
    assert_eq!(back.outcome().points, run.outcome().points);
    assert_eq!(api::to_stable_json(&back), json, "re-serialization is a fixed point");

    // DesignPoint: sorted keys, stable bytes, value-preserving.
    let point = &run.outcome().points[0];
    let json = api::to_stable_json(point);
    let back: DesignPoint = serde_json::from_str(&json).expect("DesignPoint round-trips");
    assert_eq!(back, *point);
    let estimate = json.find("\"estimate\":").expect("estimate field");
    let plan = json.find("\"plan\":").expect("plan field");
    assert!(estimate < plan, "keys sorted: {json}");

    // SimReport (lower + replay the winner's plan): round-trips as well.
    let estimator = scenario.estimator().expect("estimator builds");
    let graph = estimator.lower(&scenario.model().expect("model"), &run.outcome().points[0].plan);
    let report = estimator.simulate(&graph, SimMode::Predicted);
    let json = api::to_stable_json(&report);
    let back: SimReport = serde_json::from_str(&json).expect("SimReport round-trips");
    assert_eq!(back, report);
}

#[test]
fn result_types_reject_unknown_fields() {
    let scenario = Scenario::from_json(SCENARIO).expect("fixture parses");
    let run = scenario.sweep().expect("sweep builds").threads(1).run();
    let point_json = api::to_stable_json(&run.outcome().points[0]);

    // A tampered field must fail the parse, not silently drop.
    let tampered = point_json.replacen("\"estimate\":", "\"estimate_\":", 1);
    assert!(serde_json::from_str::<DesignPoint>(&tampered).is_err());
    let extended = format!("{}{}", &point_json[..point_json.len() - 1], ",\"extra\":1}");
    assert!(serde_json::from_str::<DesignPoint>(&extended).is_err());

    let outcome_json = api::to_stable_json(run.outcome());
    let extended = format!("{}{}", &outcome_json[..outcome_json.len() - 1], ",\"extra\":1}");
    assert!(serde_json::from_str::<SweepOutcome>(&extended).is_err());
}

#[test]
fn capacity_one_cache_keeps_sweep_results_bit_identical() {
    use std::sync::Arc;

    // A pathological one-entry cache thrashes on every signature, but
    // profiling is deterministic: eviction may only cost time, never
    // change a single byte of the result.
    let scenario = Scenario::from_json(SCENARIO).expect("fixture parses");
    let unbounded = scenario
        .sweep()
        .expect("sweep builds")
        .cache(Arc::new(ProfileCache::new()))
        .threads(2)
        .run();
    let thrashing_cache = Arc::new(ProfileCache::with_capacity(1));
    let thrashing = scenario
        .sweep()
        .expect("sweep builds")
        .cache(Arc::clone(&thrashing_cache))
        .threads(2)
        .run();
    assert_eq!(
        api::to_stable_json(&unbounded.outcome().points),
        api::to_stable_json(&thrashing.outcome().points),
        "cache eviction must be invisible in the results"
    );
    assert!(
        thrashing_cache.evictions() > 0,
        "a capacity-1 cache under a multi-signature sweep must evict"
    );
    assert!(thrashing_cache.len() <= 1, "capacity bound holds after the run");
}

#[test]
fn cli_exit_codes_follow_the_table() {
    // Exit 2: invalid scenario (unknown field).
    let bad = scenario_file("bad", &SCENARIO.replace("\"sweep\"", "\"sweeep\""));
    let output = cli().arg("validate").arg(&bad).output().expect("run CLI");
    assert_eq!(output.status.code(), Some(2), "bad input exits 2: {output:?}");
    let _ = std::fs::remove_file(bad);

    // Exit 2 with --json: the same classification inside the envelope.
    let bad = scenario_file("bad-json", "{ not json");
    let output = cli().arg("validate").arg(&bad).arg("--json").output().expect("run CLI");
    assert_eq!(output.status.code(), Some(2));
    let response: Response =
        serde_json::from_str(String::from_utf8_lossy(&output.stdout).trim()).expect("envelope");
    assert_eq!(response.id, "cli");
    match response.outcome {
        Outcome::Err(body) => {
            assert_eq!(body.code, api::ErrorCode::BadRequest);
            assert!(body.line.is_some(), "parse errors carry line context");
        }
        Outcome::Ok(_) => panic!("malformed JSON must fail"),
    }
    let _ = std::fs::remove_file(bad);

    // Exit 4: the sweep blows its point budget (human mode and --json).
    let path = scenario_file("budget", SCENARIO);
    for json_flag in [false, true] {
        let mut cmd = cli();
        cmd.arg("sweep").arg(&path).arg("--max-points").arg("1");
        if json_flag {
            cmd.arg("--json");
        }
        let output = cmd.output().expect("run CLI");
        assert_eq!(
            output.status.code(),
            Some(4),
            "deadline exits 4 (json={json_flag}): {output:?}"
        );
    }

    // Exit 0 and a Validate report on the happy path.
    let output = cli().arg("validate").arg(&path).arg("--json").output().expect("run CLI");
    assert_eq!(output.status.code(), Some(0));
    let response: Response =
        serde_json::from_str(String::from_utf8_lossy(&output.stdout).trim()).expect("envelope");
    assert!(matches!(response.outcome, Outcome::Ok(Report::Validate(_))));
    let _ = std::fs::remove_file(path);

    // Budget flags without --json only make sense for sweep.
    let path = scenario_file("misuse", SCENARIO);
    let output =
        cli().arg("validate").arg(&path).arg("--max-points").arg("1").output().expect("run CLI");
    assert_eq!(output.status.code(), Some(2), "budget flags misuse is a usage error");
    let _ = std::fs::remove_file(path);
}
