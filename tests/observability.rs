//! The observability layer, end-to-end: golden Chrome-trace export for
//! the shipped megatron-18.4B scenario, the `--timeline` / `--metrics` /
//! `explain` CLI surface, and the zero-cost-when-disabled contract.
//!
//! The full 18.4B trace is ~1.4 MB, so instead of committing the bytes
//! the golden pins a digest: track/stream ordering, per-stream busy and
//! end times, and an FNV-1a hash of the exact export. Regenerate after
//! an intentional change with `VTRAIN_BLESS=1 cargo test -q --test
//! observability`.

use std::path::Path;
use std::process::{Command, Output};

use vtrain::prelude::*;

const EXAMPLE_PATH: &str = "examples/descriptions/megatron_18b.json";
const SWEEP_PATH: &str = "examples/descriptions/megatron_1_7b_sweep.json";
const GOLDEN_PATH: &str = "tests/golden/timeline_megatron_18b.digest.txt";

fn repo_file(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel).to_str().unwrap().to_owned()
}

fn vtrain(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vtrain"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("vtrain binary runs")
}

fn example_timeline() -> IterationTimeline {
    let text = std::fs::read_to_string(repo_file(EXAMPLE_PATH)).unwrap();
    let scenario = Scenario::from_json(&text).unwrap();
    let model = scenario.model().unwrap();
    let plan = scenario.plan().unwrap();
    scenario.estimator().unwrap().timeline(&model, &plan).unwrap()
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The digest a 1.4 MB trace is pinned through: counts, per-stream
/// accounting, and a hash of the exact bytes.
fn digest(timeline: &IterationTimeline, trace_json: &str) -> String {
    let rec = &timeline.recorder;
    let mut out = String::new();
    out.push_str(&format!("spans: {}\n", rec.len()));
    out.push_str(&format!("iteration_ns: {}\n", timeline.report.iteration_time.as_nanos()));
    for ((pid, tid), busy_ns) in rec.busy_per_stream() {
        out.push_str(&format!(
            "stream pid={pid} tid={tid}: busy_ns={busy_ns} end_ns={}\n",
            rec.stream_end_ns(pid, tid)
        ));
    }
    for (cat, busy_ns) in rec.busy_per_category() {
        out.push_str(&format!("category {cat}: busy_ns={busy_ns}\n"));
    }
    out.push_str(&format!("fnv1a64: {:016x}\n", fnv1a64(trace_json.as_bytes())));
    out
}

#[test]
fn chrome_trace_export_matches_golden_digest() {
    let timeline = example_timeline();
    let trace = timeline.recorder.to_chrome_trace();
    assert_eq!(trace, timeline.recorder.to_chrome_trace(), "export must be byte-deterministic");
    let got = digest(&timeline, &trace);
    let golden_path = repo_file(GOLDEN_PATH);
    if std::env::var("VTRAIN_BLESS").is_ok() {
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path).expect("golden digest present");
    assert_eq!(
        got, want,
        "timeline export drifted from {GOLDEN_PATH} — if the change is intentional, \
         regenerate with VTRAIN_BLESS=1"
    );
}

/// Acceptance: the last span across the trace ends exactly at the
/// predicted iteration time, and every stream stays inside it.
#[test]
fn stream_totals_match_the_predicted_iteration_time() {
    let timeline = example_timeline();
    let iteration_ns = timeline.report.iteration_time.as_nanos();
    assert_eq!(timeline.recorder.max_end_ns(), iteration_ns);
    for ((pid, tid), busy_ns) in timeline.recorder.busy_per_stream() {
        assert!(busy_ns > 0, "stream ({pid},{tid}) recorded no work");
        let end = timeline.recorder.stream_end_ns(pid, tid);
        assert!(
            end <= iteration_ns,
            "stream ({pid},{tid}) ends at {end} ns, after the iteration ({iteration_ns} ns)"
        );
        assert!(
            busy_ns <= end,
            "stream ({pid},{tid}) busy time {busy_ns} ns exceeds its span extent {end} ns"
        );
    }
}

#[test]
fn predict_timeline_flag_writes_parseable_chrome_trace() {
    let dir = std::env::temp_dir().join(format!("vtrain-obs-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("trace.json");
    let out = vtrain(&["predict", EXAMPLE_PATH, "--timeline", out_path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("timeline:"));
    let text = std::fs::read_to_string(&out_path).unwrap();
    let trace = serde_json::value_from_str(&text).expect("trace is valid JSON");
    let events = trace.get("traceEvents").expect("traceEvents array present");
    match events {
        serde_json::Value::Array(events) => {
            assert!(events.len() > 1000, "18.4B trace has thousands of events");
        }
        other => panic!("traceEvents must be an array, got {other:?}"),
    }
    // The CLI export is the same recording the library produces.
    assert_eq!(text, example_timeline().recorder.to_chrome_trace());
}

#[test]
fn sweep_metrics_flag_writes_a_registry_snapshot() {
    let dir = std::env::temp_dir().join(format!("vtrain-obs-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_path = dir.join("metrics.json");
    let out = vtrain(&["sweep", SWEEP_PATH, "--metrics", out_path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&out_path).unwrap();
    let snapshot = serde_json::value_from_str(&text).expect("metrics snapshot is valid JSON");
    for key in ["counters", "gauges", "histograms"] {
        assert!(snapshot.get(key).is_some(), "snapshot must carry `{key}`:\n{text}");
    }
    let counters = snapshot.get("counters").unwrap();
    assert!(counters.get("sweep.runs").and_then(serde_json::Value::as_u64).unwrap_or(0) > 0);
}

#[test]
fn explain_attributes_sweep_wall_time() {
    let out = vtrain(&["explain", SWEEP_PATH]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("attributed"), "attribution summary missing:\n{stdout}");
    // The summary row reads `attributed <ms> ms <pct>% ...`.
    let pct: f64 = stdout
        .lines()
        .find(|l| l.trim_start().starts_with("attributed"))
        .and_then(|l| l.split_whitespace().find_map(|tok| tok.strip_suffix('%')?.parse().ok()))
        .expect("attributed percentage printed");
    // The floor leaves room for the per-point clock reads themselves:
    // the faster the attributed stages get, the larger the share of the
    // wall the measurement overhead becomes (observed 97.5-97.9% on the
    // 1-core CI host after the PR 7 lowering speedups).
    assert!(pct >= 96.5, "stage attribution must cover >=96.5% of wall time, got {pct}%");
}

/// Recording a timeline is observation-only: the traced replay returns
/// the same `SimReport` the plain estimate path computes.
#[test]
fn timeline_recording_never_changes_the_simulation() {
    let text = std::fs::read_to_string(repo_file(EXAMPLE_PATH)).unwrap();
    let scenario = Scenario::from_json(&text).unwrap();
    let model = scenario.model().unwrap();
    let plan = scenario.plan().unwrap();
    let estimator = scenario.estimator().unwrap();
    let timeline = estimator.timeline(&model, &plan).unwrap();
    let estimate = estimator.estimate(&model, &plan).unwrap();
    assert_eq!(timeline.report.iteration_time, estimate.iteration_time);
    assert_eq!(timeline.report.tasks_executed, timeline.recorder.len());
}
