//! Miniature end-to-end versions of the paper's three case studies (§V).

use vtrain::cluster::{
    build_catalog, generate_trace, simulate_cluster, ProfilePolicy, SchedulerConfig, TraceConfig,
};
use vtrain::prelude::*;
use vtrain::scaling::{compute_optimal_search, CandidateSpec};

/// Case study #1: design-space exploration uncovers a plan at least as
/// cost-effective as a fixed heuristic plan with a similar GPU budget.
#[test]
fn dse_finds_plan_no_worse_than_heuristic() {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(128)).build();
    let model = presets::megatron("3.6B");
    let global_batch = 256;

    // A reasonable heuristic: max tensor parallelism, data parallel rest.
    let heuristic = ParallelConfig::builder()
        .tensor(8)
        .data(16)
        .pipeline(1)
        .micro_batch(1)
        .global_batch(global_batch)
        .build()
        .unwrap();
    let heuristic_est = estimator.estimate(&model, &heuristic).unwrap();

    let limits = SearchLimits { max_tensor: 8, max_data: 32, max_pipeline: 6, max_micro_batch: 8 };
    let outcome = Sweep::on(&estimator, &model)
        .batch(global_batch)
        .limits(limits)
        .threads(8)
        .run()
        .into_outcome();
    let cost = CostModel::default();
    let (best, proj) =
        search::most_cost_effective(&outcome.points, 50_000_000_000, &cost, 128).unwrap();
    let heuristic_proj = TrainingProjection::project(
        heuristic_est.iteration_time,
        heuristic_est.tokens_per_iteration,
        50_000_000_000,
        heuristic_est.num_gpus,
        &cost,
    );
    assert!(
        proj.total_dollars <= heuristic_proj.total_dollars,
        "DSE (${:.0}) must not lose to the heuristic (${:.0}); best plan {}",
        proj.total_dollars,
        heuristic_proj.total_dollars,
        best.plan
    );
}

/// Table II in miniature: vTrain's recommended plan beats the heuristic on
/// BOTH the predicted and the ground-truth-measured timelines.
#[test]
fn recommended_plan_wins_predicted_and_measured() {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(64)).build();
    let model = presets::megatron("3.6B");
    let global_batch = 512;
    let noise = NoiseModel::new(NoiseConfig::default());

    // The [40]-style heuristic for 3.6B on 64 GPUs: (2, 32, 1), m = 16.
    let heuristic = ParallelConfig::builder()
        .tensor(2)
        .data(32)
        .pipeline(1)
        .micro_batch(16)
        .global_batch(global_batch)
        .build()
        .unwrap();

    let limits = SearchLimits { max_tensor: 8, max_data: 64, max_pipeline: 3, max_micro_batch: 16 };
    let candidates = search::enumerate_candidates(
        &model,
        estimator.cluster(),
        global_batch,
        PipelineSchedule::OneFOneB,
        &limits,
    );
    let candidates: Vec<_> = candidates.into_iter().filter(|c| c.num_gpus() == 64).collect();
    let outcome =
        Sweep::on(&estimator, &model).candidates(candidates).threads(8).run().into_outcome();
    let ours = search::fastest_within_gpu_budget(&outcome.points, 64).unwrap();

    let pred_heuristic = estimator.estimate(&model, &heuristic).unwrap().iteration_time;
    let pred_ours = ours.estimate.iteration_time;
    assert!(pred_ours <= pred_heuristic, "prediction must prefer our plan");

    let meas_heuristic = estimator.measure_with(&model, &heuristic, &noise).unwrap().iteration_time;
    let meas_ours = estimator.measure_with(&model, &ours.plan, &noise).unwrap().iteration_time;
    assert!(
        meas_ours.as_secs_f64() <= meas_heuristic.as_secs_f64() * 1.02,
        "the win must survive ground-truth measurement: ours {meas_ours} vs heuristic {meas_heuristic}"
    );
}

/// Case study #2: on stressed traces the vTrain-informed scheduler meets at
/// least as many deadlines and never lengthens the makespan.
#[test]
fn scheduler_with_vtrain_profiles_never_worse() {
    let total_gpus = 64;
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(total_gpus)).build();
    let models = vec![(presets::megatron("1.7B"), 64usize)];
    let limits = SearchLimits { max_tensor: 8, max_data: 8, max_pipeline: 4, max_micro_batch: 4 };
    let catalog = build_catalog(&estimator, &models, &limits, 8);
    let entry = catalog.get("Megatron 1.7B").unwrap();
    assert!(entry.vtrain.dominates(&entry.baseline));

    for seed in 1..=3u64 {
        let jobs = generate_trace(
            &TraceConfig {
                num_jobs: 24,
                seed,
                arrival_window: TimeNs::from_secs(3600),
                deadline_lambda: Some((0.5, 1.5)),
                iterations: (200, 800),
            },
            &catalog,
        );
        let base = simulate_cluster(
            &jobs,
            &catalog,
            &SchedulerConfig::new(total_gpus, ProfilePolicy::DataParallelOnly),
        );
        let vt = simulate_cluster(
            &jobs,
            &catalog,
            &SchedulerConfig::new(total_gpus, ProfilePolicy::VTrainOptimal),
        );
        assert!(
            vt.deadline_satisfactory_ratio() + 1e-9 >= base.deadline_satisfactory_ratio(),
            "seed {seed}: deadline ratio regressed"
        );
    }
}

/// Case study #3: accounting for effective utilization always shrinks the
/// "largest trainable model" verdict vs the naive peak-FLOPS sizing.
#[test]
fn realistic_chinchilla_point_is_smaller_than_naive() {
    let gpus = 64;
    let days = 20.0;
    let cluster = ClusterSpec::aws_p4d(gpus);
    let law = ChinchillaLaw::default();
    let naive =
        law.optimal_point(ChinchillaLaw::gpu_budget(gpus, days, cluster.gpu.peak_fp16_flops));

    let estimator = Estimator::builder(cluster).build();
    let candidates = [
        CandidateSpec { hidden: 2048, layers: 24, heads: 16 },
        CandidateSpec { hidden: 3072, layers: 30, heads: 32 },
        CandidateSpec { hidden: 4096, layers: 36, heads: 32 },
        CandidateSpec { hidden: 6144, layers: 40, heads: 48 },
    ];
    let limits = SearchLimits { max_tensor: 8, max_data: 8, max_pipeline: 6, max_micro_batch: 4 };
    let (outcomes, best) =
        compute_optimal_search(&estimator, &law, &candidates, 128, days, &limits, 8);
    assert!(!outcomes.is_empty());
    let best = best.expect("some candidate fits 20 days on 64 GPUs");
    assert!(
        best.params < naive.params,
        "realistic pick {:.1}B must undercut naive {:.1}B",
        best.params / 1e9,
        naive.params / 1e9
    );
    // Utilization of the chosen plan is far below the naive 100 %.
    assert!(best.utilization < 0.7);
}
