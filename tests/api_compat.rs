//! Golden pins on the `Sweep` builder — the one sweep entry point.
//!
//! The deprecated free-function sweeps (and the deprecated `Estimator`
//! constructors) were deleted after their deprecation cycle; these tests
//! keep the builder's observable behaviour pinned in their place: the
//! fig10-style grid JSON must be **deterministic** (byte-identical run
//! to run and across thread counts), goal-filtered results must be the
//! exhaustive winners, and the placement axis must label its variants
//! stably.

use vtrain::prelude::*;

fn grid(model: &ModelConfig, cluster: &ClusterSpec, batch: usize) -> Vec<ParallelConfig> {
    let limits = SearchLimits { max_tensor: 8, max_data: 8, max_pipeline: 4, max_micro_batch: 2 };
    search::enumerate_candidates(model, cluster, batch, PipelineSchedule::OneFOneB, &limits)
}

/// The grid JSON of a sweep outcome, as one string for byte-wise
/// comparison.
fn grid_json(points: &[DesignPoint]) -> String {
    serde_json::to_string(&points.to_vec()).unwrap()
}

#[test]
fn sweep_builder_grid_json_is_deterministic_across_thread_counts() {
    let model = presets::megatron("1.7B");
    let cluster = ClusterSpec::aws_p4d(64);
    let candidates = grid(&model, &cluster, 32);
    assert!(candidates.len() > 30, "grid too small to be meaningful");

    for goal in [SweepGoal::Exhaustive, SweepGoal::Front, SweepGoal::Best] {
        let reference = Sweep::over(&model, &cluster)
            .candidates(candidates.clone())
            .threads(1)
            .goal(goal)
            .run()
            .into_outcome();
        for threads in [2, 4] {
            let outcome = Sweep::over(&model, &cluster)
                .candidates(candidates.clone())
                .threads(threads)
                .goal(goal)
                .run()
                .into_outcome();
            assert_eq!(
                grid_json(&reference.points),
                grid_json(&outcome.points),
                "grid JSON must be byte-identical at {threads} threads under {goal:?}"
            );
            // Winners are deterministic; `evaluated`/`bound_pruned` are
            // not (watermark race timing), so only the deterministic
            // stats are compared.
            assert_eq!(reference.stats.candidates, outcome.stats.candidates);
            assert_eq!(reference.stats.pruned, outcome.stats.pruned);
        }
    }
}

#[test]
fn goal_filtered_sweeps_return_the_exhaustive_winners() {
    let model = presets::megatron("1.7B");
    let cluster = ClusterSpec::aws_p4d(64);
    let candidates = grid(&model, &cluster, 32);

    let sweep = |goal| {
        Sweep::over(&model, &cluster)
            .candidates(candidates.clone())
            .threads(4)
            .goal(goal)
            .run()
            .into_outcome()
    };
    let exhaustive = sweep(SweepGoal::Exhaustive);
    let best = sweep(SweepGoal::Best);
    let front = sweep(SweepGoal::Front);

    let fastest =
        exhaustive.points.iter().min_by_key(|p| p.estimate.iteration_time).unwrap().clone();
    assert_eq!(best.points.len(), 1);
    assert_eq!(grid_json(&best.points), grid_json(&[fastest]));

    // Every front point exists verbatim in the exhaustive grid, and the
    // front is no larger than the grid.
    assert!(!front.points.is_empty() && front.points.len() <= exhaustive.points.len());
    let exhaustive_json = grid_json(&exhaustive.points);
    for p in &front.points {
        let single = grid_json(std::slice::from_ref(p));
        let body = &single[1..single.len() - 1]; // strip the [ ] brackets
        assert!(exhaustive_json.contains(body), "front point missing from the exhaustive grid");
    }
}

#[test]
fn placement_sweep_labels_variants_stably() {
    let model = presets::megatron("1.7B");
    let cluster = ClusterSpec::aws_p4d(32);
    let candidates = grid(&model, &cluster, 16);
    let spine = TierSpec::new(25e9, TimeNs::from_micros(35), 1.0);
    let topologies = vec![
        ("two-tier".to_owned(), cluster.topology(1.0)),
        ("multi-rack/2".to_owned(), cluster.topology(1.0).with_rack_tier(2, spine)),
    ];

    let run = |threads| {
        Sweep::over(&model, &cluster)
            .candidates(candidates.clone())
            .placements(topologies.clone())
            .threads(threads)
            .run()
            .into_variants()
    };
    let a = run(1);
    let b = run(4);

    assert_eq!(a.len(), 2);
    assert_eq!(a.len(), b.len());
    for ((one, other), (label, _)) in a.iter().zip(&b).zip(&topologies) {
        assert_eq!(one.label, *label);
        assert_eq!(one.label, other.label);
        assert_eq!(
            grid_json(&one.outcome.points),
            grid_json(&other.outcome.points),
            "placement `{label}` grid JSON must be byte-identical across thread counts"
        );
    }
}

#[test]
fn fair_sharing_sweeps_agree_with_per_point_estimates() {
    let model = presets::megatron("1.7B");
    let cluster = ClusterSpec::aws_p4d(32);
    let candidates = grid(&model, &cluster, 16);
    assert!(candidates.len() > 10, "grid too small to be meaningful");

    // `Sweep::on` inherits the estimator's backend, so every point of a
    // fair-sharing sweep must equal the same estimator's ad-hoc answer.
    let estimator =
        Estimator::builder(cluster.clone()).network(NetworkBackend::FairSharing).build();
    assert_eq!(estimator.network(), NetworkBackend::FairSharing);
    let outcome = Sweep::on(&estimator, &model)
        .candidates(candidates.clone())
        .threads(2)
        .run()
        .into_outcome();
    assert_eq!(outcome.points.len(), candidates.len() - outcome.stats.pruned as usize);
    for point in &outcome.points {
        let solo = estimator.estimate(&model, &point.plan).unwrap();
        assert_eq!(
            point.estimate.iteration_time, solo.iteration_time,
            "sweep point {} must match the ad-hoc fair-sharing estimate",
            point.plan
        );
        assert_eq!(point.estimate.utilization.to_bits(), solo.utilization.to_bits());
    }

    // The contention replay is deterministic across the threaded executor.
    let again = Sweep::over(&model, &cluster)
        .candidates(candidates)
        .network(NetworkBackend::FairSharing)
        .threads(4)
        .run()
        .into_outcome();
    assert_eq!(grid_json(&outcome.points), grid_json(&again.points));
}

#[test]
fn builder_axes_match_explicitly_configured_estimators() {
    let model = presets::megatron("1.7B");
    let cluster = ClusterSpec::aws_p4d(32);
    let plan = ParallelConfig::builder()
        .tensor(2)
        .data(4)
        .pipeline(2)
        .micro_batch(1)
        .global_batch(16)
        .build()
        .unwrap();

    // The default build and an explicitly-defaulted build agree bit-for-bit.
    let default = Estimator::builder(cluster.clone()).build().estimate(&model, &plan).unwrap();
    let explicit =
        Estimator::builder(cluster.clone()).alpha(1.0).build().estimate(&model, &plan).unwrap();
    assert_eq!(default.iteration_time, explicit.iteration_time);
    assert_eq!(default.utilization.to_bits(), explicit.utilization.to_bits());

    // The topology axis changes pricing deterministically.
    let aware =
        Estimator::builder(cluster.clone()).alpha(0.9).topology(cluster.topology(0.9)).build();
    assert!(aware.is_topology_aware());
    let a = aware.estimate(&model, &plan).unwrap();
    let b = Estimator::builder(cluster.clone())
        .alpha(0.9)
        .topology(cluster.topology(0.9))
        .build()
        .estimate(&model, &plan)
        .unwrap();
    assert_eq!(a.iteration_time, b.iteration_time);
    assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
}
