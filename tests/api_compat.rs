//! A/B golden equivalence of the `Sweep` builder against the deprecated
//! sweep entry points it replaces: the fig10-style grid JSON produced
//! from the builder must be **byte-identical** to the old paths', under
//! every goal and on the placement axis.
//!
//! (The full-size check is run on the real fig10 binaries: their
//! `results/fig10_design_space.json` / `fig10_topology.json` are byte-
//! identical across the migration. This test pins the same property on a
//! grid small enough for CI.)

#![allow(deprecated)] // the point of this test is to A/B the old API

use vtrain::prelude::*;

fn grid(model: &ModelConfig, cluster: &ClusterSpec, batch: usize) -> Vec<ParallelConfig> {
    let limits = SearchLimits { max_tensor: 8, max_data: 8, max_pipeline: 4, max_micro_batch: 2 };
    search::enumerate_candidates(model, cluster, batch, PipelineSchedule::OneFOneB, &limits)
}

/// The grid JSON of a sweep outcome, as one string for byte-wise
/// comparison.
fn grid_json(points: &[DesignPoint]) -> String {
    serde_json::to_string(&points.to_vec()).unwrap()
}

#[test]
fn sweep_builder_matches_deprecated_sweeps_byte_for_byte() {
    let model = presets::megatron("1.7B");
    let cluster = ClusterSpec::aws_p4d(64);
    let candidates = grid(&model, &cluster, 32);
    assert!(candidates.len() > 30, "grid too small to be meaningful");

    for goal in [SweepGoal::Exhaustive, SweepGoal::Front, SweepGoal::Best] {
        let old = {
            let estimator = Estimator::builder(cluster.clone()).build();
            search::sweep_with_goal(&estimator, &model, &candidates, 4, goal)
        };
        let new = Sweep::over(&model, &cluster)
            .candidates(candidates.clone())
            .threads(4)
            .goal(goal)
            .run()
            .into_outcome();
        assert_eq!(
            grid_json(&old.points),
            grid_json(&new.points),
            "builder grid JSON must be byte-identical to the old path under {goal:?}"
        );
        // Winners are deterministic; `evaluated`/`bound_pruned` are not
        // (watermark race timing), so only the deterministic stats are
        // compared.
        assert_eq!(old.stats.candidates, new.stats.candidates);
        assert_eq!(old.stats.pruned, new.stats.pruned);
    }

    // The un-goaled legacy `sweep` as well.
    let old = {
        let estimator = Estimator::builder(cluster.clone()).build();
        search::sweep(&estimator, &model, &candidates, 4)
    };
    let new = Sweep::over(&model, &cluster)
        .candidates(candidates.clone())
        .threads(4)
        .run()
        .into_outcome();
    assert_eq!(grid_json(&old.points), grid_json(&new.points));
}

#[test]
fn sweep_builder_matches_deprecated_topology_sweeps_byte_for_byte() {
    let model = presets::megatron("1.7B");
    let cluster = ClusterSpec::aws_p4d(32);
    let candidates = grid(&model, &cluster, 16);
    let spine = TierSpec::new(25e9, TimeNs::from_micros(35), 1.0);
    let topologies = vec![
        ("two-tier".to_owned(), cluster.topology(1.0)),
        ("multi-rack/2".to_owned(), cluster.topology(1.0).with_rack_tier(2, spine)),
    ];

    let old = search::sweep_topologies(&cluster, 1.0, &topologies, &model, &candidates, 4);
    let new = Sweep::over(&model, &cluster)
        .candidates(candidates.clone())
        .placements(topologies.clone())
        .threads(4)
        .run()
        .into_variants();

    assert_eq!(old.len(), new.len());
    for (a, b) in old.iter().zip(&new) {
        assert_eq!(a.label, b.label);
        assert_eq!(
            grid_json(&a.outcome.points),
            grid_json(&b.outcome.points),
            "placement `{}` grid JSON must be byte-identical",
            a.label
        );
    }
}

#[test]
fn deprecated_estimator_constructors_agree_with_builder() {
    let model = presets::megatron("1.7B");
    let cluster = ClusterSpec::aws_p4d(32);
    let plan = ParallelConfig::builder()
        .tensor(2)
        .data(4)
        .pipeline(2)
        .micro_batch(1)
        .global_batch(16)
        .build()
        .unwrap();

    let old = Estimator::new(cluster.clone()).estimate(&model, &plan).unwrap();
    let new = Estimator::builder(cluster.clone()).build().estimate(&model, &plan).unwrap();
    assert_eq!(old.iteration_time, new.iteration_time);
    assert_eq!(old.utilization.to_bits(), new.utilization.to_bits());

    let old = Estimator::with_topology(cluster.clone(), 0.9, cluster.topology(0.9))
        .estimate(&model, &plan)
        .unwrap();
    let new = Estimator::builder(cluster.clone())
        .alpha(0.9)
        .topology(cluster.topology(0.9))
        .build()
        .estimate(&model, &plan)
        .unwrap();
    assert_eq!(old.iteration_time, new.iteration_time);
    assert_eq!(old.utilization.to_bits(), new.utilization.to_bits());
}
