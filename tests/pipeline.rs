//! Cross-crate integration: the full vTrain flow from model description to
//! simulated iteration time, exercised through the public facade.

use vtrain::graph::{build_op_graph, GraphOptions};
use vtrain::prelude::*;
use vtrain::profile::{CommModel, Profiler};
use vtrain::sim::{simulate, TaskGraph};

/// Walks the whole Fig. 4 flow by hand: description → operator graph →
/// profiling → lookup table → task graph → Algorithm 1.
#[test]
fn full_simulation_flow_matches_estimator() {
    let cluster = ClusterSpec::aws_p4d(64);
    let model = presets::megatron("1.7B");
    let plan = ParallelConfig::builder()
        .tensor(4)
        .data(2)
        .pipeline(2)
        .micro_batch(2)
        .global_batch(32)
        .build()
        .unwrap();
    plan.validate(&model, &cluster).unwrap();

    // Manual flow.
    let graph = build_op_graph(
        &model,
        &plan,
        &GraphOptions { gpus_per_node: cluster.gpus_per_node, ..GraphOptions::default() },
    );
    assert!(graph.is_acyclic());
    let table = Profiler::new(cluster.gpu.clone()).profile(&graph.necessary_operators());
    let comm = CommModel::new(&cluster, 1.0);
    let tg = TaskGraph::lower(&graph, &table, &comm).unwrap();
    let report = simulate(&tg, SimMode::Predicted);

    // Estimator front-end must agree exactly.
    let est = Estimator::builder(cluster).build().estimate(&model, &plan).unwrap();
    assert_eq!(report.iteration_time, est.iteration_time);
}

/// Golden comparison for the staged pipeline: across an entire small
/// sweep, the cached fused path must reproduce the legacy two-phase
/// composition (materialized operator graph + per-plan profiling + table
/// lowering + replay) **bit for bit**, cold or warm.
#[test]
fn sweep_is_bit_identical_to_legacy_per_plan_pipeline() {
    let cluster = ClusterSpec::aws_p4d(32);
    let model = presets::megatron("1.7B");
    let estimator = Estimator::builder(cluster.clone()).build();
    let limits = SearchLimits { max_tensor: 8, max_data: 4, max_pipeline: 4, max_micro_batch: 2 };
    let candidates =
        search::enumerate_candidates(&model, &cluster, 16, PipelineSchedule::OneFOneB, &limits);
    // Warm-cache sweep, then compare every point against the uncached
    // legacy composition.
    let outcome =
        Sweep::on(&estimator, &model).candidates(candidates).threads(4).run().into_outcome();
    assert!(outcome.points.len() >= 8, "grid too small: {}", outcome.points.len());
    assert!(outcome.stats.cache_hits > 0, "sweep must reuse profiles");
    let opts = GraphOptions { gpus_per_node: cluster.gpus_per_node, ..GraphOptions::default() };
    let comm = CommModel::new(&cluster, 1.0);
    for point in &outcome.points {
        let graph = build_op_graph(&model, &point.plan, &opts);
        let table = Profiler::new(cluster.gpu.clone()).profile(&graph.necessary_operators());
        let tg = TaskGraph::lower(&graph, &table, &comm).unwrap();
        let report = simulate(&tg, SimMode::Predicted);
        let legacy = estimator.summarize(&model, &point.plan, &report);
        assert_eq!(legacy.iteration_time, point.estimate.iteration_time, "{}", point.plan);
        assert_eq!(legacy.busy, point.estimate.busy, "{}", point.plan);
        assert_eq!(legacy.num_gpus, point.estimate.num_gpus);
        assert_eq!(legacy.tokens_per_iteration, point.estimate.tokens_per_iteration);
        assert_eq!(
            legacy.utilization.to_bits(),
            point.estimate.utilization.to_bits(),
            "utilization must be bit-identical for {}",
            point.plan
        );
        assert_eq!(legacy.occupancy.to_bits(), point.estimate.occupancy.to_bits());
    }
}

/// The published MT-NLG plan must be feasible on an 80 GB cluster and land
/// in a plausible iteration-time range (Table I reports 42.59 s for
/// (8, 8, 35); our simulated substrate should land within a factor ~1.5).
#[test]
fn mt_nlg_published_plan_is_plausible() {
    let cluster = ClusterSpec::dgx_a100_80gb(2240);
    let model = presets::mt_nlg_530b();
    let plan = ParallelConfig::builder()
        .tensor(8)
        .data(8)
        .pipeline(35)
        .micro_batch(1)
        .global_batch(1920)
        .build()
        .unwrap();
    let est = Estimator::builder(cluster).build().estimate(&model, &plan).unwrap();
    let secs = est.iteration_time.as_secs_f64();
    assert!(
        (25.0..65.0).contains(&secs),
        "MT-NLG (8,8,35) iteration time {secs:.1}s outside plausible band"
    );
    assert!(
        (0.33..0.58).contains(&est.utilization),
        "utilization {:.3} outside the paper's ~42% band",
        est.utilization
    );
}

/// Bigger models on the same hardware must run slower per iteration and the
/// ordering must be stable across the Megatron family.
#[test]
fn iteration_time_monotone_in_model_size() {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(64)).build();
    let plan = ParallelConfig::builder()
        .tensor(8)
        .data(2)
        .pipeline(4)
        .micro_batch(1)
        .global_batch(32)
        .build()
        .unwrap();
    let mut last = None;
    for size in ["1.7B", "3.6B", "7.5B"] {
        let model = presets::megatron(size);
        let est = estimator.estimate(&model, &plan).unwrap();
        if let Some(prev) = last {
            assert!(est.iteration_time > prev, "{size} should be slower than its predecessor");
        }
        last = Some(est.iteration_time);
    }
}

/// Gradient bucketing (Fig. 5) must never hurt, and its benefit must vanish
/// when there is no data parallelism.
#[test]
fn bucketing_interaction_with_data_parallelism() {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(64)).build();
    let model = presets::megatron("1.7B");
    for d in [1usize, 8] {
        let mk = |bucketing: bool| {
            let plan = ParallelConfig::builder()
                .data(d)
                .tensor(2)
                .micro_batch(2)
                .global_batch(16 * d)
                .gradient_bucketing(bucketing)
                .build()
                .unwrap();
            estimator.estimate(&model, &plan).unwrap().iteration_time
        };
        let with = mk(true);
        let without = mk(false);
        assert!(with <= without, "bucketing regressed at d={d}");
        if d == 1 {
            assert_eq!(with, without, "no DP ⇒ bucketing is a no-op");
        }
    }
}

/// End-to-end cost arithmetic through the facade: doubling GPUs at equal
/// utilization should roughly halve time but keep cost within a few
/// percent.
#[test]
fn cost_model_consistency_across_scales() {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(128)).build();
    let model = presets::megatron("3.6B");
    let cost = CostModel::default();
    let project = |d: usize| {
        let plan = ParallelConfig::builder()
            .tensor(2)
            .data(d)
            .pipeline(2)
            .micro_batch(2)
            .global_batch(256)
            .build()
            .unwrap();
        let est = estimator.estimate(&model, &plan).unwrap();
        TrainingProjection::project(
            est.iteration_time,
            est.tokens_per_iteration,
            10_000_000_000,
            est.num_gpus,
            &cost,
        )
    };
    let small = project(8);
    let large = project(16);
    assert!(large.total_time < small.total_time);
    let cost_ratio = large.total_dollars / small.total_dollars;
    assert!(
        (0.8..1.35).contains(&cost_ratio),
        "doubling DP should be roughly cost-neutral, got ratio {cost_ratio:.3}"
    );
}
