//! The scenario schema and the `vtrain` CLI, exercised end-to-end: serde
//! round-trips, unknown-field rejection, subcommand golden output, and
//! error exit codes.

use std::path::Path;
use std::process::{Command, Output};

use vtrain::prelude::*;

const EXAMPLE_PATH: &str = "examples/descriptions/megatron_18b.json";
const SWEEP_PATH: &str = "examples/descriptions/megatron_1_7b_sweep.json";

fn repo_file(rel: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel).to_str().unwrap().to_owned()
}

fn vtrain(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_vtrain"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("vtrain binary runs")
}

#[test]
fn shipped_scenarios_round_trip_through_serde() {
    for path in [EXAMPLE_PATH, SWEEP_PATH] {
        let text = std::fs::read_to_string(repo_file(path)).unwrap();
        let parsed = Scenario::from_json(&text).unwrap();
        let rewritten = parsed.to_json();
        let reparsed = Scenario::from_json(&rewritten).unwrap();
        assert_eq!(parsed, reparsed, "round-trip must be lossless for {path}");
        parsed.check().unwrap_or_else(|e| panic!("{path} must validate: {e}"));
    }
}

#[test]
fn unknown_fields_are_rejected_at_every_level() {
    let text = std::fs::read_to_string(repo_file(EXAMPLE_PATH)).unwrap();
    // Root level.
    let bad = text.replace("\"tokens\"", "\"tokenz\"");
    let err = Scenario::from_json(&bad).unwrap_err();
    assert!(err.to_string().contains("unknown field `tokenz`"), "{err}");
    // Nested section.
    let bad = text.replace("\"micro_batch\"", "\"micro_batchh\"");
    assert!(Scenario::from_json(&bad).is_err());
    // The untagged model section still names the typo'd key (each
    // variant's rejection reason is carried into the mismatch error).
    let bad = text.replace("\"preset\": \"megatron-18.4B\"", "\"presett\": \"megatron-18.4B\"");
    let err = Scenario::from_json(&bad).unwrap_err();
    assert!(err.to_string().contains("presett"), "{err}");
    // Sweep section of the placement scenario.
    let sweep_text = std::fs::read_to_string(repo_file(SWEEP_PATH)).unwrap();
    let bad = sweep_text.replace("\"goal\"", "\"gaol\"");
    assert!(Scenario::from_json(&bad).is_err());
}

#[test]
fn predict_output_matches_golden() {
    let out = vtrain(&["predict", EXAMPLE_PATH]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let golden = std::fs::read_to_string(repo_file("tests/golden/predict_megatron_18b.txt"))
        .expect("golden file present");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout),
        golden,
        "`vtrain predict` output drifted from tests/golden/predict_megatron_18b.txt — \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn sweep_subcommand_runs_goal_guided_placements_end_to_end() {
    let out = vtrain(&["sweep", SWEEP_PATH]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for label in ["two-tier", "multi-rack/4", "thin-spine/2"] {
        assert!(stdout.contains(label), "placement `{label}` missing from:\n{stdout}");
    }
    assert!(stdout.contains("goal Front"), "goal must be honored:\n{stdout}");
    assert!(stdout.contains("fastest:"), "per-variant winner must be reported");
}

/// `vtrain sweep <dir>` batch mode: every `*.json` scenario in sorted
/// order sharing one profile cache (observable as a 100% hit-rate from
/// the second scenario on), with `2` exits for broken batches and for
/// directories handed to any other command.
#[test]
fn sweep_batch_directory_shares_one_cache_and_exits_cleanly() {
    let dir = std::env::temp_dir().join(format!("vtrain-batch-tests-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sweep_text = std::fs::read_to_string(repo_file(SWEEP_PATH)).unwrap();
    std::fs::write(dir.join("a_first.json"), &sweep_text).unwrap();
    std::fs::write(dir.join("b_second.json"), &sweep_text).unwrap();
    std::fs::write(dir.join("notes.txt"), "not a scenario").unwrap();

    let out = vtrain(&["sweep", dir.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("batch sweep: 2 scenarios"), "txt files must be skipped:\n{stdout}");
    let first = stdout.find("a_first.json").expect("first scenario reported");
    let second = stdout.find("b_second.json").expect("second scenario reported");
    assert!(first < second, "scenarios must run in sorted order:\n{stdout}");
    // The second scenario starts on the first one's cache: pure hits.
    assert!(
        stdout[second..].contains("hit-rate 100.0%"),
        "shared cache must carry across scenarios:\n{stdout}"
    );

    // Directories are sweep-only.
    let out = vtrain(&["predict", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("directory"));

    // A malformed scenario fails the whole batch, naming the file.
    std::fs::write(dir.join("c_bad.json"), "{ not json").unwrap();
    let out = vtrain(&["sweep", dir.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("c_bad.json"));

    // An empty directory is a scenario error, not a silent success.
    let empty = dir.join("empty");
    std::fs::create_dir_all(&empty).unwrap();
    let out = vtrain(&["sweep", empty.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn validate_subcommand_accepts_shipped_scenarios() {
    for path in [EXAMPLE_PATH, SWEEP_PATH] {
        let out = vtrain(&["validate", path]);
        assert!(out.status.success(), "{path} stderr: {}", String::from_utf8_lossy(&out.stderr));
        assert!(String::from_utf8_lossy(&out.stdout).contains("scenario OK"));
    }
}

#[test]
fn cli_error_paths_exit_2_with_context() {
    // No arguments: usage on stderr, exit 2, and the subcommands listed.
    let out = vtrain(&[]);
    assert_eq!(out.status.code(), Some(2));
    let usage = String::from_utf8_lossy(&out.stderr);
    for cmd in ["predict", "sweep", "validate"] {
        assert!(usage.contains(cmd), "usage must list `{cmd}`:\n{usage}");
    }

    // Unknown subcommand.
    let out = vtrain(&["frobnicate", EXAMPLE_PATH]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Malformed JSON: line/column context, exit 2, no panic.
    let dir = std::env::temp_dir().join(format!("vtrain-cli-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\n  \"model\": ,\n}").unwrap();
    let out = vtrain(&["predict", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("line 2"), "position context in: {stderr}");

    // Well-formed JSON with a schema typo: field context, exit 2.
    let typo = dir.join("typo.json");
    let text = std::fs::read_to_string(repo_file(EXAMPLE_PATH))
        .unwrap()
        .replace("\"tensor\"", "\"tensr\"");
    std::fs::write(&typo, text).unwrap();
    let out = vtrain(&["predict", typo.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));

    // Unreadable file: runtime failure, exit 1.
    let out = vtrain(&["predict", "/nonexistent/scenario.json"]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn scenario_without_parallelism_cannot_predict_but_can_sweep() {
    let out = vtrain(&["predict", SWEEP_PATH]);
    assert_eq!(out.status.code(), Some(2), "sweep-only scenario must not predict");
    assert!(String::from_utf8_lossy(&out.stderr).contains("parallelism"));
}
