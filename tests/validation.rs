//! Miniature versions of the paper's validation studies (Fig. 9, Table II),
//! asserting that prediction quality stays inside the published bands.

use vtrain::prelude::*;

fn stats(pairs: &[(f64, f64)]) -> (f64, f64) {
    let mape =
        100.0 * pairs.iter().map(|(p, m)| ((p - m) / m).abs()).sum::<f64>() / pairs.len() as f64;
    let mean = pairs.iter().map(|&(_, m)| m).sum::<f64>() / pairs.len() as f64;
    let ss_res: f64 = pairs.iter().map(|(p, m)| (m - p).powi(2)).sum();
    let ss_tot: f64 = pairs.iter().map(|(_, m)| (m - mean).powi(2)).sum();
    (mape, 1.0 - ss_res / ss_tot)
}

/// Single-node validation (Fig. 9a): predicted vs ground-truth-emulated
/// iteration times across models × plans on one 8-GPU node. The paper
/// reports MAPE 8.37 %, R² 0.9896; we require the same ballpark.
#[test]
fn single_node_validation_band() {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(8)).build();
    let noise = NoiseModel::new(NoiseConfig::default());
    let mut pairs = Vec::new();
    for model in presets::single_node_family().into_iter().take(9) {
        for (t, d, p, m) in [(1, 1, 1, 2), (2, 2, 2, 1), (4, 2, 1, 2), (8, 1, 1, 4), (2, 1, 4, 1)] {
            if !model.num_layers().is_multiple_of(p) {
                continue;
            }
            let plan = ParallelConfig::builder()
                .tensor(t)
                .data(d)
                .pipeline(p)
                .micro_batch(m)
                .global_batch(16)
                .build()
                .unwrap();
            let (Ok(pred), Ok(meas)) =
                (estimator.estimate(&model, &plan), estimator.measure_with(&model, &plan, &noise))
            else {
                continue;
            };
            pairs.push((pred.iteration_time.as_secs_f64(), meas.iteration_time.as_secs_f64()));
        }
    }
    assert!(pairs.len() >= 30, "need a real sample, got {}", pairs.len());
    let (mape, r2) = stats(&pairs);
    assert!(mape < 12.0, "single-node MAPE {mape:.2}% above band");
    assert!(r2 > 0.97, "single-node R² {r2:.4} below band");
}

/// Multi-node validation (Fig. 9b): larger models on up to 256 GPUs. The
/// paper reports MAPE 14.73 %, R² 0.9887.
#[test]
fn multi_node_validation_band() {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(256)).build();
    let noise = NoiseModel::new(NoiseConfig::default());
    let mut pairs = Vec::new();
    for size in ["3.6B", "7.5B", "18.4B"] {
        let model = presets::megatron(size);
        for (t, d, p, m) in [
            (8, 4, 1, 2),
            (8, 8, 2, 1),
            (4, 16, 2, 1),
            (8, 16, 2, 2),
            (8, 8, 4, 2),
            (8, 4, 2, 1),
            (4, 8, 2, 2),
            (8, 16, 1, 1),
            (4, 16, 4, 1),
            (8, 8, 1, 4),
        ] {
            if !model.num_layers().is_multiple_of(p) {
                continue;
            }
            let plan = ParallelConfig::builder()
                .tensor(t)
                .data(d)
                .pipeline(p)
                .micro_batch(m)
                .global_batch(256)
                .build()
                .unwrap();
            let (Ok(pred), Ok(meas)) =
                (estimator.estimate(&model, &plan), estimator.measure_with(&model, &plan, &noise))
            else {
                continue;
            };
            pairs.push((pred.iteration_time.as_secs_f64(), meas.iteration_time.as_secs_f64()));
        }
    }
    assert!(pairs.len() >= 20, "need a real sample, got {}", pairs.len());
    let (mape, r2) = stats(&pairs);
    assert!(mape < 20.0, "multi-node MAPE {mape:.2}% above band");
    assert!(r2 > 0.95, "multi-node R² {r2:.4} below band");
    // Predictions systematically undershoot measurements (the paper's NCCL
    // isolation bias): the majority of points sit below the measured value
    // and the mean measured/predicted ratio exceeds 1. (Individual
    // configurations scatter on both sides — Fig. 9's points straddle the
    // diagonal — so both statistics are over the whole sample.)
    let undershoot = pairs.iter().filter(|(p, m)| p < m).count();
    assert!(
        2 * undershoot > pairs.len(),
        "bias direction unexpected: {undershoot}/{}",
        pairs.len()
    );
    let mean_ratio = pairs.iter().map(|(p, m)| m / p).sum::<f64>() / pairs.len() as f64;
    assert!(mean_ratio > 1.0, "mean measured/predicted {mean_ratio:.3} should exceed 1");
}

/// The α calibration sweep of §IV: sweeping the bandwidth-effectiveness
/// factor against ground-truth measurements, the error curve must not be
/// minimized at crippled bandwidth, and full effectiveness (α = 1.0, the
/// paper's optimum) must fit nearly as well as the best α. Bucketing is
/// disabled so the inter-node gradient All-Reduce is actually exposed.
///
/// Calibration isolates bandwidth effectiveness, so the measurement noise
/// here disables the *separately modeled* error mechanisms — in-training
/// NCCL contention, ToR interference, stragglers, and the per-config
/// framework bias (which is keyed on the configuration hash and would
/// make the verdict a function of hash luck). The paper treats those as
/// residual error sources after calibration, not calibration inputs; our
/// emulated platform's true effective bandwidth is α = 1.0 by
/// construction, and the sweep must recover a high α.
#[test]
fn alpha_sweep_prefers_high_alpha() {
    let noise = NoiseModel::new(NoiseConfig {
        comm_inflation: 0.0,
        congestion_per_group: 0.0,
        straggler_sigma: 0.0,
        iteration_bias_sigma: 0.0,
        ..NoiseConfig::default()
    });
    let mut configs = Vec::new();
    for size in ["3.6B", "7.5B"] {
        for (t, d, p) in [(8, 16, 1), (8, 16, 2), (8, 32, 1)] {
            let model = presets::megatron(size);
            if !model.num_layers().is_multiple_of(p) {
                continue;
            }
            let plan = ParallelConfig::builder()
                .tensor(t)
                .data(d)
                .pipeline(p)
                .micro_batch(1)
                .global_batch(256)
                .gradient_bucketing(false)
                .build()
                .unwrap();
            configs.push((model, plan));
        }
    }
    let cluster = ClusterSpec::aws_p4d(512);
    let measured: Vec<f64> = configs
        .iter()
        .filter_map(|(m, p)| {
            Estimator::builder(cluster.clone())
                .build()
                .measure_with(m, p, &noise)
                .ok()
                .map(|e| e.iteration_time.as_secs_f64())
        })
        .collect();
    assert!(measured.len() >= 4);

    let mape_at = |alpha: f64| {
        let est = Estimator::builder(cluster.clone()).alpha(alpha).build();
        let pairs: Vec<(f64, f64)> = configs
            .iter()
            .zip(&measured)
            .filter_map(|((m, p), &meas)| {
                est.estimate(m, p).ok().map(|e| (e.iteration_time.as_secs_f64(), meas))
            })
            .collect();
        pairs.iter().map(|(p, m)| ((p - m) / m).abs()).sum::<f64>() / pairs.len() as f64
    };
    let alphas = [0.1, 0.2, 0.4, 0.6, 0.8, 1.0];
    let errs: Vec<f64> = alphas.iter().map(|&a| mape_at(a)).collect();
    let best_idx = (0..alphas.len()).min_by(|&a, &b| errs[a].total_cmp(&errs[b])).unwrap();
    assert!(alphas[best_idx] >= 0.4, "error minimized at crippled α = {}", alphas[best_idx]);
    let err_full = errs[alphas.len() - 1];
    let err_best = errs[best_idx];
    assert!(
        err_full <= err_best * 1.5 + 0.02,
        "α = 1.0 (err {err_full:.3}) must fit nearly as well as α = {} (err {err_best:.3})",
        alphas[best_idx]
    );
}
