//! Cross-crate property tests: invariants the estimator must hold for any
//! feasible configuration (DESIGN.md §6).

use proptest::prelude::*;
use vtrain::prelude::*;

fn arb_model() -> impl Strategy<Value = ModelConfig> {
    (1usize..=4, 1usize..=3, 0usize..=2).prop_map(|(h_idx, l_idx, s_idx)| {
        let hidden = 512 * h_idx; // 512..2048
        let layers = 4 * l_idx; // 4..12
        let seq = 256 << s_idx; // 256..1024
        ModelConfig::builder()
            .name(format!("prop-h{hidden}-L{layers}-s{seq}"))
            .hidden_size(hidden)
            .num_layers(layers)
            .num_heads(8)
            .seq_len(seq)
            .vocab_size(32_000)
            .build()
            .expect("property grid is valid")
    })
}

fn arb_plan(layers: usize) -> impl Strategy<Value = ParallelConfig> {
    (0usize..=2, 0usize..=2, 0usize..=2, 0usize..=1).prop_filter_map(
        "pipeline must divide layers",
        move |(t_exp, d_exp, p_exp, m_exp)| {
            let (t, d, p, m) = (1 << t_exp, 1 << d_exp, 1 << p_exp, 1 << m_exp);
            if !layers.is_multiple_of(p) {
                return None;
            }
            ParallelConfig::builder()
                .tensor(t)
                .data(d)
                .pipeline(p)
                .micro_batch(m)
                .global_batch(d * m * 4)
                .build()
                .ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any feasible (model, plan) yields a positive iteration time, a valid
    /// utilization fraction, and busy-time accounting bounded by wall-clock
    /// across devices.
    #[test]
    fn estimates_are_well_formed(
        model in arb_model(),
        seed_plan in (0usize..=2, 0usize..=2, 0usize..=2, 0usize..=1),
    ) {
        let (t_exp, d_exp, p_exp, m_exp) = seed_plan;
        let (t, d, p, m) = (1usize << t_exp, 1 << d_exp, 1 << p_exp, 1 << m_exp);
        prop_assume!(model.num_layers().is_multiple_of(p));
        let plan = ParallelConfig::builder()
            .tensor(t).data(d).pipeline(p).micro_batch(m)
            .global_batch(d * m * 4)
            .build()
            .unwrap();
        let estimator = Estimator::builder(ClusterSpec::aws_p4d(64)).build();
        let Ok(est) = estimator.estimate(&model, &plan) else { return Ok(()); };
        prop_assert!(est.iteration_time > TimeNs::ZERO);
        prop_assert!(est.utilization > 0.0 && est.utilization <= 1.0);
        prop_assert!(est.occupancy > 0.0 && est.occupancy <= 1.0);
        prop_assert!(est.busy.compute > TimeNs::ZERO);
        // Compute-stream busy time cannot exceed wall-clock × stages.
        let wall = est.iteration_time.as_secs_f64() * plan.pipeline() as f64;
        prop_assert!(est.busy.compute.as_secs_f64() + est.busy.tp_comm.as_secs_f64() <= wall * 1.0001);
    }

    /// The ground-truth measurement is deterministic and within a sane
    /// envelope of the prediction for any feasible point.
    #[test]
    fn measurement_envelope(model in arb_model(), plan in arb_plan(8)) {
        prop_assume!(model.num_layers().is_multiple_of(plan.pipeline()));
        let estimator = Estimator::builder(ClusterSpec::aws_p4d(64)).build();
        let noise = NoiseModel::new(NoiseConfig::default());
        let Ok(pred) = estimator.estimate(&model, &plan) else { return Ok(()); };
        let meas_a = estimator.measure_with(&model, &plan, &noise).unwrap();
        let meas_b = estimator.measure_with(&model, &plan, &noise).unwrap();
        prop_assert_eq!(meas_a.iteration_time, meas_b.iteration_time);
        let ratio = meas_a.iteration_time.as_secs_f64() / pred.iteration_time.as_secs_f64();
        prop_assert!((0.6..2.5).contains(&ratio), "measured/predicted ratio {}", ratio);
    }

    /// Doubling the data-parallel degree at fixed per-replica work never
    /// reduces tokens per iteration and never scales iteration time
    /// super-linearly.
    #[test]
    fn data_parallel_scaling_sane(model in arb_model(), d_exp in 0usize..=2) {
        let d = 1usize << d_exp;
        let mk = |dd: usize| {
            ParallelConfig::builder()
                .tensor(2).data(dd).micro_batch(1).global_batch(dd * 4)
                .build()
                .unwrap()
        };
        let estimator = Estimator::builder(ClusterSpec::aws_p4d(64)).build();
        let Ok(small) = estimator.estimate(&model, &mk(d)) else { return Ok(()); };
        let Ok(large) = estimator.estimate(&model, &mk(2 * d)) else { return Ok(()); };
        prop_assert_eq!(large.tokens_per_iteration, 2 * small.tokens_per_iteration);
        prop_assert!(
            large.iteration_time.as_secs_f64() <= 2.0 * small.iteration_time.as_secs_f64()
        );
    }
}
