//! Case study #2 in miniature: multi-tenant GPU cluster scheduling with
//! ElasticFlow-baseline vs vTrain-informed throughput profiles.
//!
//! ```sh
//! cargo run --release --example cluster_scheduling
//! ```

use vtrain::cluster::{
    build_catalog, generate_trace, simulate_cluster, ProfilePolicy, SchedulerConfig, TraceConfig,
};
use vtrain::prelude::*;

fn main() {
    // A 128-GPU shared cluster and two tenant model families.
    let total_gpus = 128;
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(total_gpus)).build();
    let models = vec![(presets::megatron("1.7B"), 64usize), (presets::megatron("3.6B"), 128usize)];
    let limits = SearchLimits { max_tensor: 8, max_data: 16, max_pipeline: 6, max_micro_batch: 4 };

    println!("profiling tenant models (both profile flavours)...");
    let catalog = build_catalog(&estimator, &models, &limits, 8);
    for name in catalog.names() {
        let entry = catalog.get(name).unwrap();
        println!(
            "  {name}: baseline rungs {:?} | vTrain rungs {:?}",
            entry.baseline.entries().iter().map(|&(g, _)| g).collect::<Vec<_>>(),
            entry.vtrain.entries().iter().map(|&(g, _)| g).collect::<Vec<_>>()
        );
    }

    println!(
        "\n{:<7} {:>16} {:>16} {:>14} {:>14}",
        "trace", "ratio(Elastic)", "ratio(vTrain)", "JCT gain", "makespan gain"
    );
    for seed in 1..=5u64 {
        let trace_cfg = TraceConfig {
            num_jobs: 32,
            seed,
            arrival_window: TimeNs::from_secs(40 * 3600),
            deadline_lambda: Some((0.5, 1.5)),
            iterations: (100, 600),
        };
        let jobs = generate_trace(&trace_cfg, &catalog);
        let base = simulate_cluster(
            &jobs,
            &catalog,
            &SchedulerConfig::new(total_gpus, ProfilePolicy::DataParallelOnly),
        );
        let vt = simulate_cluster(
            &jobs,
            &catalog,
            &SchedulerConfig::new(total_gpus, ProfilePolicy::VTrainOptimal),
        );
        let jct_gain = match (base.average_jct(&jobs), vt.average_jct(&jobs)) {
            (Some(b), Some(v)) => 100.0 * (1.0 - v.as_secs_f64() / b.as_secs_f64()),
            _ => 0.0,
        };
        let mk_gain =
            100.0 * (1.0 - vt.makespan.as_secs_f64() / base.makespan.as_secs_f64().max(1e-9));
        println!(
            "{:<7} {:>16.2} {:>16.2} {:>13.1}% {:>13.1}%",
            seed,
            base.deadline_satisfactory_ratio(),
            vt.deadline_satisfactory_ratio(),
            jct_gain,
            mk_gain
        );
    }
}
