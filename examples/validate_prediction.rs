//! Validation in miniature (paper Fig. 9): compare vTrain's predicted
//! iteration times against ground-truth emulated "measurements" over a grid
//! of single-node plans, reporting MAPE and R².
//!
//! ```sh
//! cargo run --release --example validate_prediction
//! ```

use vtrain::prelude::*;

fn main() {
    let cluster = ClusterSpec::aws_p4d(8);
    let estimator = Estimator::builder(cluster).build();
    let noise = NoiseModel::new(NoiseConfig::default());

    let mut pairs: Vec<(f64, f64)> = Vec::new();
    for model in presets::single_node_family().into_iter().take(12) {
        for (t, d, p) in [(1, 1, 1), (2, 2, 2), (4, 2, 1), (8, 1, 1), (2, 4, 1), (1, 2, 4)] {
            if model.num_layers() % p != 0 {
                continue;
            }
            let Ok(plan) = ParallelConfig::builder()
                .tensor(t)
                .data(d)
                .pipeline(p)
                .micro_batch(1)
                .global_batch(16)
                .build()
            else {
                continue;
            };
            let (Ok(pred), Ok(meas)) =
                (estimator.estimate(&model, &plan), estimator.measure_with(&model, &plan, &noise))
            else {
                continue;
            };
            pairs.push((pred.iteration_time.as_secs_f64(), meas.iteration_time.as_secs_f64()));
        }
    }

    let mape =
        100.0 * pairs.iter().map(|(p, m)| ((p - m) / m).abs()).sum::<f64>() / pairs.len() as f64;
    let mean_m = pairs.iter().map(|&(_, m)| m).sum::<f64>() / pairs.len() as f64;
    let ss_res: f64 = pairs.iter().map(|(p, m)| (m - p).powi(2)).sum();
    let ss_tot: f64 = pairs.iter().map(|(_, m)| (m - mean_m).powi(2)).sum();
    let r2 = 1.0 - ss_res / ss_tot;

    println!("validation points: {}", pairs.len());
    println!("MAPE:              {mape:.2}%   (paper single-node: 8.37%)");
    println!("R²:                {r2:.4}  (paper single-node: 0.9896)");
    for (p, m) in pairs.iter().take(8) {
        println!("  predicted {p:.4}s   measured {m:.4}s");
    }
}
