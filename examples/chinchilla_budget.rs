//! Case study #3 in miniature: what is the largest Chinchilla-optimal model
//! trainable in N days on M GPUs, once *effective* utilization is accounted
//! for?
//!
//! ```sh
//! cargo run --release --example chinchilla_budget
//! ```

use vtrain::prelude::*;
use vtrain::scaling::{compute_optimal_search, CandidateSpec};

fn main() {
    let gpus = 256;
    let days_budget = 30.0;
    let cluster = ClusterSpec::aws_p4d(gpus);
    let law = ChinchillaLaw::default();

    // Naive sizing from peak FLOPS (the trap §V-C warns about).
    let naive_c = ChinchillaLaw::gpu_budget(gpus, days_budget, cluster.gpu.peak_fp16_flops);
    let naive = law.optimal_point(naive_c);
    println!(
        "naive budget  C = {:.2e} FLOPs  ->  N = {:.2}B params, T = {:.0}B tokens",
        naive.compute,
        naive.params / 1e9,
        naive.tokens / 1e9
    );

    // Realistic sizing: simulate each candidate's best plan.
    let estimator = Estimator::builder(cluster).build();
    let candidates = [
        CandidateSpec { hidden: 4096, layers: 36, heads: 32 },
        CandidateSpec { hidden: 5120, layers: 40, heads: 40 },
        CandidateSpec { hidden: 6144, layers: 40, heads: 48 },
        CandidateSpec { hidden: 6144, layers: 48, heads: 48 },
        CandidateSpec { hidden: 8192, layers: 48, heads: 64 },
    ];
    let limits = SearchLimits { max_tensor: 8, max_data: 16, max_pipeline: 12, max_micro_batch: 4 };
    let (outcomes, best) =
        compute_optimal_search(&estimator, &law, &candidates, 512, days_budget, &limits, 8);

    println!(
        "\n{:>6} {:>4} {:>9} {:>10} {:>20} {:>7} {:>8}",
        "h", "L", "params", "tokens", "best (t,d,p,m)", "util", "days"
    );
    for o in &outcomes {
        println!(
            "{:>6} {:>4} {:>8.2}B {:>9.0}B {:>20} {:>6.1}% {:>8.1}",
            o.spec.hidden,
            o.spec.layers,
            o.params / 1e9,
            o.tokens / 1e9,
            format!(
                "({}, {}, {}, {})",
                o.best_plan.tensor(),
                o.best_plan.data(),
                o.best_plan.pipeline(),
                o.best_plan.micro_batch()
            ),
            o.utilization * 100.0,
            o.training_days
        );
    }
    match best {
        Some(b) => println!(
            "\ncompute-optimal within {days_budget} days: {:.2}B parameters ({:.0}B tokens)",
            b.params / 1e9,
            b.tokens / 1e9
        ),
        None => println!("\nno candidate fits the {days_budget}-day budget"),
    }
}
