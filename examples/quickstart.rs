//! Quickstart: predict the single-iteration training time, utilization, and
//! end-to-end cost of one LLM training plan.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use vtrain::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the training platform: 512 A100 GPUs, 8 per node,
    //    NVSwitch inside nodes, 4×200 Gb/s InfiniBand between them.
    let cluster = ClusterSpec::aws_p4d(512);

    // 2. Pick a model (the 18.4B-parameter member of the Megatron scaling
    //    family the paper validates against) and a 3D-parallel plan.
    let model = presets::megatron("18.4B");
    let plan = ParallelConfig::builder()
        .tensor(8) // intra-node tensor parallelism
        .data(8) // data-parallel replicas
        .pipeline(8) // pipeline stages
        .micro_batch(2)
        .global_batch(512)
        .schedule(PipelineSchedule::OneFOneB)
        .build()?;

    // 3. Simulate one training iteration.
    let estimator = Estimator::builder(cluster).build();
    let estimate = estimator.estimate(&model, &plan)?;

    println!("model:            {model}");
    println!("plan:             {plan}");
    println!("GPUs:             {}", estimate.num_gpus);
    println!("iteration time:   {}", estimate.iteration_time);
    println!("GPU utilization:  {:.1}%", estimate.utilization * 100.0);
    println!("pipeline bubble:  {:.1}%", (1.0 - estimate.occupancy) * 100.0);
    println!(
        "busy breakdown:   compute {} | TP {} | DP {} | PP {}",
        estimate.busy.compute, estimate.busy.tp_comm, estimate.busy.dp_comm, estimate.busy.pp_comm
    );

    // 4. Project end-to-end training over 300B tokens at AWS p4d pricing.
    let cost = CostModel::default();
    let projection = TrainingProjection::project(
        estimate.iteration_time,
        estimate.tokens_per_iteration,
        300_000_000_000,
        estimate.num_gpus,
        &cost,
    );
    println!("iterations:       {}", projection.iterations);
    println!("training time:    {:.1} days", projection.days());
    println!("training cost:    ${:.2}M", projection.total_dollars / 1e6);
    Ok(())
}
