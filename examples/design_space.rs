//! Case study #1 in miniature: explore the `(t, d, p, m)` design space of a
//! model and report the fastest, cheapest, and Pareto-optimal plans.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use vtrain::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::aws_p4d(512);
    let model = presets::megatron("18.4B");
    let global_batch = 512;

    // Exhaustive sweep, parallelized across CPU cores (§III-F).
    let limits = SearchLimits { max_tensor: 8, max_data: 32, max_pipeline: 10, max_micro_batch: 8 };
    let outcome = Sweep::over(&model, &cluster)
        .batch(global_batch)
        .schedule(PipelineSchedule::OneFOneB)
        .limits(limits)
        .run()
        .into_outcome();
    let points = outcome.points;
    println!(
        "evaluated {} feasible design points in {:.1}s ({} candidates pruned, {:.0} points/s, \
         profile-cache hit-rate {:.1}%)\n",
        points.len(),
        outcome.stats.wall_s,
        outcome.stats.pruned,
        outcome.stats.points_per_sec(),
        outcome.stats.cache_hit_rate() * 100.0
    );

    // The fastest plan under a few GPU budgets.
    println!("{:<8} {:>22} {:>12} {:>8}", "budget", "best (t,d,p,m)", "iter time", "util");
    for budget in [64usize, 128, 256, 512] {
        if let Some(best) = search::fastest_within_gpu_budget(&points, budget) {
            println!(
                "{:<8} {:>22} {:>12} {:>7.1}%",
                budget,
                format!(
                    "({}, {}, {}, {})",
                    best.plan.tensor(),
                    best.plan.data(),
                    best.plan.pipeline(),
                    best.plan.micro_batch()
                ),
                best.estimate.iteration_time.to_string(),
                best.estimate.utilization * 100.0
            );
        }
    }

    // The most cost-effective plan for a 300B-token run.
    let cost = CostModel::default();
    let (point, projection) = search::most_cost_effective(&points, 300_000_000_000, &cost, 512)
        .expect("at least one feasible plan");
    println!(
        "\ncheapest end-to-end: {} -> {:.1} days, ${:.2}M ({} GPUs)",
        point.plan,
        projection.days(),
        projection.total_dollars / 1e6,
        point.estimate.num_gpus
    );

    // The (iteration time × GPU count) Pareto frontier.
    let front = search::pareto_front(&points);
    println!("\nPareto frontier ({} points):", front.len());
    for p in front.iter().take(10) {
        println!(
            "  {:>4} GPUs  {:>12}  util {:>5.1}%  {}",
            p.estimate.num_gpus,
            p.estimate.iteration_time.to_string(),
            p.estimate.utilization * 100.0,
            p.plan
        );
    }
    Ok(())
}
