//! Vendored minimal stand-in for `rand` (offline build environment).
//!
//! Implements the subset this workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] over integer and
//! float ranges. The generator is xoshiro256**, seeded through splitmix64 —
//! deterministic across platforms and good enough for synthetic workload
//! traces (this workspace never needs cryptographic randomness).

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// High-level sampling helpers, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // i128 arithmetic is exact for every <= 64-bit integer type,
                // signed or unsigned (a negative start must not sign-extend
                // into an unsigned span).
                let span = ((self.end as i128) - (self.start as i128)) as u64;
                ((self.start as i128) + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i128) - (lo as i128)) + 1;
                if span > u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                ((lo as i128) + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded via
    /// splitmix64. Deterministic for a given seed on every platform.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..=u64::MAX - 1), b.gen_range(0u64..=u64::MAX - 1));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1 << 60)).collect();
        let mut a2 = StdRng::seed_from_u64(42);
        let orig: Vec<u64> = (0..8).map(|_| a2.gen_range(0u64..1 << 60)).collect();
        assert_ne!(same, orig);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&y));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn signed_and_extreme_ranges_do_not_overflow() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let a = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&a));
            let b = rng.gen_range(-128i8..127);
            assert!((-128..127).contains(&b));
            let c = rng.gen_range(i64::MIN..i64::MAX);
            assert!(c < i64::MAX);
            let _full: u64 = rng.gen_range(0u64..=u64::MAX);
            let _full_i: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        }
    }

    #[test]
    fn float_samples_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 0.1 && hi > 0.9, "poor coverage: [{lo}, {hi}]");
    }
}
