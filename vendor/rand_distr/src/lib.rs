//! Vendored minimal stand-in for `rand_distr` (offline build environment).
//!
//! Implements the [`LogNormal`] distribution this workspace's trace
//! generator uses, over the vendored `rand` crate's [`RngCore`].

use rand::RngCore;

/// Distributions that can be sampled with any RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error constructing a distribution from invalid parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

/// The log-normal distribution `exp(N(mu, sigma^2))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal distribution from the underlying normal's mean
    /// and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns an error if `sigma` is negative or either parameter is
    /// non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(Error);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; u is kept away from 0 so ln() stays finite.
        let u = loop {
            let u = rng.next_f64();
            if u > f64::EPSILON {
                break u;
            }
        };
        let v = rng.next_f64();
        let normal = (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos();
        (self.mu + self.sigma * normal).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_invalid_parameters() {
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, 1.2).is_ok());
    }

    #[test]
    fn samples_are_positive_and_heavy_tailed() {
        let dist = LogNormal::new(0.0, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..20_000).map(|_| dist.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0 && x.is_finite()));
        // Median of exp(N(0, s)) is 1; the mean exceeds it (heavy tail).
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let median = sorted[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((median - 1.0).abs() < 0.1, "median {median}");
        assert!(mean > median, "log-normal mean should exceed the median");
    }
}
