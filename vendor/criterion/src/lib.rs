//! Vendored minimal stand-in for `criterion` (offline build environment).
//!
//! Implements the harness surface this workspace's `harness = false`
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Measurement is a simple
//! warm-up-then-median-of-samples timer printing one line per benchmark —
//! no plots, no statistics beyond median and spread.

use std::time::{Duration, Instant};

/// Opaque wrapper defeating constant-propagation of benchmark inputs.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
}

impl Bencher {
    /// Runs `body` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm up and size the batch so one sample takes ~10 ms.
        let warmup_start = Instant::now();
        black_box(body());
        let once = warmup_start.elapsed().max(Duration::from_nanos(20));
        let batch =
            (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;

        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(body());
            }
            self.measured.push(start.elapsed() / batch as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.measured.is_empty() {
            println!("{label:<40} (no measurement)");
            return;
        }
        let mut sorted = self.measured.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let lo = sorted[0];
        let hi = sorted[sorted.len() - 1];
        println!(
            "{label:<40} time: [{} {} {}]",
            format_duration(lo),
            format_duration(median),
            format_duration(hi)
        );
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.4} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.4} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.4} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Applies command-line configuration (accepted for API compatibility;
    /// the vendored harness has no options and ignores filters).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { samples: self.sample_size, measured: Vec::new() };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher { samples: self.sample_size, measured: Vec::new() };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher { samples: self.sample_size, measured: Vec::new() };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3).bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.sample_size(2).bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| black_box(0)));
        group.finish();
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_duration(Duration::from_nanos(5)), "5 ns");
        assert!(format_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(5)).ends_with(" s"));
    }
}
