//! Vendored minimal stand-in for `serde`, built for offline workspaces.
//!
//! The container this repository builds in has no crates.io access, so the
//! workspace vendors a self-consistent subset of the serde data model: a
//! JSON-shaped [`Value`] tree, [`Serialize`]/[`Deserialize`] traits that
//! convert through it, and derive macros (re-exported from `serde_derive`)
//! supporting the attribute subset the workspace uses (`#[serde(default)]`
//! and `#[serde(untagged)]`). The companion `serde_json` vendored crate
//! supplies the text format.
//!
//! This is intentionally *not* API-compatible with the real serde beyond
//! the surface this workspace exercises; swap in the real crates when the
//! build environment has registry access.

pub use serde_derive::{Deserialize, Serialize};

mod value;

pub use value::Value;

/// Error produced by (de)serialization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error carrying `msg`.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the generic value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the generic value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Hook for a field that is absent from its enclosing object.
    ///
    /// Mirrors serde's special case: `Option<T>` fields default to `None`
    /// when missing; everything else is an error unless `#[serde(default)]`
    /// is present.
    fn from_missing_field(struct_name: &str, field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}` in `{struct_name}`")))
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for primitives and std containers.
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| type_error("unsigned integer", v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| type_error("integer", v))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| type_error("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| type_error("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(type_error("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(type_error("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(type_error("single-character string", other)),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            other => Err(type_error("null", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing_field(_struct_name: &str, _field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(type_error("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let Value::Array(items) = v else {
                    return Err(type_error("tuple array", v));
                };
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected a {expected}-element array, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Encodes map entries: string-keyed maps become objects; other key types
/// become an array of `[key, value]` pairs. Entries are sorted by key so
/// hash-map iteration order never leaks into the output.
fn map_to_value(pairs: Vec<(Value, Value)>) -> Value {
    let mut pairs = pairs;
    pairs.sort_by(|a, b| value::value_cmp(&a.0, &b.0));
    if pairs.iter().all(|(k, _)| matches!(k, Value::String(_))) {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    let Value::String(k) = k else { unreachable!() };
                    (k, v)
                })
                .collect(),
        )
    } else {
        Value::Array(pairs.into_iter().map(|(k, v)| Value::Array(vec![k, v])).collect())
    }
}

/// Decodes either map encoding produced by [`map_to_value`].
fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Object(entries) => entries
            .iter()
            .map(|(k, val)| {
                let key = K::from_value(&Value::String(k.clone()))?;
                Ok((key, V::from_value(val)?))
            })
            .collect(),
        Value::Array(items) => items
            .iter()
            .map(|item| {
                let Value::Array(pair) = item else {
                    return Err(type_error("[key, value] pair", item));
                };
                if pair.len() != 2 {
                    return Err(Error::custom("map pair must have two elements"));
                }
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect(),
        other => Err(type_error("map (object or pair array)", other)),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter().map(|(k, v)| (k.to_value(), v.to_value())).collect())
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter().map(|(k, v)| (k.to_value(), v.to_value())).collect())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(map_from_value::<K, V>(v)?.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

fn type_error(expected: &str, found: &Value) -> Error {
    Error::custom(format!("expected {expected}, found {}", found.kind()))
}

// ---------------------------------------------------------------------------
// Support functions the derive macros expand to.
// ---------------------------------------------------------------------------

/// Internal support for `serde_derive` expansions. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Looks up `field` in an object value; missing fields defer to
    /// [`Deserialize::from_missing_field`] (so `Option` fields read `None`).
    pub fn get_field<T: Deserialize>(
        v: &Value,
        struct_name: &str,
        field: &str,
    ) -> Result<T, Error> {
        let Value::Object(_) = v else {
            return Err(Error::custom(format!(
                "expected object for `{struct_name}`, found {}",
                v.kind()
            )));
        };
        match v.get(field) {
            Some(inner) => T::from_value(inner)
                .map_err(|e| Error::custom(format!("field `{struct_name}.{field}`: {e}"))),
            None => T::from_missing_field(struct_name, field),
        }
    }

    /// Like [`get_field`] but `#[serde(default)]`: missing fields take
    /// `T::default()`.
    pub fn get_field_or_default<T: Deserialize + Default>(
        v: &Value,
        struct_name: &str,
        field: &str,
    ) -> Result<T, Error> {
        let Value::Object(_) = v else {
            return Err(Error::custom(format!(
                "expected object for `{struct_name}`, found {}",
                v.kind()
            )));
        };
        match v.get(field) {
            Some(inner) => T::from_value(inner)
                .map_err(|e| Error::custom(format!("field `{struct_name}.{field}`: {e}"))),
            None => Ok(T::default()),
        }
    }

    /// Element `idx` of a tuple-struct array encoding.
    pub fn get_elem<T: Deserialize>(
        v: &Value,
        type_name: &str,
        idx: usize,
        arity: usize,
    ) -> Result<T, Error> {
        let Value::Array(items) = v else {
            return Err(Error::custom(format!(
                "expected a {arity}-element array for `{type_name}`, found {}",
                v.kind()
            )));
        };
        if items.len() != arity {
            return Err(Error::custom(format!(
                "expected a {arity}-element array for `{type_name}`, found {} elements",
                items.len()
            )));
        }
        T::from_value(&items[idx])
    }

    /// The single `{ "Variant": payload }` entry of an externally tagged
    /// enum encoding, or the bare string of a unit variant.
    pub fn enum_tag<'v>(
        v: &'v Value,
        enum_name: &str,
    ) -> Result<(&'v str, Option<&'v Value>), Error> {
        match v {
            Value::String(s) => Ok((s.as_str(), None)),
            Value::Object(entries) if entries.len() == 1 => {
                Ok((entries[0].0.as_str(), Some(&entries[0].1)))
            }
            other => Err(Error::custom(format!(
                "expected enum `{enum_name}` (string or single-key object), found {}",
                other.kind()
            ))),
        }
    }

    /// `#[serde(deny_unknown_fields)]` support: errors on the first object
    /// key that is not in `known`.
    pub fn reject_unknown(v: &Value, known: &[&str], type_label: &str) -> Result<(), Error> {
        let Value::Object(entries) = v else {
            return Err(Error::custom(format!(
                "expected object for `{type_label}`, found {}",
                v.kind()
            )));
        };
        for (key, _) in entries {
            if !known.contains(&key.as_str()) {
                return Err(Error::custom(format!(
                    "unknown field `{key}` in `{type_label}` (expected one of: {})",
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }

    /// Error for an unrecognized variant tag.
    pub fn unknown_variant(enum_name: &str, tag: &str) -> Error {
        Error::custom(format!("unknown variant `{tag}` of enum `{enum_name}`"))
    }

    /// Error when no untagged variant matched, carrying each variant's
    /// rejection reason so typos surface instead of a generic mismatch.
    pub fn untagged_mismatch(enum_name: &str, attempts: &[Error]) -> Error {
        let base = format!("data did not match any variant of untagged enum `{enum_name}`");
        if attempts.is_empty() {
            return Error::custom(base);
        }
        let reasons: Vec<String> = attempts.iter().map(Error::to_string).collect();
        Error::custom(format!("{base} ({})", reasons.join("; ")))
    }
}
