//! The generic JSON-shaped value tree all (de)serialization flows through.

/// A dynamically typed value: the intermediate representation between Rust
/// types and the `serde_json` text format.
///
/// Objects preserve insertion order (like `serde_json`'s `preserve_order`
/// feature) so serialized output is stable and human-diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (JSON number without sign or fraction).
    U64(u64),
    /// Signed integer (JSON number with a leading minus).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

/// A total order over values (kind rank, then content), used to sort map
/// entries deterministically.
pub(crate) fn value_cmp(a: &Value, b: &Value) -> std::cmp::Ordering {
    use std::cmp::Ordering;

    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::U64(_) | Value::I64(_) | Value::F64(_) => 2,
            Value::String(_) => 3,
            Value::Array(_) => 4,
            Value::Object(_) => 5,
        }
    }

    match (a, b) {
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::String(x), Value::String(y)) => x.cmp(y),
        (Value::Array(x), Value::Array(y)) => {
            for (xi, yi) in x.iter().zip(y) {
                let ord = value_cmp(xi, yi);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            for ((kx, vx), (ky, vy)) in x.iter().zip(y) {
                let ord = kx.cmp(ky).then_with(|| value_cmp(vx, vy));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            x.len().cmp(&y.len())
        }
        _ if rank(a) == 2 && rank(b) == 2 => {
            let (fa, fb) = (a.as_f64().unwrap_or(f64::NAN), b.as_f64().unwrap_or(f64::NAN));
            fa.total_cmp(&fb)
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

impl Value {
    /// Short human-readable name of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Looks up `key` if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view as `u64`, accepting any non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(n) => Some(n),
            Value::I64(n) => u64::try_from(n).ok(),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            _ => None,
        }
    }

    /// Numeric view as `i64`, accepting any in-range integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(n) => Some(n),
            Value::U64(n) => i64::try_from(n).ok(),
            Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Numeric view as `f64`, accepting any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::U64(n) => Some(n as f64),
            Value::I64(n) => Some(n as f64),
            Value::F64(f) => Some(f),
            _ => None,
        }
    }
}
