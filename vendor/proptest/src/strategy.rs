//! Value-generation strategies and their combinators.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::SampleRng;

/// A recipe for generating values of one type.
///
/// `generate` returns `None` when the drawn raw value is rejected (e.g. by
/// [`Strategy::prop_filter_map`]); the runner redraws bounded-many times.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value, or `None` if this draw was rejected.
    fn generate(&self, rng: &mut SampleRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; `whence` labels the filter in
    /// diagnostics.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }

    /// Simultaneously maps and filters: draws where `f` returns `None` are
    /// rejected and redrawn.
    fn prop_filter_map<O, F: Fn(Self::Value) -> Option<O>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, whence, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SampleRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SampleRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.pred)(v))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Copy, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut SampleRng) -> Option<O> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// A strategy always yielding clones of one value (mirrors
/// `proptest::strategy::Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SampleRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SampleRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SampleRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut SampleRng) -> Option<f32> {
        Some(rng.gen_range(self.start as f64..self.end as f64) as f32)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut SampleRng) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut SampleRng) -> Option<S::Value> {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut SampleRng) -> Option<S::Value> {
        (**self).generate(rng)
    }
}
