//! The case-driving runner behind the [`proptest!`](crate::proptest) macro.

use rand::SeedableRng;

use crate::strategy::Strategy;
use crate::SampleRng;

/// Configuration of one property test (mirrors `ProptestConfig`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required.
    pub cases: u32,
    /// Give up after this many strategy rejections across the whole run.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256, max_global_rejects: 65_536 }
    }
}

/// Why one test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; it does not count.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected assumption.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type property-test bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives a strategy through the configured number of cases.
pub struct TestRunner {
    config: Config,
    rng: SampleRng,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the named test with a deterministic seed
    /// derived from the test's full path, so failures reproduce run-to-run.
    pub fn new(config: Config, name: &'static str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis.
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRunner { config, rng: SampleRng::seed_from_u64(seed), name }
    }

    /// Runs `test` against `cases` generated values.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first assertion
    /// failure, or if the strategy rejects too many draws.
    pub fn run<S: Strategy, F>(&mut self, strategy: &S, mut test: F)
    where
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut passed = 0u32;
        let mut rejects = 0u32;
        while passed < self.config.cases {
            let Some(value) = strategy.generate(&mut self.rng) else {
                rejects += 1;
                if rejects > self.config.max_global_rejects {
                    panic!(
                        "{}: strategy rejected {} draws before reaching {} cases",
                        self.name, rejects, self.config.cases
                    );
                }
                continue;
            };
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > self.config.max_global_rejects {
                        panic!(
                            "{}: assumptions rejected {} cases before reaching {}",
                            self.name, rejects, self.config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("{}: property failed after {passed} passing cases: {msg}", self.name);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples_work(x in 1usize..10, pair in (0u64..5, 0.0f64..1.0)) {
            let (a, b) = pair;
            prop_assert!((1..10).contains(&x));
            prop_assert!(a < 5);
            prop_assert!((0.0..1.0).contains(&b), "b = {}", b);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn combinators_compose(v in (1usize..4).prop_map(|x| x * 2)
            .prop_filter_map("keep sixes", |x| (x != 6).then_some(x)))
        {
            prop_assert!(v == 2 || v == 4);
            prop_assert_ne!(v, 6);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        let mut runner = super::TestRunner::new(
            super::Config { cases: 4, ..Default::default() },
            "failures_panic",
        );
        runner.run(&(0usize..10,), |(_x,)| Err(super::TestCaseError::fail("intentional")));
    }
}
