//! Vendored minimal stand-in for `proptest` (offline build environment).
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over `name in strategy` arguments, range and tuple
//! strategies, `prop_map` / `prop_filter` / `prop_filter_map` combinators,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, and
//! [`test_runner::Config`] (`ProptestConfig`) with a `cases` knob.
//!
//! No shrinking: a failing case reports the failure message directly. Each
//! test function runs a fixed deterministic seed so failures reproduce.

pub mod strategy;
pub mod test_runner;

pub use strategy::Strategy;

/// Strategies over `bool`.
pub mod bool {
    use rand::RngCore;

    use super::strategy::Strategy;
    use super::SampleRng;

    /// The strategy generating both booleans uniformly.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `bool` strategy (mirrors `proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut SampleRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

/// Strategies over collections (mirrors `proptest::collection`).
pub mod collection {
    use rand::Rng;

    use super::strategy::Strategy;
    use super::SampleRng;

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (mirrors `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`](vec()).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SampleRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The RNG strategies draw from.
pub type SampleRng = rand::rngs::StdRng;

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn holds(x in 0usize..10, y in 0.0f64..1.0) { prop_assert!(x as f64 + y < 11.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __runner = $crate::test_runner::TestRunner::new(
                    __config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let __strategy = ($($strat,)+);
                __runner.run(&__strategy, |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts a condition inside a property test, failing the case with the
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}` ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both {:?})",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}
