//! Vendored minimal JSON reader/writer over the vendored `serde` crate.
//!
//! Provides the `to_string` / `to_string_pretty` / `from_str` entry points
//! this workspace uses. See the vendored `serde` crate for why this exists
//! (offline build environment).

pub use serde::Value;

/// JSON (de)serialization error (re-exported from the vendored serde).
pub type Error = serde::Error;

/// Serializes `value` to compact JSON text.
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON text (two-space indent).
///
/// # Errors
///
/// Infallible for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns an error describing the first syntax problem or type mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    T::from_value(&value)
}

/// Parses JSON text into the generic [`Value`] tree.
///
/// # Errors
///
/// Returns an error describing the first syntax problem.
pub fn value_from_str(s: &str) -> Result<Value, Error> {
    parse_value_complete(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // Match serde_json: non-finite floats serialize as null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: &str) -> Error {
        // 1-based line/column of the error position, so user-facing
        // tooling can point at the offending spot in the input file.
        // Columns count characters, not bytes: UTF-8 continuation bytes
        // (0b10xxxxxx) do not advance the column.
        let mut line = 1usize;
        let mut column = 1usize;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else if b & 0xC0 != 0x80 {
                column += 1;
            }
        }
        Error::custom(format!("{msg} at line {line} column {column}"))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", expected as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.error(&format!("unexpected character `{}`", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.parse_hex4()?;
                                    if (0xDC00..0xE000).contains(&low) {
                                        let combined =
                                            0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(combined)
                                    } else {
                                        None
                                    }
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.error("invalid \\u escape")),
                            }
                        }
                        _ => return Err(self.error("invalid escape character")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by construction");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(Value::F64).map_err(|_| self.error("invalid number"))
        } else if negative {
            text.parse::<i64>().map(Value::I64).map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<u64>().map(Value::U64).map_err(|_| self.error("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_nested_objects() {
        let v = value_from_str(r#"{"a": {"b": [1.5, -2, "x\n"]}, "c": null}"#).unwrap();
        let a = v.get("a").unwrap();
        let Value::Array(items) = a.get("b").unwrap() else { panic!() };
        assert_eq!(items[0], Value::F64(1.5));
        assert_eq!(items[1], Value::I64(-2));
        assert_eq!(items[2], Value::String("x\n".into()));
        assert_eq!(v.get("c"), Some(&Value::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(value_from_str("{").is_err());
        assert!(value_from_str("[1,]").is_err());
        assert!(value_from_str("01x").is_err());
        assert!(value_from_str("\"unterminated").is_err());
    }

    #[test]
    fn errors_carry_character_accurate_line_and_column() {
        let err = value_from_str("{\n  \"a\": 1,\n  \"b\": !\n}").unwrap_err();
        assert!(err.to_string().contains("line 3 column 8"), "{err}");
        // Columns count characters: the two-byte `é`s must each advance
        // the column once, not twice.
        let err = value_from_str("{\"éé\": !}").unwrap_err();
        assert!(err.to_string().contains("line 1 column 8"), "{err}");
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_surrogates_error() {
        let v = value_from_str(r#""😀""#).unwrap();
        assert_eq!(v, Value::String("😀".into()));
        let v = value_from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::String("😀".into()), "escaped surrogate pair decodes");
        assert!(value_from_str(r#""\ud800\u0041""#).is_err(), "non-low second escape rejected");
        // A high surrogate followed by anything but a low-surrogate escape
        // must be rejected, not silently combined into a garbage code
        // point.
        assert!(value_from_str(r#""\ud800A""#).is_err());
        assert!(value_from_str(r#""\ud800x""#).is_err());
        assert!(value_from_str(r#""\udc00""#).is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_reparses() {
        let v =
            Value::Object(vec![("k".to_owned(), Value::Array(vec![Value::U64(1), Value::U64(2)]))]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\": [\n    1,\n    2\n  ]"));
        assert_eq!(value_from_str(&pretty).unwrap(), v);
    }
}
