//! Vendored minimal stand-in for `parking_lot` (offline build environment).
//!
//! Wraps `std::sync::Mutex` with `parking_lot`'s panic-free, non-poisoning
//! API surface that this workspace uses.

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available. Unlike `std`, a
    /// panicked previous holder does not poison the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns the guarded value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(value) => value,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
