//! Vendored minimal stand-in for `crossbeam`'s scoped threads (offline
//! build environment), implemented over `std::thread::scope`.
//!
//! Divergence from the real crate: a panicking child propagates its panic
//! when the scope joins (std semantics) instead of surfacing through the
//! returned `Result`, and the closure passed to [`Scope::spawn`] receives a
//! zero-sized token rather than a re-spawnable `&Scope` (this workspace
//! never spawns from inside workers).

/// Token passed to spawned closures in place of crossbeam's nested scope.
#[derive(Clone, Copy, Debug)]
pub struct ScopeToken;

static TOKEN: ScopeToken = ScopeToken;

/// A scope within which spawned threads are guaranteed to be joined.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's argument is a placeholder for
    /// crossbeam's nested-spawn handle.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&ScopeToken) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&TOKEN))
    }
}

/// Runs `f` with a thread scope; all spawned threads join before this
/// returns.
///
/// # Errors
///
/// Never returns `Err` (a panicking child re-raises on join instead); the
/// `Result` mirrors crossbeam's signature so `.expect(...)` call sites
/// compile unchanged.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn workers_run_and_join() {
        let counter = AtomicUsize::new(0);
        let result = super::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            "done"
        })
        .unwrap();
        assert_eq!(result, "done");
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }
}
