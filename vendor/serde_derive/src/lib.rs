//! Vendored minimal `Serialize`/`Deserialize` derive macros.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote`: the build
//! environment is offline). Supports the shape subset this workspace uses:
//! non-generic structs (named, tuple, unit) and enums (unit, newtype,
//! tuple, struct variants), with the `#[serde(default)]` field attribute
//! and the `#[serde(untagged)]` / `#[serde(deny_unknown_fields)]`
//! container attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Debug, Default)]
struct SerdeAttrs {
    default: bool,
    untagged: bool,
    deny_unknown_fields: bool,
}

#[derive(Clone, Debug)]
struct Field {
    name: String,
    attrs: SerdeAttrs,
}

#[derive(Clone, Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Clone, Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Clone, Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    attrs: SerdeAttrs,
    shape: Shape,
}

/// Derives the vendored `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes leading `#[...]` attribute groups, folding any `#[serde(...)]`
/// flags into `attrs`, and returns the index of the first non-attribute
/// token.
fn skip_attrs(tokens: &[TokenTree], mut i: usize, attrs: &mut SerdeAttrs) -> usize {
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else { break };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else { break };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if let Some(TokenTree::Ident(id)) = inner.first() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.get(1) {
                    for t in args.stream() {
                        if let TokenTree::Ident(flag) = t {
                            match flag.to_string().as_str() {
                                "default" => attrs.default = true,
                                "untagged" => attrs.untagged = true,
                                "deny_unknown_fields" => attrs.deny_unknown_fields = true,
                                other => {
                                    panic!("vendored serde_derive: unsupported #[serde({other})]")
                                }
                            }
                        }
                    }
                }
            }
        }
        i += 2;
    }
    i
}

/// Splits a token slice on top-level commas, tracking `<...>` depth so
/// commas inside generic arguments don't split.
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(std::mem::take(&mut cur));
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parses one `name: Type` chunk of a named-field body.
fn parse_named_field(chunk: &[TokenTree]) -> Field {
    let mut attrs = SerdeAttrs::default();
    let mut i = skip_attrs(chunk, 0, &mut attrs);
    // Skip visibility: `pub` optionally followed by `(...)`.
    if let Some(TokenTree::Ident(id)) = chunk.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = chunk.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    let TokenTree::Ident(name) = &chunk[i] else {
        panic!("vendored serde_derive: expected field name, got {:?}", chunk[i]);
    };
    Field { name: name.to_string(), attrs }
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level(&tokens)
        .iter()
        .filter(|c| !c.is_empty())
        .map(|c| parse_named_field(c))
        .collect()
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let mut attrs = SerdeAttrs::default();
    let i = skip_attrs(chunk, 0, &mut attrs);
    let TokenTree::Ident(name) = &chunk[i] else {
        panic!("vendored serde_derive: expected variant name, got {:?}", chunk[i]);
    };
    let kind = match chunk.get(i + 1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            VariantKind::Struct(parse_named_fields(g))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let tokens: Vec<TokenTree> = g.stream().into_iter().collect();
            let arity = split_top_level(&tokens).iter().filter(|c| !c.is_empty()).count();
            if arity == 1 {
                VariantKind::Newtype
            } else {
                VariantKind::Tuple(arity)
            }
        }
        _ => VariantKind::Unit,
    };
    Variant { name: name.to_string(), kind }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut attrs = SerdeAttrs::default();
    let mut i = skip_attrs(&tokens, 0, &mut attrs);

    // Skip visibility.
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }

    let TokenTree::Ident(kw) = &tokens[i] else {
        panic!("vendored serde_derive: expected `struct` or `enum`, got {:?}", tokens[i]);
    };
    let kw = kw.to_string();
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("vendored serde_derive: expected item name, got {:?}", tokens[i]);
    };
    let name = name.to_string();
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive: generic type `{name}` is not supported");
        }
    }

    let shape = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let arity = split_top_level(&inner).iter().filter(|c| !c.is_empty()).count();
                Shape::TupleStruct(arity)
            }
            _ => Shape::UnitStruct,
        },
        "enum" => {
            let Some(TokenTree::Group(g)) = tokens.get(i) else {
                panic!("vendored serde_derive: enum `{name}` has no body");
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let variants = split_top_level(&inner)
                .iter()
                .filter(|c| !c.is_empty())
                .map(|c| parse_variant(c))
                .collect();
            Shape::Enum(variants)
        }
        other => panic!("vendored serde_derive: unsupported item kind `{other}`"),
    };

    Item { name, attrs, shape }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// `Object(...)` expression serializing named fields from expressions like
/// `&self.f` or bound pattern names.
fn ser_named_fields(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut s = String::from(
        "{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new(); ",
    );
    for f in fields {
        s.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{0}\"), \
             ::serde::Serialize::to_value({1})));",
            f.name,
            access(&f.name)
        ));
    }
    s.push_str(" ::serde::Value::Object(__fields) }");
    s
}

fn de_named_fields(
    fields: &[Field],
    type_path: &str,
    type_label: &str,
    source: &str,
    deny_unknown: bool,
) -> String {
    let mut s = String::from("{ ");
    if deny_unknown {
        let known: Vec<String> = fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
        s.push_str(&format!(
            "::serde::__private::reject_unknown({source}, &[{}], \"{type_label}\")?; ",
            known.join(", ")
        ));
    }
    s.push_str(&format!("{type_path} {{ "));
    for f in fields {
        let helper = if f.attrs.default { "get_field_or_default" } else { "get_field" };
        s.push_str(&format!(
            "{0}: ::serde::__private::{helper}({source}, \"{type_label}\", \"{0}\")?, ",
            f.name
        ));
    }
    s.push_str("} }");
    s
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => ser_named_fields(fields, |f| format!("&self.{f}")),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::TupleStruct(n) => {
            let elems: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_owned(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let arm = match (&v.kind, item.attrs.untagged) {
                    (VariantKind::Unit, false) => format!(
                        "{name}::{vname} => \
                         ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                    ),
                    (VariantKind::Unit, true) => {
                        format!("{name}::{vname} => ::serde::Value::Null,")
                    }
                    (VariantKind::Newtype, untagged) => {
                        let inner = "::serde::Serialize::to_value(__f0)";
                        if untagged {
                            format!("{name}::{vname}(__f0) => {inner},")
                        } else {
                            format!(
                                "{name}::{vname}(__f0) => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vname}\"), {inner})]),"
                            )
                        }
                    }
                    (VariantKind::Tuple(n), untagged) => {
                        let pats: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                            .collect();
                        let arr = format!("::serde::Value::Array(vec![{}])", elems.join(", "));
                        if untagged {
                            format!("{name}::{vname}({}) => {arr},", pats.join(", "))
                        } else {
                            format!(
                                "{name}::{vname}({}) => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vname}\"), {arr})]),",
                                pats.join(", ")
                            )
                        }
                    }
                    (VariantKind::Struct(fields), untagged) => {
                        let pats: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let obj = ser_named_fields(fields, |f| f.to_owned());
                        if untagged {
                            format!("{name}::{vname} {{ {} }} => {obj},", pats.join(", "))
                        } else {
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vname}\"), {obj})]),",
                                pats.join(", ")
                            )
                        }
                    }
                };
                arms.push_str(&arm);
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            format!(
                "Ok({})",
                de_named_fields(fields, name, name, "__v", item.attrs.deny_unknown_fields)
            )
        }
        Shape::TupleStruct(1) => {
            format!("::serde::Deserialize::from_value(__v).map({name})")
        }
        Shape::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::get_elem(__v, \"{name}\", {i}, {n})?"))
                .collect();
            format!("Ok({name}({}))", elems.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) if item.attrs.untagged => {
            // Try each variant in declaration order; first success wins.
            // Failed attempts keep their errors so the final mismatch
            // can say *why* each variant was rejected (e.g. name the
            // unknown field instead of a generic "did not match").
            let mut attempts = String::from(
                "let mut __errs: ::std::vec::Vec<::serde::Error> = ::std::vec::Vec::new(); ",
            );
            for v in variants {
                let vname = &v.name;
                let attempt = match &v.kind {
                    VariantKind::Unit => format!(
                        "if matches!(__v, ::serde::Value::Null) \
                         {{ return Ok({name}::{vname}); }}"
                    ),
                    VariantKind::Newtype => format!(
                        "match ::serde::Deserialize::from_value(__v) \
                         {{ Ok(__inner) => return Ok({name}::{vname}(__inner)), \
                            Err(__e) => __errs.push(__e) }}"
                    ),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::__private::get_elem(__v, \"{name}\", {i}, {n})?")
                            })
                            .collect();
                        format!(
                            "match (|| -> ::std::result::Result<{name}, \
                             ::serde::Error> {{ Ok({name}::{vname}({})) }})() \
                             {{ Ok(__var) => return Ok(__var), Err(__e) => __errs.push(__e) }}",
                            elems.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let build = de_named_fields(
                            fields,
                            &format!("{name}::{vname}"),
                            &format!("{name}::{vname}"),
                            "__v",
                            item.attrs.deny_unknown_fields,
                        );
                        format!(
                            "match (|| -> ::std::result::Result<{name}, \
                             ::serde::Error> {{ Ok({build}) }})() \
                             {{ Ok(__var) => return Ok(__var), Err(__e) => __errs.push(__e) }}"
                        )
                    }
                };
                attempts.push_str(&attempt);
            }
            format!("{attempts} Err(::serde::__private::untagged_mismatch(\"{name}\", &__errs))")
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let arm = match &v.kind {
                    VariantKind::Unit => {
                        format!("(\"{vname}\", _) => Ok({name}::{vname}),")
                    }
                    VariantKind::Newtype => format!(
                        "(\"{vname}\", Some(__payload)) => \
                         Ok({name}::{vname}(::serde::Deserialize::from_value(__payload)?)),"
                    ),
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::__private::get_elem(__payload, \
                                     \"{name}::{vname}\", {i}, {n})?"
                                )
                            })
                            .collect();
                        format!(
                            "(\"{vname}\", Some(__payload)) => \
                             Ok({name}::{vname}({})),",
                            elems.join(", ")
                        )
                    }
                    VariantKind::Struct(fields) => {
                        let build = de_named_fields(
                            fields,
                            &format!("{name}::{vname}"),
                            &format!("{name}::{vname}"),
                            "__payload",
                            item.attrs.deny_unknown_fields,
                        );
                        format!("(\"{vname}\", Some(__payload)) => Ok({build}),")
                    }
                };
                arms.push_str(&arm);
            }
            format!(
                "let (__tag, __payload) = ::serde::__private::enum_tag(__v, \"{name}\")?; \
                 match (__tag, __payload) {{ {arms} \
                 (__other, _) => Err(::serde::__private::unknown_variant(\"{name}\", __other)), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}
