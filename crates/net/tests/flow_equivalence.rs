//! Equivalence anchor for the fair-sharing backend: with a single flow
//! in flight (no contention), replaying a collective's flow program
//! through [`FlowSim`] reproduces the closed-form cost within 1 ppm —
//! in fact bit-for-bit, because both sides evaluate the same float
//! expression and the same nanosecond quantisation. Every figure the
//! paper validates is therefore unchanged when contention is absent.

use proptest::prelude::*;
use vtrain_model::{Bytes, TimeNs};
use vtrain_net::{collective, Algorithm, Collective, FlowSim, GroupPlacement, TierSpec, Topology};

fn p4d_like() -> Topology {
    Topology::two_tier(
        8,
        TierSpec::new(235e9, TimeNs::from_micros(8), 1.0),
        TierSpec::new(50e9, TimeNs::from_micros(20), 0.77),
    )
}

fn three_tier() -> Topology {
    p4d_like().with_rack_tier(4, TierSpec::new(25e9, TimeNs::from_micros(35), 0.7))
}

const KINDS: [Collective; 4] =
    [Collective::AllReduce, Collective::AllGather, Collective::ReduceScatter, Collective::AllToAll];

const ALGORITHMS: [Algorithm; 3] = [Algorithm::Ring, Algorithm::Tree, Algorithm::Hierarchical];

/// Replays the collective as a solo flow and returns its finish time.
fn solo_flow_time(
    topo: &Topology,
    placement: GroupPlacement,
    kind: Collective,
    algorithm: Algorithm,
    bytes: Bytes,
) -> TimeNs {
    let program = collective::plan(topo, placement, kind, algorithm, bytes);
    if program.is_empty() {
        return TimeNs::ZERO;
    }
    let mut sim = FlowSim::new(topo);
    sim.start(TimeNs::ZERO, program);
    sim.drain_all()
}

fn ppm(a: TimeNs, b: TimeNs) -> f64 {
    let (a, b) = (a.as_nanos() as f64, b.as_nanos() as f64);
    if a == b {
        return 0.0;
    }
    (a - b).abs() / a.max(b) * 1e6
}

#[test]
fn golden_single_flow_matches_closed_form_across_the_grid() {
    let placements = [
        GroupPlacement::intra_node(8),
        GroupPlacement { ranks_per_node: 8, nodes_per_rack: 4, racks: 1 },
        GroupPlacement { ranks_per_node: 1, nodes_per_rack: 8, racks: 1 },
        GroupPlacement { ranks_per_node: 8, nodes_per_rack: 4, racks: 4 },
        GroupPlacement { ranks_per_node: 1, nodes_per_rack: 4, racks: 8 },
        GroupPlacement::pair(1),
        GroupPlacement::pair(2),
    ];
    for topo in [p4d_like(), three_tier()] {
        for placement in placements {
            for kind in KINDS {
                for algorithm in ALGORITHMS {
                    for mib in [1u64, 25, 96, 1536] {
                        let bytes = Bytes::from_mib(mib);
                        let closed =
                            collective::cost(&topo, placement, kind, algorithm, bytes).total();
                        let flow = solo_flow_time(&topo, placement, kind, algorithm, bytes);
                        assert_eq!(
                            flow,
                            closed,
                            "{kind:?}/{algorithm:?}/{placement:?}/{mib} MiB: \
                             flow {flow} vs closed form {closed} ({} ppm)",
                            ppm(flow, closed)
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn zero_bytes_and_singleton_groups_are_equivalent_too() {
    let topo = p4d_like();
    for kind in KINDS {
        for algorithm in ALGORITHMS {
            let closed = collective::cost(
                &topo,
                GroupPlacement::intra_node(1),
                kind,
                algorithm,
                Bytes::from_mib(64),
            )
            .total();
            let flow = solo_flow_time(
                &topo,
                GroupPlacement::intra_node(1),
                kind,
                algorithm,
                Bytes::from_mib(64),
            );
            assert_eq!(flow, closed, "singleton {kind:?}/{algorithm:?}");

            let placement = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 2, racks: 1 };
            let closed = collective::cost(&topo, placement, kind, algorithm, Bytes::ZERO).total();
            let flow = solo_flow_time(&topo, placement, kind, algorithm, Bytes::ZERO);
            assert_eq!(flow, closed, "zero bytes {kind:?}/{algorithm:?}");
            assert_eq!(flow, TimeNs::ZERO);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn single_flow_matches_closed_form_within_one_ppm(
        combo in 0usize..12,
        ranks_per_node in 1usize..9,
        nodes_per_rack in 1usize..5,
        racks in 1usize..5,
        kib in 1u64..4_000_000,
        three in 0u8..2,
    ) {
        let topo = if three == 1 { three_tier() } else { p4d_like() };
        let placement = GroupPlacement { ranks_per_node, nodes_per_rack, racks };
        let kind = KINDS[combo % 4];
        let algorithm = ALGORITHMS[combo / 4];
        let bytes = Bytes::from_kib(kib);
        let closed = collective::cost(&topo, placement, kind, algorithm, bytes).total();
        let flow = solo_flow_time(&topo, placement, kind, algorithm, bytes);
        prop_assert!(
            ppm(flow, closed) <= 1.0,
            "{:?}/{:?}/{:?}/{} KiB: flow {} vs closed {}",
            kind, algorithm, placement, kib, flow, closed
        );
    }
}
