//! Analytical cost models for collective algorithms over a
//! [`Topology`], each returning a per-tier [`CostBreakdown`].
//!
//! All formulas price a group of `n` ranks moving a buffer of `S` bytes
//! against the effective bandwidth `B = α·Bmax` and base latency `L` of
//! the tiers the group crosses:
//!
//! * **Ring** — the paper's Equation (1) family: one launch latency plus
//!   the bandwidth-optimal traffic factor at the *highest* tier the group
//!   spans (`2(n-1)/n` for All-Reduce, `(n-1)/n` for All-Gather /
//!   Reduce-Scatter / All-to-All). On a single-tier topology the
//!   All-Reduce form is bit-identical to
//!   `vtrain_gpu::comm::all_reduce_time`.
//! * **Tree** — latency-oriented: `⌈log₂n⌉` rounds. All-Reduce uses the
//!   pipelined double-tree form (`2⌈log₂n⌉·L + 2S/B`); All-Gather and
//!   Reduce-Scatter recursive doubling/halving; All-to-All the Bruck
//!   exchange (`⌈log₂n⌉·L + S·⌈log₂n⌉/2/B`).
//! * **Hierarchical** — reduce-scatter up the hierarchy, a ring phase at
//!   the top tier over the shrunken shard, and an all-gather back down
//!   (the NCCL/Horovod multi-level pattern). Only `S/f₀` (or `S/f₀f₁`)
//!   bytes cross the scarce upper tiers, which is what the flat model
//!   cannot express.
//!
//! Boundary semantics match the repaired flat primitives: a zero-byte
//! collective is a no-op (zero cost), and a single-rank group costs one
//! launch latency at its tier.

use serde::{Deserialize, Serialize};
use vtrain_model::{Bytes, TimeNs};

use crate::flow::{FlowPhase, FlowProgram};
use crate::topology::{GroupPlacement, Topology};

/// The collective operation classes of distributed training.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Collective {
    /// Reduce + broadcast: every rank ends with the full reduction.
    AllReduce,
    /// Every rank ends with the concatenation of all shards.
    AllGather,
    /// Every rank ends with its reduced shard.
    ReduceScatter,
    /// Every rank exchanges a distinct shard with every other rank
    /// (expert-parallel / sequence-parallel traffic).
    AllToAll,
}

/// The pluggable collective algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Bandwidth-optimal flat ring at the group's top tier (Equation (1)).
    Ring,
    /// Latency-oriented `⌈log₂n⌉`-round tree / recursive doubling.
    Tree,
    /// Reduce-scatter intra-tier, ring at the top tier, all-gather back.
    Hierarchical,
}

/// The cost of one phase of a collective, attributed to the tier whose
/// links it occupies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCost {
    /// Tier index (0 = intra-node).
    pub tier: usize,
    /// Phase duration.
    pub time: TimeNs,
}

/// A collective's cost, decomposed into sequential per-tier phases.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Sequential phases; empty for a no-op collective.
    pub phases: Vec<PhaseCost>,
}

impl CostBreakdown {
    /// Total duration: phases run back to back.
    pub fn total(&self) -> TimeNs {
        self.phases.iter().map(|p| p.time).sum()
    }

    /// Time attributed to `tier` across all phases.
    pub fn tier_time(&self, tier: usize) -> TimeNs {
        self.phases.iter().filter(|p| p.tier == tier).map(|p| p.time).sum()
    }
}

/// The ring traffic factor of `kind` over `n` ranks: each byte crosses
/// the ring twice for All-Reduce (reduce-scatter + all-gather), once for
/// the single-pass collectives.
pub fn ring_traffic_factor(kind: Collective, n: usize) -> f64 {
    match kind {
        Collective::AllReduce => 2.0 * (n as f64 - 1.0) / n as f64,
        Collective::AllGather | Collective::ReduceScatter | Collective::AllToAll => {
            (n as f64 - 1.0) / n as f64
        }
    }
}

/// `⌈log₂n⌉` for `n ≥ 1`.
fn log2_ceil(n: usize) -> u32 {
    usize::BITS - (n - 1).leading_zeros()
}

/// One planned phase at `tier`: `latency_rounds` launch latencies plus
/// `bytes · factor` byte-equivalents of bandwidth work.
///
/// The work product is formed here (multiply) and divided by the tier's
/// effective bandwidth only at pricing time, mirroring
/// `vtrain_gpu::comm::all_reduce_time` exactly (multiply, then one
/// divide, then quantize) so that flat ring costs are bit-identical to
/// the legacy model — whether the phase is priced closed-form or drained
/// through the fair-sharing simulator.
fn phase(tier: usize, bytes: f64, factor: f64, latency_rounds: u32) -> FlowPhase {
    FlowPhase { tier, work: bytes * factor, latency_rounds }
}

/// Prices one planned phase closed-form against its tier.
fn price_phase(topo: &Topology, phase: &FlowPhase) -> PhaseCost {
    let spec = topo.tier(phase.tier);
    let mut time = TimeNs::from_secs_f64(phase.work / spec.effective_bandwidth());
    for _ in 0..phase.latency_rounds {
        time += spec.base_latency;
    }
    PhaseCost { tier: phase.tier, time }
}

/// The phase plan of running `kind` with `algorithm` over a group placed
/// as `placement` on `topo`, moving a buffer of `bytes` per rank: the
/// sequence of (tier, bandwidth-work, latency-rounds) phases that both
/// [`cost`] prices closed-form and the fair-sharing simulator
/// ([`crate::flow::FlowSim`]) drains under contention. One plan feeds
/// both backends, so a solo flow can never diverge from the closed form.
///
/// Zero bytes plan nothing; a single-rank group plans one latency-only
/// phase at its top tier.
pub fn plan(
    topo: &Topology,
    placement: GroupPlacement,
    kind: Collective,
    algorithm: Algorithm,
    bytes: Bytes,
) -> FlowProgram {
    let n = placement.size();
    let top = placement.top_tier().min(topo.num_tiers() - 1);
    if bytes == Bytes::ZERO {
        return FlowProgram::default();
    }
    if n <= 1 {
        return FlowProgram { phases: vec![FlowPhase { tier: top, work: 0.0, latency_rounds: 1 }] };
    }
    let s = bytes.as_f64();
    let phases = match algorithm {
        Algorithm::Ring => vec![phase(top, s, ring_traffic_factor(kind, n), 1)],
        Algorithm::Tree => {
            let rounds = log2_ceil(n);
            match kind {
                Collective::AllReduce => vec![phase(top, s, 2.0, 2 * rounds)],
                Collective::AllGather | Collective::ReduceScatter => {
                    vec![phase(top, s, ring_traffic_factor(kind, n), rounds)]
                }
                Collective::AllToAll => {
                    vec![phase(top, s, rounds as f64 / 2.0, rounds)]
                }
            }
        }
        Algorithm::Hierarchical => hierarchical(placement, kind, s, top),
    };
    FlowProgram { phases }
}

/// Cost of running `kind` with `algorithm` over a group placed as
/// `placement` on `topo`, moving a buffer of `bytes` per rank: the
/// closed-form pricing of [`plan`], each phase drained solo at its
/// tier's full effective bandwidth.
///
/// Zero bytes cost nothing; a single-rank group costs one launch latency
/// at its top tier.
pub fn cost(
    topo: &Topology,
    placement: GroupPlacement,
    kind: Collective,
    algorithm: Algorithm,
    bytes: Bytes,
) -> CostBreakdown {
    let program = plan(topo, placement, kind, algorithm, bytes);
    CostBreakdown { phases: program.phases.iter().map(|p| price_phase(topo, p)).collect() }
}

/// The multi-level decomposition. For All-Reduce: reduce-scatter at each
/// crossed tier below the top (payload shrinking by the tier's fan-out),
/// a ring All-Reduce over the top-tier fan-out, then the mirrored
/// all-gathers back down. Reduce-Scatter keeps only the upward sweep,
/// All-Gather only the downward one, and All-to-All exchanges at each
/// tier exactly the traffic fraction that crosses it.
///
/// A placement may span more levels than the topology has tiers (e.g. a
/// multi-rack group priced on a two-tier topology): the fan-outs above
/// the topology's top tier fold into its fan-out, so every rank is
/// always accounted for.
fn hierarchical(placement: GroupPlacement, kind: Collective, s: f64, top: usize) -> Vec<FlowPhase> {
    let n = placement.size();

    if let Collective::AllToAll = kind {
        // Fraction of each rank's buffer that crosses exactly level k:
        // peers reachable at ≤ k minus peers reachable at < k, over n.
        // Levels the topology cannot separate accumulate into one
        // exchange at the clamped tier (single launch).
        let mut fracs = [0.0f64; 3];
        let mut reach_below = 1usize;
        for level in 0..=placement.top_tier() {
            let reach = reach_below * placement.fanout(level);
            fracs[level.min(top)] += (reach - reach_below) as f64 / n as f64;
            reach_below = reach;
        }
        return fracs
            .iter()
            .enumerate()
            .filter(|(_, &f)| f > 0.0)
            .map(|(tier, &f)| phase(tier, s, f, 1))
            .collect();
    }

    // Upward reduce-scatter sweep: payload shrinks by each fan-out.
    let mut up = Vec::new();
    let mut shard = s;
    for tier in 0..top {
        let f = placement.fanout(tier);
        if f > 1 {
            up.push(phase(tier, shard, ring_traffic_factor(Collective::ReduceScatter, f), 1));
            shard /= f as f64;
        }
    }
    // Levels the topology cannot separate collapse into the top tier's
    // ring phase.
    let top_fanout: usize = (top..=placement.top_tier()).map(|l| placement.fanout(l)).product();

    match kind {
        Collective::AllReduce => {
            let mut phases = up.clone();
            phases.push(phase(
                top,
                shard,
                ring_traffic_factor(Collective::AllReduce, top_fanout),
                1,
            ));
            phases.extend(up.into_iter().rev());
            phases
        }
        Collective::ReduceScatter => {
            let mut phases = up;
            phases.push(phase(
                top,
                shard,
                ring_traffic_factor(Collective::ReduceScatter, top_fanout),
                1,
            ));
            phases
        }
        Collective::AllGather => {
            // Mirror of reduce-scatter: gather the top-tier shards first,
            // then fan the growing buffer back down.
            let mut phases =
                vec![phase(top, shard, ring_traffic_factor(Collective::AllGather, top_fanout), 1)];
            phases.extend(up.into_iter().rev());
            phases
        }
        Collective::AllToAll => unreachable!("handled above"),
    }
}

/// Deterministically selects the cheapest algorithm for a collective
/// signature: candidates are priced with [`cost`] and the first
/// strict minimum in `[Ring, Tree, Hierarchical]` order wins, so ties
/// fall back to the paper's flat ring model.
///
/// Intra-node groups always use the ring (that path is table-driven in
/// the profiled communication model, matching the paper's methodology).
pub fn select(
    topo: &Topology,
    placement: GroupPlacement,
    kind: Collective,
    bytes: Bytes,
) -> Algorithm {
    if placement.top_tier() == 0 {
        return Algorithm::Ring;
    }
    let mut best = Algorithm::Ring;
    let mut best_total = cost(topo, placement, kind, Algorithm::Ring, bytes).total();
    for algo in [Algorithm::Tree, Algorithm::Hierarchical] {
        let total = cost(topo, placement, kind, algo, bytes).total();
        if total < best_total {
            best = algo;
            best_total = total;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TierSpec;
    use proptest::prelude::*;

    fn p4d_like() -> Topology {
        Topology::two_tier(
            8,
            TierSpec::new(235e9, TimeNs::from_micros(8), 1.0),
            TierSpec::new(100e9, TimeNs::from_micros(20), 1.0),
        )
    }

    fn three_tier() -> Topology {
        p4d_like().with_rack_tier(4, TierSpec::new(50e9, TimeNs::from_micros(35), 1.0))
    }

    #[test]
    fn flat_ring_all_reduce_matches_equation_one() {
        // 1 GiB across 8 ranks at 100 GB/s ≈ 18.8 ms (the paper's worked
        // example for Equation (1)).
        let topo = Topology::flat(TierSpec::new(100e9, TimeNs::ZERO, 1.0));
        let c = cost(
            &topo,
            GroupPlacement::intra_node(8),
            Collective::AllReduce,
            Algorithm::Ring,
            Bytes::from_gib(1),
        );
        assert_eq!(c.phases.len(), 1);
        assert!((c.total().as_secs_f64() - 0.0188).abs() < 0.001);
    }

    #[test]
    fn zero_bytes_and_single_rank_boundaries() {
        let topo = p4d_like();
        let pl = GroupPlacement::intra_node(8);
        for kind in [
            Collective::AllReduce,
            Collective::AllGather,
            Collective::ReduceScatter,
            Collective::AllToAll,
        ] {
            for algo in [Algorithm::Ring, Algorithm::Tree, Algorithm::Hierarchical] {
                assert_eq!(cost(&topo, pl, kind, algo, Bytes::ZERO).total(), TimeNs::ZERO);
                assert_eq!(
                    cost(&topo, GroupPlacement::intra_node(1), kind, algo, Bytes::from_mib(4))
                        .total(),
                    TimeNs::from_micros(8),
                    "single-rank collective costs one launch latency"
                );
            }
        }
    }

    #[test]
    fn hierarchical_all_reduce_breaks_down_per_tier() {
        let topo = p4d_like();
        // 4 nodes × 8 ranks.
        let pl = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 4, racks: 1 };
        let c =
            cost(&topo, pl, Collective::AllReduce, Algorithm::Hierarchical, Bytes::from_mib(512));
        // RS intra, AR inter, AG intra.
        assert_eq!(c.phases.len(), 3);
        assert_eq!(c.phases[0].tier, 0);
        assert_eq!(c.phases[1].tier, 1);
        assert_eq!(c.phases[2].tier, 0);
        assert_eq!(c.phases[0].time, c.phases[2].time);
        assert_eq!(c.total(), c.tier_time(0) + c.tier_time(1));
        // Only S/8 crossed InfiniBand: far cheaper than the flat ring.
        let flat = cost(&topo, pl, Collective::AllReduce, Algorithm::Ring, Bytes::from_mib(512));
        assert!(c.total() < flat.total());
    }

    #[test]
    fn hierarchical_spans_three_tiers() {
        let topo = three_tier();
        let pl = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 4, racks: 2 };
        let c = cost(&topo, pl, Collective::AllReduce, Algorithm::Hierarchical, Bytes::from_gib(1));
        // RS(0), RS(1), AR(2), AG(1), AG(0).
        assert_eq!(c.phases.iter().map(|p| p.tier).collect::<Vec<_>>(), vec![0, 1, 2, 1, 0]);
        // The spine sees only S/32.
        let spine_bytes = Bytes::from_gib(1).as_f64() / 32.0;
        let expect = TimeNs::from_secs_f64(spine_bytes * 1.0 / 50e9) + TimeNs::from_micros(35);
        assert_eq!(c.tier_time(2), expect);
    }

    #[test]
    fn all_to_all_attributes_traffic_fractions() {
        let topo = p4d_like();
        let pl = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 4, racks: 1 };
        let c = cost(&topo, pl, Collective::AllToAll, Algorithm::Hierarchical, Bytes::from_mib(32));
        assert_eq!(c.phases.len(), 2);
        // 7/32 of the buffer stays intra-node, 24/32 crosses nodes.
        let s = Bytes::from_mib(32).as_f64();
        let intra = TimeNs::from_secs_f64(s * (7.0 / 32.0) / 235e9) + TimeNs::from_micros(8);
        let inter = TimeNs::from_secs_f64(s * (24.0 / 32.0) / 100e9) + TimeNs::from_micros(20);
        assert_eq!(c.phases[0].time, intra);
        assert_eq!(c.phases[1].time, inter);
    }

    #[test]
    fn clamped_topology_folds_upper_fanouts_into_the_top_tier() {
        // A multi-rack placement priced on a two-tier topology must still
        // reduce over all 64 ranks: the racks dimension folds into the
        // inter-node ring (8 nodes × 2 racks → 8-way fan-out at tier 1).
        let topo = p4d_like();
        let racked = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 4, racks: 2 };
        let merged = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 8, racks: 1 };
        for kind in [
            Collective::AllReduce,
            Collective::AllGather,
            Collective::ReduceScatter,
            Collective::AllToAll,
        ] {
            let a = cost(&topo, racked, kind, Algorithm::Hierarchical, Bytes::from_mib(256));
            let b = cost(&topo, merged, kind, Algorithm::Hierarchical, Bytes::from_mib(256));
            assert_eq!(a.total(), b.total(), "{kind:?}");
        }
        // On a flat topology, hierarchical degenerates to the full-group
        // ring — never to a cheaper truncated reduction.
        let flat = Topology::flat(TierSpec::new(100e9, TimeNs::from_micros(20), 1.0));
        let spread = GroupPlacement { ranks_per_node: 1, nodes_per_rack: 8, racks: 1 };
        let hier = cost(
            &flat,
            spread,
            Collective::AllReduce,
            Algorithm::Hierarchical,
            Bytes::from_mib(64),
        );
        let ring = cost(&flat, spread, Collective::AllReduce, Algorithm::Ring, Bytes::from_mib(64));
        assert_eq!(hier.total(), ring.total());
    }

    #[test]
    fn tree_trades_bandwidth_for_rounds() {
        let topo = p4d_like();
        let pl = GroupPlacement { ranks_per_node: 1, nodes_per_rack: 16, racks: 1 };
        let tree = cost(&topo, pl, Collective::AllReduce, Algorithm::Tree, Bytes::from_mib(256));
        let ring = cost(&topo, pl, Collective::AllReduce, Algorithm::Ring, Bytes::from_mib(256));
        // 4 rounds up + 4 down at 20 µs each.
        assert_eq!(tree.phases.len(), 1);
        assert!(tree.total() > ring.total(), "large payloads favor the ring");
    }

    #[test]
    fn selection_prefers_hierarchical_across_nodes_and_ring_within() {
        let topo = p4d_like();
        let multi = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 8, racks: 1 };
        assert_eq!(
            select(&topo, multi, Collective::AllReduce, Bytes::from_mib(512)),
            Algorithm::Hierarchical
        );
        assert_eq!(
            select(
                &topo,
                GroupPlacement::intra_node(8),
                Collective::AllReduce,
                Bytes::from_mib(512)
            ),
            Algorithm::Ring
        );
        // One rank per node: nothing to reduce locally, hierarchical
        // degenerates to the ring and the tie keeps Ring.
        let spread = GroupPlacement { ranks_per_node: 1, nodes_per_rack: 8, racks: 1 };
        assert_eq!(
            select(&topo, spread, Collective::AllReduce, Bytes::from_mib(512)),
            Algorithm::Ring
        );
    }

    proptest! {
        /// Costs are monotone in payload bytes for every (kind, algo).
        #[test]
        fn cost_monotone_in_bytes(
            mib_a in 0u64..2048,
            mib_b in 0u64..2048,
            rpn in 1usize..8,
            nodes in 1usize..16,
        ) {
            let topo = p4d_like();
            let pl = GroupPlacement { ranks_per_node: rpn, nodes_per_rack: nodes, racks: 1 };
            let (lo, hi) = if mib_a <= mib_b { (mib_a, mib_b) } else { (mib_b, mib_a) };
            for kind in [Collective::AllReduce, Collective::AllGather,
                         Collective::ReduceScatter, Collective::AllToAll] {
                for algo in [Algorithm::Ring, Algorithm::Tree, Algorithm::Hierarchical] {
                    let tl = cost(&topo, pl, kind, algo, Bytes::from_mib(lo)).total();
                    let th = cost(&topo, pl, kind, algo, Bytes::from_mib(hi)).total();
                    prop_assert!(tl <= th, "{kind:?}/{algo:?}: {lo}MiB → {tl}, {hi}MiB → {th}");
                }
            }
        }

        /// Ring and tree costs are monotone in group size (more ranks
        /// never make the same-tier collective cheaper).
        #[test]
        fn flat_cost_monotone_in_ranks(n in 2usize..256, mib in 1u64..512) {
            let topo = p4d_like();
            let small = GroupPlacement { ranks_per_node: 1, nodes_per_rack: n, racks: 1 };
            let large = GroupPlacement { ranks_per_node: 1, nodes_per_rack: n + 1, racks: 1 };
            for kind in [Collective::AllReduce, Collective::AllGather,
                         Collective::ReduceScatter, Collective::AllToAll] {
                for algo in [Algorithm::Ring, Algorithm::Tree] {
                    let a = cost(&topo, small, kind, algo, Bytes::from_mib(mib)).total();
                    let b = cost(&topo, large, kind, algo, Bytes::from_mib(mib)).total();
                    prop_assert!(a <= b, "{kind:?}/{algo:?}: n={n} → {a}, n+1 → {b}");
                }
            }
        }

        /// Hierarchical All-Reduce never beats the intra-node-only bound:
        /// its intra-node phases alone already cost at least a full
        /// intra-node ring reduce-scatter + all-gather.
        #[test]
        fn hierarchical_never_beats_intra_bound(
            rpn in 2usize..8,
            nodes in 2usize..32,
            mib in 1u64..2048,
        ) {
            let topo = p4d_like();
            let pl = GroupPlacement { ranks_per_node: rpn, nodes_per_rack: nodes, racks: 1 };
            let hier =
                cost(&topo, pl, Collective::AllReduce, Algorithm::Hierarchical, Bytes::from_mib(mib));
            let intra_only = cost(
                &topo,
                GroupPlacement::intra_node(rpn),
                Collective::AllReduce,
                Algorithm::Ring,
                Bytes::from_mib(mib),
            );
            prop_assert!(hier.total() >= intra_only.total());
        }

        /// The selector returns the cheapest candidate.
        #[test]
        fn selection_is_optimal(rpn in 1usize..8, nodes in 1usize..16, mib in 0u64..1024) {
            let topo = p4d_like();
            let pl = GroupPlacement { ranks_per_node: rpn, nodes_per_rack: nodes, racks: 1 };
            for kind in [Collective::AllReduce, Collective::AllToAll] {
                let chosen = select(&topo, pl, kind, Bytes::from_mib(mib));
                let chosen_cost = cost(&topo, pl, kind, chosen, Bytes::from_mib(mib)).total();
                if pl.top_tier() > 0 {
                    for algo in [Algorithm::Ring, Algorithm::Tree, Algorithm::Hierarchical] {
                        let c = cost(&topo, pl, kind, algo, Bytes::from_mib(mib)).total();
                        prop_assert!(chosen_cost <= c, "{kind:?}: chose {chosen:?}");
                    }
                }
            }
        }
    }
}
