//! The GPU → node → rack → cluster interconnect hierarchy.

use serde::{Deserialize, Serialize};
use vtrain_model::TimeNs;

/// One tier of the interconnect: the link class connecting the units of
/// the level below (GPUs within a node, nodes within a rack, racks within
/// the cluster).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TierSpec {
    /// Per-participant bus bandwidth `Bmax`, bytes/s.
    pub bandwidth: f64,
    /// Fixed per-collective launch/traversal latency at this tier.
    pub base_latency: TimeNs,
    /// Bandwidth effectiveness factor `α ∈ (0, 1]` (paper §IV).
    pub alpha: f64,
}

impl TierSpec {
    /// Creates a tier spec.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth` is non-positive or `alpha` is outside `(0, 1]`.
    pub fn new(bandwidth: f64, base_latency: TimeNs, alpha: f64) -> Self {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        TierSpec { bandwidth, base_latency, alpha }
    }

    /// Effective bandwidth `B = α·Bmax`.
    pub fn effective_bandwidth(&self) -> f64 {
        self.alpha * self.bandwidth
    }
}

/// How one process group's ranks spread over the hierarchy.
///
/// The three fan-outs multiply to the group size under a regular layout:
/// `ranks_per_node · nodes_per_rack · racks == group size`. Each field is
/// at least 1; a tier whose fan-out is 1 is not crossed by the group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GroupPlacement {
    /// Co-located participants per node.
    pub ranks_per_node: usize,
    /// Distinct nodes occupied per rack.
    pub nodes_per_rack: usize,
    /// Distinct racks occupied.
    pub racks: usize,
}

impl GroupPlacement {
    /// A group entirely inside one node.
    pub fn intra_node(ranks: usize) -> Self {
        GroupPlacement { ranks_per_node: ranks.max(1), nodes_per_rack: 1, racks: 1 }
    }

    /// A point-to-point pair whose link lives at `tier` (0 = same node,
    /// 1 = same rack, 2 = cross-rack).
    pub fn pair(tier: usize) -> Self {
        match tier {
            0 => GroupPlacement { ranks_per_node: 2, nodes_per_rack: 1, racks: 1 },
            1 => GroupPlacement { ranks_per_node: 1, nodes_per_rack: 2, racks: 1 },
            _ => GroupPlacement { ranks_per_node: 1, nodes_per_rack: 1, racks: 2 },
        }
    }

    /// Total ranks in the group.
    pub fn size(&self) -> usize {
        self.ranks_per_node * self.nodes_per_rack * self.racks
    }

    /// The highest tier the group crosses (0 = intra-node, 1 =
    /// intra-rack, 2 = cross-rack).
    pub fn top_tier(&self) -> usize {
        if self.racks > 1 {
            2
        } else if self.nodes_per_rack > 1 {
            1
        } else {
            0
        }
    }

    /// Fan-out at `tier`: co-located ranks (tier 0), nodes per rack
    /// (tier 1), racks (tier 2).
    pub fn fanout(&self, tier: usize) -> usize {
        match tier {
            0 => self.ranks_per_node,
            1 => self.nodes_per_rack,
            _ => self.racks,
        }
    }
}

/// A hierarchical interconnect: GPUs grouped into nodes, nodes into
/// racks, racks into the cluster, with one [`TierSpec`] per level.
///
/// `tiers[0]` always describes the intra-node network; `tiers[1]` (if
/// present) the intra-rack fabric; `tiers[2]` (if present) the rack-spine.
/// A [`Topology::flat`] topology has a single tier and one unbounded
/// node — every group is intra-node and every collective prices against
/// that one tier, reproducing the paper's flat model.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    gpus_per_node: usize,
    nodes_per_rack: usize,
    tiers: Vec<TierSpec>,
}

impl Topology {
    /// Single-tier topology: one unbounded NVLink-like domain priced by
    /// `tier`. Ring collectives over it are bit-identical to the paper's
    /// Equation (1).
    pub fn flat(tier: TierSpec) -> Self {
        Topology { gpus_per_node: usize::MAX, nodes_per_rack: 1, tiers: vec![tier] }
    }

    /// Two-tier topology: nodes of `gpus_per_node` GPUs on `intra_node`,
    /// joined by `inter_node` (the paper's validation platform shape).
    ///
    /// # Panics
    ///
    /// Panics if `gpus_per_node == 0`.
    pub fn two_tier(gpus_per_node: usize, intra_node: TierSpec, inter_node: TierSpec) -> Self {
        assert!(gpus_per_node > 0, "nodes must hold at least one GPU");
        Topology { gpus_per_node, nodes_per_rack: usize::MAX, tiers: vec![intra_node, inter_node] }
    }

    /// Extends a two-tier topology with a rack level: `nodes_per_rack`
    /// nodes share the existing inter-node tier; racks are joined by
    /// `spine`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not two-tier or `nodes_per_rack == 0`.
    pub fn with_rack_tier(mut self, nodes_per_rack: usize, spine: TierSpec) -> Self {
        assert_eq!(self.tiers.len(), 2, "rack tier extends a two-tier topology");
        assert!(nodes_per_rack > 0, "racks must hold at least one node");
        self.nodes_per_rack = nodes_per_rack;
        self.tiers.push(spine);
        self
    }

    /// Returns a copy with `alpha` applied to every tier above the node
    /// level — the §IV bandwidth-effectiveness calibration knob, which
    /// never touches the profiled intra-node network.
    pub fn with_inter_tier_alpha(mut self, alpha: f64) -> Self {
        for tier in self.tiers.iter_mut().skip(1) {
            *tier = TierSpec::new(tier.bandwidth, tier.base_latency, alpha);
        }
        self
    }

    /// GPUs per node (`usize::MAX` for a flat topology's unbounded node).
    pub fn gpus_per_node(&self) -> usize {
        self.gpus_per_node
    }

    /// Nodes per rack (`usize::MAX` when there is no rack tier).
    pub fn nodes_per_rack(&self) -> usize {
        self.nodes_per_rack
    }

    /// Number of tiers (1, 2, or 3).
    pub fn num_tiers(&self) -> usize {
        self.tiers.len()
    }

    /// The spec of `tier`, clamped to the highest configured tier — a
    /// group that "crosses racks" on a two-tier topology prices against
    /// the inter-node tier.
    pub fn tier(&self, tier: usize) -> &TierSpec {
        &self.tiers[tier.min(self.tiers.len() - 1)]
    }

    /// The node index of a global GPU rank.
    fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node.max(1)
    }

    /// The rack index of a global GPU rank.
    fn rack_of(&self, rank: usize) -> usize {
        if self.nodes_per_rack == usize::MAX {
            0
        } else {
            self.node_of(rank) / self.nodes_per_rack
        }
    }

    /// Placement of the group `{base + i·stride | i < size}` of global
    /// ranks (Megatron-style process groups: tensor groups are contiguous
    /// `stride = 1`; data groups stride by the tensor degree; pipeline
    /// groups stride by `t·d`).
    ///
    /// Computed exactly by walking the members; group sizes are the
    /// parallel degrees (≤ a few thousand), so this is cheap and done once
    /// per plan, not per operator.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `stride == 0`.
    pub fn placement(&self, base: usize, stride: usize, size: usize) -> GroupPlacement {
        assert!(size > 0, "group needs at least one rank");
        assert!(stride > 0, "stride must be positive");
        let mut nodes = 0usize;
        let mut racks = 0usize;
        let (mut last_node, mut last_rack) = (usize::MAX, usize::MAX);
        for i in 0..size {
            let rank = base + i * stride;
            let node = self.node_of(rank);
            let rack = self.rack_of(rank);
            // Strided members visit nodes/racks in non-decreasing order,
            // so counting transitions counts distinct values.
            if node != last_node {
                nodes += 1;
                last_node = node;
            }
            if rack != last_rack {
                racks += 1;
                last_rack = rack;
            }
        }
        GroupPlacement {
            ranks_per_node: size.div_ceil(nodes),
            nodes_per_rack: nodes.div_ceil(racks),
            racks,
        }
    }

    /// The tier of the link between two global ranks (0 = same node, 1 =
    /// same rack, 2 = cross-rack), clamped to the configured tiers.
    pub fn link_tier(&self, a: usize, b: usize) -> usize {
        let tier = if self.node_of(a) == self.node_of(b) {
            0
        } else if self.rack_of(a) == self.rack_of(b) {
            1
        } else {
            2
        };
        tier.min(self.tiers.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tier(bw: f64) -> TierSpec {
        TierSpec::new(bw, TimeNs::from_micros(10), 1.0)
    }

    fn three_tier() -> Topology {
        // 8 GPUs per node, 4 nodes per rack.
        Topology::two_tier(8, tier(235e9), tier(100e9)).with_rack_tier(4, tier(50e9))
    }

    #[test]
    fn flat_topology_is_one_unbounded_node() {
        let t = Topology::flat(tier(100e9));
        assert_eq!(t.num_tiers(), 1);
        let p = t.placement(0, 1, 4096);
        assert_eq!(p, GroupPlacement::intra_node(4096));
        assert_eq!(p.top_tier(), 0);
        assert_eq!(t.link_tier(0, 4095), 0);
    }

    #[test]
    fn contiguous_group_fills_nodes_then_racks() {
        let t = three_tier();
        // 16 contiguous ranks: 2 full nodes of one rack.
        let p = t.placement(0, 1, 16);
        assert_eq!(p, GroupPlacement { ranks_per_node: 8, nodes_per_rack: 2, racks: 1 });
        assert_eq!(p.top_tier(), 1);
        // 64 contiguous ranks: 8 nodes over 2 racks.
        let p = t.placement(0, 1, 64);
        assert_eq!(p, GroupPlacement { ranks_per_node: 8, nodes_per_rack: 4, racks: 2 });
        assert_eq!(p.top_tier(), 2);
    }

    #[test]
    fn strided_group_spreads_across_nodes() {
        let t = three_tier();
        // Data-parallel group of a t = 8 plan: stride 8, one rank per node.
        let p = t.placement(0, 8, 8);
        assert_eq!(p, GroupPlacement { ranks_per_node: 1, nodes_per_rack: 4, racks: 2 });
        // Stride 2 within a node: 4 members co-located, then next node.
        let p = t.placement(0, 2, 8);
        assert_eq!(p, GroupPlacement { ranks_per_node: 4, nodes_per_rack: 2, racks: 1 });
    }

    #[test]
    fn placement_size_is_consistent() {
        let t = three_tier();
        for (stride, size) in [(1, 8), (1, 24), (8, 16), (2, 32), (4, 4)] {
            let p = t.placement(0, stride, size);
            assert!(p.size() >= size, "{stride}/{size} → {p:?}");
            assert!(p.ranks_per_node * p.nodes_per_rack * p.racks <= 2 * size);
        }
    }

    #[test]
    fn link_tiers_follow_the_hierarchy() {
        let t = three_tier();
        assert_eq!(t.link_tier(0, 7), 0);
        assert_eq!(t.link_tier(7, 8), 1);
        assert_eq!(t.link_tier(31, 32), 2);
        // Two-tier topology clamps cross-rack to the inter-node tier.
        let two = Topology::two_tier(8, tier(235e9), tier(100e9));
        assert_eq!(two.link_tier(0, 4096), 1);
    }

    #[test]
    fn tier_lookup_clamps() {
        let t = Topology::flat(tier(100e9));
        assert_eq!(t.tier(2).bandwidth, 100e9);
    }

    #[test]
    fn pair_placements() {
        assert_eq!(GroupPlacement::pair(0).top_tier(), 0);
        assert_eq!(GroupPlacement::pair(1).top_tier(), 1);
        assert_eq!(GroupPlacement::pair(2).top_tier(), 2);
        assert_eq!(GroupPlacement::pair(1).size(), 2);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn tier_alpha_validated() {
        let _ = TierSpec::new(1e9, TimeNs::ZERO, 0.0);
    }
}
