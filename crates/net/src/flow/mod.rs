//! # vtrain-flow — contention-aware fair-sharing network model
//!
//! The paper's Equation (1) family prices every collective in isolation:
//! a cost is a function of bytes, group size, and one tier's effective
//! bandwidth. That is exact when a link carries one transfer at a time —
//! and silently wrong when overlapping DP/TP/PP collectives, or
//! co-scheduled jobs, share an inter-node link. This module supplies the
//! missing regime as a *pluggable backend*, selected by
//! [`NetworkBackend`]:
//!
//! * [`FlowPhase`] / [`FlowProgram`] — the demand shape of one
//!   collective: an ordered list of (tier, work, latency) phases compiled
//!   by [`collective::plan`](crate::collective::plan). Pricing a program
//!   against a quiet link reproduces the closed-form cost bit-for-bit.
//! * [`max_min_rates`] — deterministic progressive-filling max-min fair
//!   allocation over link capacities (`TierSpec::effective_bandwidth`),
//!   order-independent at the bit level.
//! * [`FlowSim`] — an event-driven replay where joins, leaves, and phase
//!   changes trigger a refill that linearly rescales every affected
//!   flow's remaining work. No per-byte stepping; `O(flows × links)` per
//!   refill.
//!
//! With a single flow in flight the backend is equivalent to the closed
//! form within quantisation (the golden tests pin exact equality), so
//! every validated figure is unchanged when contention is absent.

use serde::{Deserialize, Serialize};

pub mod fair;
mod program;
mod sim;

pub use fair::max_min_rates;
pub use program::{FlowPhase, FlowProgram};
pub use sim::{FlowId, FlowSim};

/// Which network-cost regime the estimator runs under.
///
/// Serialises by variant name; the scenario schema and CLI use the
/// kebab-case spellings via [`NetworkBackend::parse`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkBackend {
    /// Per-collective closed-form costs (paper Equation (1) family);
    /// every transfer sees the full effective bandwidth of its tier.
    #[default]
    ClosedForm,
    /// Progressive-filling max-min fair sharing: concurrent transfers on
    /// a tier split its effective bandwidth; overlap lengthens drains.
    FairSharing,
}

impl NetworkBackend {
    /// Parses the kebab-case scenario/CLI spelling (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "closed-form" => Some(NetworkBackend::ClosedForm),
            "fair-sharing" => Some(NetworkBackend::FairSharing),
            _ => None,
        }
    }

    /// The canonical kebab-case name.
    pub fn name(self) -> &'static str {
        match self {
            NetworkBackend::ClosedForm => "closed-form",
            NetworkBackend::FairSharing => "fair-sharing",
        }
    }
}
