//! Progressive-filling max-min fair bandwidth allocation.
//!
//! Classic water-filling: raise every unfrozen flow's rate in lockstep
//! until some link saturates, freeze the flows crossing that link at the
//! current level, subtract their usage, repeat. The result is the unique
//! max-min fair allocation: no flow's rate can be raised without lowering
//! that of a flow with an equal or smaller rate.
//!
//! The implementation is deliberately order-independent at the bit level:
//! each round's water level is a single float expression evaluated per
//! link, the frozen set is decided by exact equality against that level,
//! and link usage is updated as `count × level` — never by summing
//! per-flow rates in iteration order. Permuting the input flows permutes
//! the output rates identically.

/// Computes the max-min fair rate for each flow.
///
/// `caps[l]` is link `l`'s capacity (bytes/s, must be positive);
/// `flows[i]` is the set of links flow `i` crosses (non-empty, indices
/// into `caps`). Rates are written into `rates` (cleared first; reusing
/// the buffer keeps the per-refill path allocation-free).
///
/// Runs in `O(rounds × (flows × links_per_flow + links))` with at least
/// one flow frozen per round, i.e. `O(flows × links)` overall.
///
/// # Panics
///
/// Panics if any flow has an empty link set or a link index out of range.
pub fn max_min_rates<L: AsRef<[usize]>>(caps: &[f64], flows: &[L], rates: &mut Vec<f64>) {
    rates.clear();
    rates.resize(flows.len(), 0.0);
    if flows.is_empty() {
        return;
    }
    let n_links = caps.len();
    let mut used = vec![0.0f64; n_links];
    let mut unfrozen = vec![0usize; n_links];
    let mut frozen = vec![false; flows.len()];
    for f in flows {
        let links = f.as_ref();
        assert!(!links.is_empty(), "every flow must cross at least one link");
        for &l in links {
            assert!(l < n_links, "flow references link {l} but only {n_links} exist");
            unfrozen[l] += 1;
        }
    }

    let mut remaining = flows.len();
    let mut newly = vec![0usize; n_links];
    while remaining > 0 {
        // The water level this round: the smallest equal share any
        // still-contended link can offer.
        let mut level = f64::INFINITY;
        for l in 0..n_links {
            if unfrozen[l] > 0 {
                let link_level = (caps[l] - used[l]).max(0.0) / unfrozen[l] as f64;
                if link_level < level {
                    level = link_level;
                }
            }
        }

        // Freeze every flow crossing a link at the level. Equality is
        // exact: both sides are the same float expression.
        newly.fill(0);
        let mut any = false;
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let binding = f.as_ref().iter().any(|&l| {
                unfrozen[l] > 0 && (caps[l] - used[l]).max(0.0) / unfrozen[l] as f64 == level
            });
            if binding {
                frozen[i] = true;
                rates[i] = level;
                remaining -= 1;
                any = true;
                for &l in f.as_ref() {
                    newly[l] += 1;
                }
            }
        }
        // Usage grows by count × level, an order-free product.
        for l in 0..n_links {
            if newly[l] > 0 {
                used[l] += newly[l] as f64 * level;
                unfrozen[l] -= newly[l];
            }
        }
        assert!(any, "progressive filling must freeze at least one flow per round");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rates_of(caps: &[f64], flows: &[Vec<usize>]) -> Vec<f64> {
        let mut rates = Vec::new();
        max_min_rates(caps, flows, &mut rates);
        rates
    }

    #[test]
    fn solo_flow_gets_the_full_link_exactly() {
        let rates = rates_of(&[12.5e9], &[vec![0]]);
        assert_eq!(rates, vec![12.5e9]);
    }

    #[test]
    fn equal_flows_split_a_link_evenly() {
        let rates = rates_of(&[10.0], &[vec![0], vec![0]]);
        assert_eq!(rates, vec![5.0, 5.0]);
    }

    #[test]
    fn classic_three_flow_two_link_example() {
        // Flow 0 crosses both links, flows 1 and 2 one each. Link 0 has
        // capacity 1, link 1 capacity 2. Max-min: f0 = f1 = 0.5 (link 0
        // saturates first), then f2 fills link 1's slack to 1.5.
        let rates = rates_of(&[1.0, 2.0], &[vec![0, 1], vec![0], vec![1]]);
        assert_eq!(rates, vec![0.5, 0.5, 1.5]);
    }

    #[test]
    fn bottleneck_flow_does_not_drag_down_uncontended_links() {
        let rates = rates_of(&[1.0, 100.0], &[vec![0], vec![1]]);
        assert_eq!(rates, vec![1.0, 100.0]);
    }

    /// Brute-force oracle: simultaneous ε-stepping progressive filling.
    /// Every unfrozen flow grows by `step` if all its links have room,
    /// else freezes. Converges to max-min within O(step).
    fn oracle(caps: &[f64], flows: &[Vec<usize>], step: f64) -> Vec<f64> {
        let mut rates = vec![0.0f64; flows.len()];
        let mut frozen = vec![false; flows.len()];
        loop {
            let mut used = vec![0.0f64; caps.len()];
            for (i, f) in flows.iter().enumerate() {
                for &l in f {
                    used[l] += rates[i];
                }
            }
            let mut grew = false;
            for (i, f) in flows.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                if f.iter().all(|&l| used[l] + step <= caps[l]) {
                    rates[i] += step;
                    grew = true;
                } else {
                    frozen[i] = true;
                }
            }
            if !grew {
                return rates;
            }
        }
    }

    /// Builds 1–3 links with capacities in [1, 10] and flows each
    /// crossing a random non-empty link subset, from raw generated parts
    /// (raw link indices are folded modulo the link count).
    fn build_case(
        n_links: usize,
        caps_raw: Vec<f64>,
        flows_raw: Vec<Vec<usize>>,
    ) -> (Vec<f64>, Vec<Vec<usize>>) {
        let caps = caps_raw[..n_links].to_vec();
        let flows = flows_raw
            .into_iter()
            .map(|ls| {
                let mut ls: Vec<usize> = ls.into_iter().map(|l| l % n_links).collect();
                ls.sort_unstable();
                ls.dedup();
                ls
            })
            .collect();
        (caps, flows)
    }

    proptest! {
        #[test]
        fn conservation_no_link_over_capacity(
            n_links in 1usize..4,
            caps_raw in proptest::collection::vec(1.0f64..10.0, 3..4),
            flows_raw in proptest::collection::vec(
                proptest::collection::vec(0usize..3, 1..4), 1..7),
        ) {
            let (caps, flows) = build_case(n_links, caps_raw, flows_raw);
            let rates = rates_of(&caps, &flows);
            for (l, &cap) in caps.iter().enumerate() {
                let load: f64 = flows
                    .iter()
                    .zip(&rates)
                    .filter(|(f, _)| f.contains(&l))
                    .map(|(_, &r)| r)
                    .sum();
                prop_assert!(
                    load <= cap * (1.0 + 1e-9),
                    "link {} carries {} over capacity {}", l, load, cap
                );
            }
        }

        #[test]
        fn allocation_matches_water_filling_oracle(
            n_links in 1usize..4,
            caps_raw in proptest::collection::vec(1.0f64..10.0, 3..4),
            flows_raw in proptest::collection::vec(
                proptest::collection::vec(0usize..3, 1..4), 1..7),
        ) {
            let (caps, flows) = build_case(n_links, caps_raw, flows_raw);
            let rates = rates_of(&caps, &flows);
            let expected = oracle(&caps, &flows, 1e-3);
            for (i, (&got, &want)) in rates.iter().zip(&expected).enumerate() {
                prop_assert!(
                    (got - want).abs() <= 1e-2 + 1e-2 * want,
                    "flow {}: progressive filling {} vs oracle {}", i, got, want
                );
            }
        }

        #[test]
        fn allocation_is_insertion_order_independent(
            n_links in 1usize..4,
            caps_raw in proptest::collection::vec(1.0f64..10.0, 3..4),
            flows_raw in proptest::collection::vec(
                proptest::collection::vec(0usize..3, 1..4), 1..7),
            seed in 0usize..24,
        ) {
            let (caps, flows) = build_case(n_links, caps_raw, flows_raw);
            let baseline = rates_of(&caps, &flows);
            // A deterministic permutation derived from the seed.
            let mut order: Vec<usize> = (0..flows.len()).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, (seed + i * 7) % (i + 1));
            }
            let permuted: Vec<Vec<usize>> = order.iter().map(|&i| flows[i].clone()).collect();
            let rates = rates_of(&caps, &permuted);
            for (pos, &orig) in order.iter().enumerate() {
                prop_assert_eq!(rates[pos].to_bits(), baseline[orig].to_bits());
            }
        }
    }
}
