//! Event-driven replay of concurrent flows under max-min fair sharing.
//!
//! [`FlowSim`] tracks every in-flight [`FlowProgram`] against one
//! [`Topology`]'s link tiers. Each join, leave, or phase change triggers
//! a *refill*: rates are reallocated by [`max_min_rates`] and every
//! draining flow's completion is re-projected linearly from its remaining
//! work — no per-byte stepping, `O(flows × links)` per refill.
//!
//! A solo flow drains at the full effective bandwidth, so its finish
//! time reproduces the closed-form phase cost bit-for-bit (same float
//! expression, same nanosecond quantisation) — the equivalence anchor
//! the golden tests pin down.

use vtrain_model::TimeNs;

use super::fair::max_min_rates;
use super::program::FlowProgram;
use crate::topology::{TierSpec, Topology};

/// Identifies one in-flight flow; stable until the flow completes, then
/// recycled.
pub type FlowId = usize;

#[derive(Clone, Copy, Debug)]
enum PhaseState {
    /// Paying the tier's base latency; holds no bandwidth.
    Delay { until: TimeNs },
    /// Draining `remaining` bytes of work at the allocated rate.
    /// `projected` is the completion time under the current allocation
    /// (`None` only transiently inside `advance`, before the refill).
    Drain { remaining: f64, projected: Option<TimeNs> },
}

#[derive(Clone, Debug)]
struct FlowState {
    program: FlowProgram,
    phase: usize,
    state: PhaseState,
}

/// Deterministic progressive-filling fair-sharing simulator.
pub struct FlowSim {
    tiers: Vec<TierSpec>,
    flows: Vec<Option<FlowState>>,
    free: Vec<usize>,
    rates: Vec<f64>,
    now: TimeNs,
    refills: u64,
    active: usize,
    max_active: usize,
    // Scratch buffers reused across refills.
    link_sets: Vec<[usize; 1]>,
    drain_slots: Vec<usize>,
    drain_rates: Vec<f64>,
}

impl FlowSim {
    /// Creates a simulator over `topology`'s tiers; link `l` has capacity
    /// `tiers[l].effective_bandwidth()`.
    pub fn new(topology: &Topology) -> Self {
        let tiers: Vec<TierSpec> = (0..topology.num_tiers()).map(|t| *topology.tier(t)).collect();
        FlowSim {
            tiers,
            flows: Vec::new(),
            free: Vec::new(),
            rates: Vec::new(),
            now: TimeNs::ZERO,
            refills: 0,
            active: 0,
            max_active: 0,
            link_sets: Vec::new(),
            drain_slots: Vec::new(),
            drain_rates: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> TimeNs {
        self.now
    }

    /// Flows currently in flight.
    pub fn active(&self) -> usize {
        self.active
    }

    /// High-water mark of concurrent flows.
    pub fn max_active(&self) -> usize {
        self.max_active
    }

    /// Refills performed (rate reallocations on join/leave/phase change).
    pub fn refills(&self) -> u64 {
        self.refills
    }

    /// Per-tier utilisation under the current allocation: sum of draining
    /// rates over effective bandwidth, in `[0, 1]`.
    pub fn utilization(&self) -> Vec<f64> {
        let mut load = vec![0.0f64; self.tiers.len()];
        for (slot, flow) in self.flows.iter().enumerate() {
            if let Some(f) = flow {
                if let PhaseState::Drain { .. } = f.state {
                    load[self.tier_of(f)] += self.rates[slot];
                }
            }
        }
        load.iter().zip(&self.tiers).map(|(&l, t)| l / t.effective_bandwidth()).collect()
    }

    fn tier_of(&self, f: &FlowState) -> usize {
        f.program.phases[f.phase].tier.min(self.tiers.len() - 1)
    }

    /// Starts `program` at `now`, returning the flow's id.
    ///
    /// `now` must equal the simulator's clock unless the network is idle
    /// (an idle simulator fast-forwards). Callers interleave `start` with
    /// [`advance`](Self::advance) so this always holds.
    ///
    /// # Panics
    ///
    /// Panics if `program` is empty, or if `now` disagrees with the clock
    /// while flows are in flight.
    pub fn start(&mut self, now: TimeNs, program: FlowProgram) -> FlowId {
        assert!(!program.is_empty(), "cannot start an empty flow program");
        if self.active == 0 {
            assert!(now >= self.now, "time must not run backwards");
            self.now = now;
        } else {
            assert_eq!(now, self.now, "start() requires advance() to the start time first");
        }
        let first = program.phases[0];
        let state = if first.latency_rounds == 0 {
            PhaseState::Drain { remaining: first.work, projected: None }
        } else {
            PhaseState::Delay { until: self.delay_until(first.tier, first.latency_rounds) }
        };
        let flow = FlowState { program, phase: 0, state };
        let slot = match self.free.pop() {
            Some(slot) => {
                self.flows[slot] = Some(flow);
                slot
            }
            None => {
                self.flows.push(Some(flow));
                self.rates.push(0.0);
                self.flows.len() - 1
            }
        };
        self.active += 1;
        self.max_active = self.max_active.max(self.active);
        self.refill();
        slot
    }

    fn delay_until(&self, tier: usize, rounds: u32) -> TimeNs {
        let latency = self.tiers[tier.min(self.tiers.len() - 1)].base_latency;
        let mut until = self.now;
        for _ in 0..rounds {
            until += latency;
        }
        until
    }

    /// The next time anything changes: a delay expiring or a drain
    /// completing. `None` when the network is idle.
    pub fn next_event(&self) -> Option<TimeNs> {
        self.flows
            .iter()
            .flatten()
            .map(|f| match f.state {
                PhaseState::Delay { until } => until,
                PhaseState::Drain { projected, .. } => {
                    projected.expect("drains are projected outside advance()")
                }
            })
            .min()
    }

    /// Advances the clock to `to`, draining work at the current rates and
    /// processing every delay expiry and phase completion that lands
    /// exactly at `to`. Returns the flows that completed.
    ///
    /// # Panics
    ///
    /// Panics if `to` is in the past or skips past
    /// [`next_event`](Self::next_event).
    pub fn advance(&mut self, to: TimeNs) -> Vec<FlowId> {
        assert!(to >= self.now, "time must not run backwards");
        if let Some(event) = self.next_event() {
            assert!(to <= event, "advance() must not skip past the next event");
        }
        let dt = (to - self.now).as_secs_f64();
        let mut completed = Vec::new();
        let mut changed = false;

        for slot in 0..self.flows.len() {
            let Some(flow) = self.flows[slot].as_mut() else { continue };
            loop {
                match flow.state {
                    PhaseState::Delay { until } if until <= to => {
                        // The delay expires exactly at `to`; the drain
                        // gets its rate and projection from the refill.
                        let work = flow.program.phases[flow.phase].work;
                        flow.state = PhaseState::Drain { remaining: work, projected: None };
                        changed = true;
                        break;
                    }
                    PhaseState::Drain { projected: Some(projected), .. } if projected <= to => {
                        flow.phase += 1;
                        changed = true;
                        if flow.phase == flow.program.phases.len() {
                            self.flows[slot] = None;
                            self.free.push(slot);
                            self.rates[slot] = 0.0;
                            self.active -= 1;
                            completed.push(slot);
                            break;
                        }
                        let next = flow.program.phases[flow.phase];
                        if next.latency_rounds == 0 {
                            flow.state =
                                PhaseState::Drain { remaining: next.work, projected: None };
                            break;
                        }
                        let tier = next.tier.min(self.tiers.len() - 1);
                        let latency = self.tiers[tier].base_latency;
                        let mut until = to;
                        for _ in 0..next.latency_rounds {
                            until += latency;
                        }
                        flow.state = PhaseState::Delay { until };
                        // Loop again: a zero-latency tier expires at once.
                    }
                    PhaseState::Drain { ref mut remaining, .. } => {
                        if dt > 0.0 {
                            *remaining = (*remaining - self.rates[slot] * dt).max(0.0);
                        }
                        break;
                    }
                    PhaseState::Delay { .. } => break,
                }
            }
        }

        self.now = to;
        if changed {
            self.refill();
        }
        completed
    }

    /// Reallocates rates over the draining flows and re-projects their
    /// completions.
    fn refill(&mut self) {
        self.drain_slots.clear();
        self.link_sets.clear();
        for (slot, flow) in self.flows.iter().enumerate() {
            if let Some(f) = flow {
                if let PhaseState::Drain { .. } = f.state {
                    self.drain_slots.push(slot);
                    self.link_sets.push([self.tier_of(f)]);
                }
            }
        }
        let caps: Vec<f64> = self.tiers.iter().map(|t| t.effective_bandwidth()).collect();
        max_min_rates(&caps, &self.link_sets, &mut self.drain_rates);
        for (&slot, &rate) in self.drain_slots.iter().zip(&self.drain_rates) {
            self.rates[slot] = rate;
            let now = self.now;
            let flow = self.flows[slot].as_mut().expect("drain slot is occupied");
            if let PhaseState::Drain { remaining, ref mut projected } = flow.state {
                *projected = Some(now + TimeNs::from_secs_f64(remaining / rate));
            }
        }
        self.refills += 1;
    }

    /// Runs every in-flight flow to completion, returning the time the
    /// network goes idle (or `now` if it already is).
    pub fn drain_all(&mut self) -> TimeNs {
        while let Some(event) = self.next_event() {
            self.advance(event);
        }
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{self, Algorithm, Collective};
    use crate::topology::GroupPlacement;
    use vtrain_model::Bytes;

    fn p4d_like() -> Topology {
        Topology::two_tier(
            8,
            TierSpec::new(235e9, TimeNs::from_micros(8), 1.0),
            TierSpec::new(50e9, TimeNs::from_micros(20), 0.77),
        )
    }

    #[test]
    fn solo_flow_reproduces_closed_form_bit_for_bit() {
        let topo = p4d_like();
        let placement = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 4, racks: 1 };
        for algorithm in [Algorithm::Ring, Algorithm::Tree, Algorithm::Hierarchical] {
            for kind in [
                Collective::AllReduce,
                Collective::AllGather,
                Collective::ReduceScatter,
                Collective::AllToAll,
            ] {
                let bytes = Bytes::from_mib(96);
                let closed = collective::cost(&topo, placement, kind, algorithm, bytes).total();
                let program = collective::plan(&topo, placement, kind, algorithm, bytes);
                let mut sim = FlowSim::new(&topo);
                let id = sim.start(TimeNs::ZERO, program);
                let done = sim.drain_all();
                assert_eq!(sim.active(), 0);
                assert_eq!(
                    done, closed,
                    "{kind:?}/{algorithm:?}: flow replay {done} vs closed form {closed}"
                );
                let _ = id;
            }
        }
    }

    #[test]
    fn two_equal_flows_each_get_half_the_link() {
        let topo = p4d_like();
        let work = 1e9; // 1 GB on the inter-node tier.
        let program = || FlowProgram {
            phases: vec![super::super::FlowPhase { tier: 1, work, latency_rounds: 0 }],
        };
        // Solo drain time.
        let mut solo = FlowSim::new(&topo);
        solo.start(TimeNs::ZERO, program());
        let solo_done = solo.drain_all();

        // Two concurrent flows: each runs at half rate, finishing in ~2×.
        let mut sim = FlowSim::new(&topo);
        sim.start(TimeNs::ZERO, program());
        sim.start(TimeNs::ZERO, program());
        let done = sim.drain_all();
        let ratio = done.as_secs_f64() / solo_done.as_secs_f64();
        assert!((ratio - 2.0).abs() < 1e-9, "two equal flows should take 2× solo, got {ratio}");
        assert_eq!(sim.max_active(), 2);
        assert!(sim.refills() >= 2);
    }

    #[test]
    fn late_joiner_slows_the_incumbent_linearly() {
        let topo = p4d_like();
        let phase = |work: f64| FlowProgram {
            phases: vec![super::super::FlowPhase { tier: 1, work, latency_rounds: 0 }],
        };
        let cap = topo.tier(1).effective_bandwidth();
        let mut sim = FlowSim::new(&topo);
        sim.start(TimeNs::ZERO, phase(cap)); // 1 s of work solo.
                                             // Half a second in, a second identical flow joins.
        let half = TimeNs::from_millis(500);
        assert!(sim.advance(half).is_empty());
        sim.start(half, phase(cap));
        // Incumbent: 0.5 s left at half rate → finishes at 1.5 s.
        let first = sim.next_event().unwrap();
        assert_eq!(sim.advance(first), vec![0]);
        assert!((first.as_secs_f64() - 1.5).abs() < 1e-9, "incumbent at {first}");
        // Joiner: drains its remaining half at full rate → done at 2.0 s.
        let done = sim.drain_all();
        assert!((done.as_secs_f64() - 2.0).abs() < 1e-9, "joiner at {done}");
        assert_eq!(sim.active(), 0);
    }

    #[test]
    fn flows_on_different_tiers_do_not_contend() {
        let topo = p4d_like();
        let program = |tier: usize, work: f64| FlowProgram {
            phases: vec![super::super::FlowPhase { tier, work, latency_rounds: 0 }],
        };
        let mut sim = FlowSim::new(&topo);
        sim.start(TimeNs::ZERO, program(0, topo.tier(0).effective_bandwidth()));
        sim.start(TimeNs::ZERO, program(1, topo.tier(1).effective_bandwidth()));
        let util = sim.utilization();
        assert!((util[0] - 1.0).abs() < 1e-12 && (util[1] - 1.0).abs() < 1e-12, "{util:?}");
        let done = sim.drain_all();
        assert!((done.as_secs_f64() - 1.0).abs() < 1e-9, "both finish in 1 s, got {done}");
    }

    #[test]
    fn slots_are_recycled_after_completion() {
        let topo = p4d_like();
        let program = || FlowProgram {
            phases: vec![super::super::FlowPhase { tier: 1, work: 1e6, latency_rounds: 1 }],
        };
        let mut sim = FlowSim::new(&topo);
        let a = sim.start(TimeNs::ZERO, program());
        sim.drain_all();
        let b = sim.start(sim.now(), program());
        assert_eq!(a, b, "completed slots are reused");
        assert_eq!(sim.max_active(), 1);
    }
}
