//! Flow programs: the bandwidth-demand shape of one collective.
//!
//! [`collective::plan`](crate::collective::plan) compiles a collective
//! signature into a [`FlowProgram`] — an ordered list of [`FlowPhase`]s,
//! each demanding one link tier for a fixed amount of *work* (bytes ×
//! traffic factor). Pricing a program against a quiet topology gives the
//! closed-form cost; replaying it through [`FlowSim`](super::FlowSim)
//! gives the contention-aware cost.

use serde::{Deserialize, Serialize};

/// One phase of a collective's wire time: `work` bytes of traffic on a
/// single link `tier`, preceded by `latency_rounds` launches of that
/// tier's base latency.
///
/// `work` is the pre-multiplied product `bytes × traffic_factor` (e.g.
/// `S · 2(n−1)/n` for a ring All-Reduce). Storing the product — not the
/// factors — makes the no-contention drain `work / effective_bandwidth`
/// bit-identical to the closed-form phase cost.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowPhase {
    /// Link tier the phase occupies (0 = intra-node, 1 = inter-node,
    /// 2 = rack spine).
    pub tier: usize,
    /// Bytes of wire traffic: `bytes × traffic_factor`.
    pub work: f64,
    /// How many times the tier's base latency is paid before draining.
    pub latency_rounds: u32,
}

/// An ordered sequence of [`FlowPhase`]s; phases run strictly one after
/// another (hierarchical algorithms reduce up, ring at the top, gather
/// back down).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FlowProgram {
    /// The phases, in execution order.
    pub phases: Vec<FlowPhase>,
}

impl FlowProgram {
    /// True when the program carries no phases at all (zero-byte
    /// collectives compile to this; they cost nothing on any backend).
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Total wire work across all phases, in bytes.
    pub fn total_work(&self) -> f64 {
        self.phases.iter().map(|p| p.work).sum()
    }
}
