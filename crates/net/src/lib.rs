//! # vtrain-net
//!
//! Hierarchical interconnect topology and the pluggable
//! collective-algorithm cost library.
//!
//! The paper models every collective with one flat formula — Equation (1),
//! `t = S/B · 2(n-1)/n` with a per-tier bandwidth-effectiveness factor `α`
//! (§IV) — which cannot distinguish an All-Reduce that stays inside an
//! NVLink node from one that crosses the InfiniBand fabric, let alone a
//! rack boundary. This crate supplies the missing structure:
//!
//! * [`Topology`] — a GPU → node → rack → cluster hierarchy where each
//!   tier carries its own bandwidth, base latency, and `α`
//!   ([`TierSpec`]). A single-tier topology reproduces the paper's flat
//!   model *bit-identically* (ring All-Reduce over one tier computes the
//!   exact Equation (1) expression — see the golden tests).
//! * [`GroupPlacement`] — how one process group's ranks spread over the
//!   hierarchy (ranks per node, nodes per rack, racks), the geometric
//!   input every cost formula needs.
//! * [`collective`] — analytical cost models for ring, tree, and
//!   hierarchical All-Reduce, All-Gather, Reduce-Scatter, and All-to-All,
//!   each returning a per-tier [`CostBreakdown`], plus a deterministic
//!   [`select`](collective::select) policy choosing an algorithm per
//!   collective signature.
//! * [`flow`] — the contention regime the closed forms cannot express: a
//!   progressive-filling max-min fair-sharing simulator ([`FlowSim`])
//!   where concurrent transfers split a tier's effective bandwidth,
//!   selected per estimate by [`NetworkBackend`]. With a single flow in
//!   flight it reproduces the closed-form costs bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collective;
pub mod flow;
mod topology;

pub use collective::{Algorithm, Collective, CostBreakdown, PhaseCost};
pub use flow::{FlowPhase, FlowProgram, FlowSim, NetworkBackend};
pub use topology::{GroupPlacement, TierSpec, Topology};
