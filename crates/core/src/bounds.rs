//! Admissible analytic lower bounds on Predicted iteration time — the
//! roofline floor that licenses bound-guided design-space pruning
//! ([`SweepGoal`](crate::search::SweepGoal)).
//!
//! The replay's iteration time can never undercut the busy time of any
//! single (device, stream) timeline, so a sound floor follows from
//! pricing each pipeline stage's two streams *below* their true cost and
//! taking the maximum — no lowering, no graph, `O(p)` per plan:
//!
//! * **Compute stream** — every compute kernel's modeled latency is at
//!   least `max(flops / peak, bytes / HBM-bandwidth)` (the device model
//!   applies efficiency factors `< 1` and a positive ramp on top of
//!   exactly this roofline), so summing that roofline over the stage's
//!   kernel decompositions — layer blocks × micro-batches, endpoint
//!   operators, the fused Adam update — lower-bounds its compute busy
//!   time. TP All-Reduces serialize on the same stream and are priced
//!   *exactly* via the estimator's [`CommModel`], so they add in full.
//! * **Communication stream** — pipeline sends and DP gradient
//!   All-Reduces are priced exactly from the same [`stage_comm_ops`]
//!   shapes the builder emits, and their serialized sum bounds the comm
//!   timeline.
//!
//! Admissibility (`floor ≤ simulated iteration time` on every valid
//! plan) is proven by the property test below; the sweep's goal modes
//! additionally prove end-to-end that pruning never changes winners.

use vtrain_gpu::KernelKind;
use vtrain_graph::{plan_signatures, stage_comm_ops, stage_weight_params, CompKind, GraphOptions};
use vtrain_model::{ModelConfig, TimeNs};
use vtrain_parallel::{layer_partition, GpuSpec, ParallelConfig};
use vtrain_profile::{decompose, CommModel};

/// Sums the roofline floor of one operator execution, in seconds: GEMMs
/// take `max(flops / peak, bytes / bandwidth)`, bandwidth-bound kernels
/// `bytes / bandwidth` (their flops term can exceed the byte term on no
/// modeled GPU, so dropping it keeps the floor unconditionally sound).
fn op_floor_secs(sig: &vtrain_graph::OpSignature, peak: f64, membw: f64) -> f64 {
    decompose(sig)
        .iter()
        .map(|k| match k {
            KernelKind::Gemm { .. } => (k.flops() / peak).max(k.bytes() / membw),
            other => other.bytes() / membw,
        })
        .sum()
}

/// An admissible lower bound on the Predicted iteration time of
/// `(model, plan)` on `gpu`, with communication priced by `comm` (flat or
/// topology-aware — both regimes are bounded exactly since the very same
/// operator shapes are priced).
///
/// # Panics
///
/// Same preconditions as lowering: the plan must be valid for the model
/// (in particular `t` divides the head count and hidden size, and the
/// pipeline is no deeper than the layer count).
pub fn iteration_floor(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    gpu: &GpuSpec,
    comm: &CommModel,
) -> TimeNs {
    let peak = gpu.peak_fp16_flops;
    let membw = gpu.memory_bandwidth;
    let p = plan.pipeline();
    let n_micro = plan.num_micro_batches() as u64;
    let partition = layer_partition(model.num_layers(), p);

    // One floor per operator class, from the exact signatures the builder
    // emits (weight updates are per-stage and handled closed-form below).
    let mut layer_floor = 0.0f64; // MhaFwd + FfnFwd + MhaBwd + FfnBwd
    let mut embedding_floor = 0.0f64; // EmbeddingFwd + EmbeddingBwd
    let mut lm_head_floor = 0.0f64; // LmHeadFwd + LmHeadBwd
    for sig in plan_signatures(model, plan, opts) {
        match sig.kind {
            CompKind::MhaFwd | CompKind::FfnFwd | CompKind::MhaBwd | CompKind::FfnBwd => {
                layer_floor += op_floor_secs(&sig, peak, membw);
            }
            CompKind::EmbeddingFwd | CompKind::EmbeddingBwd => {
                embedding_floor += op_floor_secs(&sig, peak, membw);
            }
            CompKind::LmHeadFwd | CompKind::LmHeadBwd => {
                lm_head_floor += op_floor_secs(&sig, peak, membw);
            }
            CompKind::WeightUpdate => {}
        }
    }

    let mut floor = TimeNs::ZERO;
    for (stage, layers) in partition.iter().enumerate() {
        let layers_here = layers.len() as f64;

        // Compute stream: kernels roofline + exact TP All-Reduce time.
        let mut compute_secs = n_micro as f64 * layers_here * layer_floor;
        if stage == 0 {
            compute_secs += n_micro as f64 * embedding_floor;
        }
        if stage == p - 1 {
            compute_secs += n_micro as f64 * lm_head_floor;
        }
        // The per-stage fused Adam update: parameter count and byte
        // traffic both come from the builder's / device model's own
        // accounting, so the floor cannot drift from what is simulated.
        let params = stage_weight_params(model, plan, stage);
        compute_secs += KernelKind::AdamUpdate { params }.bytes() / membw;
        // Truncate on conversion so quantization can never push the
        // floor above the true busy time.
        let mut compute = TimeNs::from_nanos((compute_secs * 1e9) as u64);

        let ops = stage_comm_ops(model, plan, opts, stage);
        if let Some(tp) = &ops.tp_all_reduce {
            let per = comm.latency(tp).as_nanos();
            compute += TimeNs::from_nanos(per * n_micro * ops.tp_per_micro_batch as u64);
        }

        // Communication stream: exact serialized sends + DP All-Reduces.
        let mut comm_ns = 0u64;
        for send in [&ops.fwd_send, &ops.bwd_send].into_iter().flatten() {
            comm_ns += comm.latency(send).as_nanos() * n_micro;
        }
        for ar in &ops.dp_all_reduces {
            comm_ns += comm.latency(ar).as_nanos();
        }

        floor = floor.max(compute).max(TimeNs::from_nanos(comm_ns));
    }
    floor
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use vtrain_model::presets;
    use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule};

    use super::*;
    use crate::estimate::Estimator;

    fn plan(
        t: usize,
        d: usize,
        p: usize,
        m: usize,
        b: usize,
        sched: PipelineSchedule,
        bucketing: bool,
    ) -> ParallelConfig {
        ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(m)
            .global_batch(b)
            .schedule(sched)
            .gradient_bucketing(bucketing)
            .build()
            .unwrap()
    }

    #[test]
    fn floor_is_positive_and_usefully_tight_on_a_compute_bound_point() {
        let est = Estimator::builder(ClusterSpec::aws_p4d(8)).build();
        let model = presets::megatron("1.7B");
        let p = plan(1, 1, 1, 1, 4, PipelineSchedule::OneFOneB, true);
        let bound = est.lower_bound(&model, &p);
        let actual = est.estimate(&model, &p).unwrap().iteration_time;
        assert!(bound > TimeNs::ZERO);
        assert!(bound <= actual, "bound {bound} vs actual {actual}");
        // A single-GPU point is pure serialized compute: the roofline
        // floor must capture a substantial fraction of it, otherwise
        // bound-guided pruning has no power.
        let ratio = bound.as_secs_f64() / actual.as_secs_f64();
        assert!(ratio > 0.3, "floor captures only {ratio:.3} of the iteration");
    }

    #[test]
    fn floor_is_admissible_for_topology_aware_estimators() {
        let cluster = ClusterSpec::aws_p4d(64);
        let est = Estimator::builder(cluster.clone()).topology(cluster.topology(1.0)).build();
        let model = presets::megatron("1.7B");
        for cfg in [
            plan(2, 16, 1, 1, 16, PipelineSchedule::OneFOneB, true),
            plan(8, 8, 1, 2, 128, PipelineSchedule::OneFOneB, true),
            plan(2, 2, 4, 1, 8, PipelineSchedule::GPipe, false),
        ] {
            est.validate(&model, &cfg).unwrap();
            let bound = est.lower_bound(&model, &cfg);
            let actual = est.estimate(&model, &cfg).unwrap().iteration_time;
            assert!(bound <= actual, "{cfg}: bound {bound} vs actual {actual}");
            assert!(bound > TimeNs::ZERO, "{cfg}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

        /// Admissibility: on random valid plans the analytic floor never
        /// exceeds the simulated Predicted iteration time.
        #[test]
        fn floor_never_exceeds_simulated_time(
            t_exp in 0usize..=2,
            d_exp in 0usize..=3,
            p in 1usize..=6,
            m_exp in 0usize..=1,
            k in 1usize..=3,
            flags in 0u32..4,
        ) {
            let (gpipe, bucketing) = (flags & 1 != 0, flags & 2 != 0);
            let (t, d, m) = (1usize << t_exp, 1usize << d_exp, 1usize << m_exp);
            let b = d * m * k;
            let sched = if gpipe { PipelineSchedule::GPipe } else { PipelineSchedule::OneFOneB };
            let cfg = plan(t, d, p, m, b, sched, bucketing);
            let model = presets::megatron("1.7B");
            let est = Estimator::builder(ClusterSpec::aws_p4d(512)).build();
            prop_assume!(est.validate(&model, &cfg).is_ok());
            let bound = est.lower_bound(&model, &cfg);
            let actual = est.estimate(&model, &cfg).unwrap().iteration_time;
            prop_assert!(
                bound <= actual,
                "plan {} bound {} exceeds simulated {}", cfg, bound, actual
            );
        }
    }
}
