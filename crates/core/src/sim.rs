//! Algorithm 1: estimating single-iteration training time by replaying the
//! task-granularity execution graph over per-GPU timelines.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};
use vtrain_gpu::NoiseModel;
use vtrain_graph::{CommKind, CommScope};
use vtrain_model::TimeNs;

use crate::task_graph::{TaskGraph, TaskKind};

/// Execution mode of the replay.
#[derive(Clone, Copy, Debug)]
pub enum SimMode<'a> {
    /// Clean lookup-table replay — vTrain's prediction.
    Predicted,
    /// Ground-truth emulation standing in for a real measured run: applies
    /// the [`NoiseModel`]'s launch overheads, jitter, contention inflation,
    /// interference, and straggler effects.
    Measured {
        /// The fidelity layer.
        noise: &'a NoiseModel,
        /// Server nodes occupied by the plan (straggler pool size).
        nodes: usize,
    },
}

/// Busy-time totals summed across all simulated devices, by category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyBreakdown {
    /// Compute-kernel time.
    pub compute: TimeNs,
    /// Tensor-parallel All-Reduce time (on the critical compute stream).
    pub tp_comm: TimeNs,
    /// Data-parallel gradient All-Reduce time (comm stream).
    pub dp_comm: TimeNs,
    /// Pipeline Send-Receive time (comm stream).
    pub pp_comm: TimeNs,
}

impl BusyBreakdown {
    /// All communication categories combined.
    pub fn total_comm(&self) -> TimeNs {
        self.tp_comm + self.dp_comm + self.pp_comm
    }
}

/// Result of one replay.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SimReport {
    /// Predicted (or emulated) single-iteration training time — the maximum
    /// over all device timelines (Algorithm 1 line 22).
    pub iteration_time: TimeNs,
    /// Busy time by category, summed over devices.
    pub busy: BusyBreakdown,
    /// Per-device compute-stream busy time (bubble analysis).
    pub device_busy: Vec<TimeNs>,
    /// Number of tasks replayed.
    pub tasks_executed: usize,
}

impl SimReport {
    /// Mean fraction of wall-clock time each device's compute stream was
    /// busy (1 − pipeline-bubble fraction).
    pub fn mean_device_occupancy(&self) -> f64 {
        if self.device_busy.is_empty() || self.iteration_time == TimeNs::ZERO {
            return 0.0;
        }
        let total: f64 = self.device_busy.iter().map(|t| t.as_secs_f64()).sum();
        total / (self.device_busy.len() as f64 * self.iteration_time.as_secs_f64())
    }
}

/// Replays the task graph (Algorithm 1 of the paper).
///
/// Tasks are fetched in FIFO order from a ready queue seeded with all
/// zero-dependency tasks; each task starts at the later of its stream's
/// availability and its dependencies' completion; finishing a task releases
/// its children. The per-device compute and communication streams advance
/// independently, modeling computation/communication overlap (Fig. 5).
///
/// # Panics
///
/// Panics if the graph contains a dependency cycle (some task never becomes
/// ready).
pub fn simulate(graph: &TaskGraph, mode: SimMode<'_>) -> SimReport {
    let n = graph.len();
    let mut in_degree = graph.in_degrees();
    let mut ready_at = vec![TimeNs::ZERO; n];
    // Timeline T[i] per (device, stream).
    let mut stream_avail = vec![[TimeNs::ZERO; 2]; graph.num_devices() as usize];
    let mut device_busy = vec![TimeNs::ZERO; graph.num_devices() as usize];

    let mut queue: VecDeque<u32> =
        (0..n as u32).filter(|&i| in_degree[i as usize] == 0).collect();

    let mut report = SimReport { device_busy: vec![TimeNs::ZERO; graph.num_devices() as usize], ..SimReport::default() };
    let mut executed = 0usize;

    while let Some(u) = queue.pop_front() {
        let task = &graph.tasks()[u as usize];
        let duration = effective_duration(u, task.duration, &task.kind, &mode);
        let dev = task.device as usize;
        let stream = task.stream as usize;
        let start = ready_at[u as usize].max(stream_avail[dev][stream]);
        let finish = start + duration;
        stream_avail[dev][stream] = finish;
        report.iteration_time = report.iteration_time.max(finish);

        match task.kind {
            TaskKind::Compute { .. } => {
                report.busy.compute += duration;
                device_busy[dev] += duration;
            }
            TaskKind::Comm { kind, .. } => match kind {
                CommKind::TpAllReduce => {
                    report.busy.tp_comm += duration;
                    device_busy[dev] += duration;
                }
                CommKind::DpAllReduce => report.busy.dp_comm += duration,
                CommKind::PpSendRecv => report.busy.pp_comm += duration,
            },
        }

        for &c in graph.children(u) {
            ready_at[c as usize] = ready_at[c as usize].max(finish);
            in_degree[c as usize] -= 1;
            if in_degree[c as usize] == 0 {
                queue.push_back(c);
            }
        }
        executed += 1;
    }

    assert_eq!(executed, n, "task graph contains a cycle: {} of {n} tasks ran", executed);
    report.tasks_executed = executed;
    report.device_busy = device_busy;
    report
}

/// Applies the mode's perturbations to one task's clean duration.
fn effective_duration(
    task_id: u32,
    clean: TimeNs,
    kind: &TaskKind,
    mode: &SimMode<'_>,
) -> TimeNs {
    match mode {
        SimMode::Predicted => clean,
        SimMode::Measured { noise, nodes } => match *kind {
            TaskKind::Compute { kernels } => {
                let extra_launches = kernels.saturating_sub(1) as u64;
                noise.compute_time(task_id as u64, clean)
                    + TimeNs::from_nanos(
                        noise.config().launch_overhead.as_nanos() * extra_launches,
                    )
            }
            TaskKind::Comm { kind, scope, overlappable, concurrent_groups } => {
                // TP All-Reduces interleave with the surrounding kernels
                // (the paper's dominant single-node error source); bucketed
                // DP All-Reduces overlap backward compute.
                let overlaps = matches!(kind, CommKind::TpAllReduce) || overlappable;
                let mut t = noise.comm_time(
                    task_id as u64,
                    clean,
                    overlaps,
                    concurrent_groups as usize,
                );
                if kind == CommKind::DpAllReduce && scope == CommScope::InterNode {
                    // Synchronization across nodes is paced by stragglers.
                    t = t.scale(noise.sync_straggler_factor((*nodes).min(64)));
                }
                t
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_gpu::NoiseConfig;
    use vtrain_graph::{build_op_graph, GraphOptions};
    use vtrain_model::presets;
    use vtrain_parallel::{ClusterSpec, GpuSpec, ParallelConfig, PipelineSchedule};
    use vtrain_profile::{CommModel, Profiler};

    fn lower(
        t: usize,
        d: usize,
        p: usize,
        m: usize,
        b: usize,
        sched: PipelineSchedule,
        bucketing: bool,
    ) -> TaskGraph {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(m)
            .global_batch(b)
            .schedule(sched)
            .gradient_bucketing(bucketing)
            .build()
            .unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let table = Profiler::new(GpuSpec::a100_40gb()).profile(&graph.necessary_operators());
        let comm = CommModel::new(&ClusterSpec::aws_p4d(256), 1.0);
        TaskGraph::lower(&graph, &table, &comm).unwrap()
    }

    #[test]
    fn replay_is_deterministic() {
        let tg = lower(2, 2, 2, 1, 8, PipelineSchedule::OneFOneB, true);
        let a = simulate(&tg, SimMode::Predicted);
        let b = simulate(&tg, SimMode::Predicted);
        assert_eq!(a.iteration_time, b.iteration_time);
        assert_eq!(a.busy, b.busy);
    }

    #[test]
    fn iteration_time_bounds() {
        let tg = lower(2, 2, 2, 1, 8, PipelineSchedule::OneFOneB, true);
        let r = simulate(&tg, SimMode::Predicted);
        assert_eq!(r.tasks_executed, tg.len());
        // Never below the busiest device, never above the serial sum.
        let serial: TimeNs = tg.tasks().iter().map(|t| t.duration).sum();
        let busiest = r.device_busy.iter().copied().max().unwrap();
        assert!(r.iteration_time >= busiest);
        assert!(r.iteration_time <= serial);
        assert!(r.mean_device_occupancy() > 0.0 && r.mean_device_occupancy() <= 1.0);
    }

    #[test]
    fn single_device_graph_time_is_serial_sum_of_compute_stream() {
        // p = 1, d = 1: everything serializes on one compute stream.
        let tg = lower(2, 1, 1, 1, 4, PipelineSchedule::OneFOneB, true);
        let r = simulate(&tg, SimMode::Predicted);
        let serial: TimeNs = tg.tasks().iter().map(|t| t.duration).sum();
        assert_eq!(r.iteration_time, serial);
    }

    #[test]
    fn more_micro_batches_shrink_pipeline_bubble() {
        // Same total work (B constant), more micro-batches ⇒ smaller bubble
        // fraction under GPipe (§II-B).
        let few = simulate(&lower(1, 1, 4, 8, 16, PipelineSchedule::GPipe, true), SimMode::Predicted);
        let many = simulate(&lower(1, 1, 4, 1, 16, PipelineSchedule::GPipe, true), SimMode::Predicted);
        assert!(
            many.mean_device_occupancy() > few.mean_device_occupancy(),
            "16 micro-batches should fill the pipeline better than 2"
        );
    }

    #[test]
    fn one_f_one_b_no_slower_than_gpipe() {
        let gpipe = simulate(&lower(1, 1, 4, 1, 16, PipelineSchedule::GPipe, true), SimMode::Predicted);
        let fb = simulate(&lower(1, 1, 4, 1, 16, PipelineSchedule::OneFOneB, true), SimMode::Predicted);
        // Equal-bubble in the ideal model; 1F1B must never be slower.
        assert!(fb.iteration_time <= gpipe.iteration_time.scale(1.001));
    }

    #[test]
    fn bucketing_overlap_helps_or_ties() {
        let with = simulate(&lower(1, 8, 1, 1, 16, PipelineSchedule::OneFOneB, true), SimMode::Predicted);
        let without =
            simulate(&lower(1, 8, 1, 1, 16, PipelineSchedule::OneFOneB, false), SimMode::Predicted);
        assert!(
            with.iteration_time <= without.iteration_time,
            "gradient bucketing must not slow the iteration: {} vs {}",
            with.iteration_time,
            without.iteration_time
        );
    }

    #[test]
    fn measured_mode_is_slower_than_predicted() {
        let tg = lower(4, 2, 2, 1, 8, PipelineSchedule::OneFOneB, true);
        let predicted = simulate(&tg, SimMode::Predicted);
        let noise = NoiseModel::new(NoiseConfig::default());
        let measured = simulate(&tg, SimMode::Measured { noise: &noise, nodes: 2 });
        assert!(
            measured.iteration_time > predicted.iteration_time,
            "launch overhead + contention must inflate the measured run"
        );
        // ... but within a sane envelope (< 2×).
        assert!(measured.iteration_time < predicted.iteration_time.scale(2.0));
    }

    #[test]
    fn measured_mode_is_deterministic() {
        let tg = lower(4, 2, 2, 1, 8, PipelineSchedule::OneFOneB, true);
        let noise = NoiseModel::new(NoiseConfig::default());
        let a = simulate(&tg, SimMode::Measured { noise: &noise, nodes: 2 });
        let b = simulate(&tg, SimMode::Measured { noise: &noise, nodes: 2 });
        assert_eq!(a.iteration_time, b.iteration_time);
    }
}
