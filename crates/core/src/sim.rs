//! Algorithm 1: estimating single-iteration training time by replaying the
//! task-granularity execution graph over per-GPU timelines.
//!
//! The replay runs on the shared [`vtrain_engine`] discrete-event kernel:
//! tasks become engine events, per-GPU compute/communication streams become
//! [`TimelineSet`] resources. Algorithm 1 is a *logical-time* replay — the
//! paper processes the ready queue in FIFO order, not in physical-time
//! order — so every readiness event is scheduled at the same logical tick
//! and the engine's sequence-number tie-break reproduces the FIFO queue
//! exactly, while physical start/finish times accumulate on the stream
//! timelines. This keeps the port bit-identical to the paper's pseudocode
//! (proven by the golden-equivalence property test below).

use serde::{Deserialize, Serialize};
use vtrain_engine::resource::TimelineSet;
use vtrain_engine::{Handler, Simulation};
use vtrain_gpu::NoiseModel;
use vtrain_graph::{CommKind, CommScope};
use vtrain_model::TimeNs;

use crate::task_graph::{TaskGraph, TaskKind};

/// Execution mode of the replay.
#[derive(Clone, Copy, Debug)]
pub enum SimMode<'a> {
    /// Clean lookup-table replay — vTrain's prediction.
    Predicted,
    /// Ground-truth emulation standing in for a real measured run: applies
    /// the [`NoiseModel`]'s launch overheads, jitter, contention inflation,
    /// interference, and straggler effects.
    Measured {
        /// The fidelity layer.
        noise: &'a NoiseModel,
        /// Server nodes occupied by the plan (straggler pool size).
        nodes: usize,
    },
}

/// Busy-time totals summed across all simulated devices, by category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BusyBreakdown {
    /// Compute-kernel time.
    pub compute: TimeNs,
    /// Tensor-parallel All-Reduce time (on the critical compute stream).
    pub tp_comm: TimeNs,
    /// Data-parallel gradient All-Reduce time (comm stream).
    pub dp_comm: TimeNs,
    /// Pipeline Send-Receive time (comm stream).
    pub pp_comm: TimeNs,
}

impl BusyBreakdown {
    /// All communication categories combined.
    pub fn total_comm(&self) -> TimeNs {
        self.tp_comm + self.dp_comm + self.pp_comm
    }
}

/// Result of one replay.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SimReport {
    /// Predicted (or emulated) single-iteration training time — the maximum
    /// over all device timelines (Algorithm 1 line 22).
    pub iteration_time: TimeNs,
    /// Busy time by category, summed over devices.
    pub busy: BusyBreakdown,
    /// Per-device compute-stream busy time (bubble analysis).
    pub device_busy: Vec<TimeNs>,
    /// Number of tasks replayed.
    pub tasks_executed: usize,
}

impl SimReport {
    /// Mean fraction of wall-clock time each device's compute stream was
    /// busy (1 − pipeline-bubble fraction).
    pub fn mean_device_occupancy(&self) -> f64 {
        if self.device_busy.is_empty() || self.iteration_time == TimeNs::ZERO {
            return 0.0;
        }
        let total: f64 = self.device_busy.iter().map(|t| t.as_secs_f64()).sum();
        total / (self.device_busy.len() as f64 * self.iteration_time.as_secs_f64())
    }
}

/// The engine event of the replay: task `0..n` has all dependencies
/// satisfied and enters the ready queue.
struct TaskReady(u32);

/// Per-task observer of a traced replay: `(task id, start, finish)` on
/// the simulated clock, invoked once per executed task.
pub type TaskTrace<'t> = &'t mut dyn FnMut(u32, TimeNs, TimeNs);

/// Reusable buffers of the replay — Algorithm 1's `ref`/`ready` arrays,
/// the dataflow traversal stack, the chain-check scratch, and the engine
/// simulation itself. A sweep worker threads one of these through every
/// point it evaluates, so steady-state replays perform no per-point heap
/// allocation in either the dataflow or the engine path.
#[derive(Default)]
pub struct SimScratch {
    in_degree: Vec<u32>,
    ready_at: Vec<TimeNs>,
    stack: Vec<u32>,
    chain_last: Vec<Option<u32>>,
    engine: Simulation<TaskReady>,
    streams: TimelineSet,
}

/// Engine handler executing ready tasks over the per-(device, stream)
/// timelines.
struct Replay<'a, 'b, 't> {
    graph: &'a TaskGraph,
    mode: SimMode<'a>,
    in_degree: &'b mut [u32],
    /// Dependency-completion time per task (Algorithm 1's `ready`).
    ready_at: &'b mut [TimeNs],
    /// Per-(device, stream) availability — the engine resources.
    streams: &'b mut TimelineSet,
    device_busy: &'b mut [TimeNs],
    busy: BusyBreakdown,
    iteration_time: TimeNs,
    executed: usize,
    trace: Option<TaskTrace<'t>>,
}

impl Handler<TaskReady> for Replay<'_, '_, '_> {
    fn handle(&mut self, TaskReady(u): TaskReady, sim: &mut Simulation<TaskReady>) {
        let i = u as usize;
        let kind = self.graph.kinds()[i];
        let duration = effective_duration(u, self.graph.durations()[i], &kind, &self.mode);
        let dev = self.graph.devices()[i] as usize;
        let stream = self.graph.streams()[i] as usize;
        let reservation = self.streams.reserve(dev, stream, self.ready_at[i], duration);
        self.iteration_time = self.iteration_time.max(reservation.finish);
        if let Some(trace) = self.trace.as_mut() {
            trace(u, reservation.start, reservation.finish);
        }

        match kind {
            TaskKind::Compute { .. } => {
                self.busy.compute += duration;
                self.device_busy[dev] += duration;
            }
            TaskKind::Comm { kind, .. } => match kind {
                CommKind::TpAllReduce => {
                    self.busy.tp_comm += duration;
                    self.device_busy[dev] += duration;
                }
                CommKind::DpAllReduce => self.busy.dp_comm += duration,
                CommKind::PpSendRecv => self.busy.pp_comm += duration,
            },
        }

        for &c in self.graph.children(u) {
            self.ready_at[c as usize] = self.ready_at[c as usize].max(reservation.finish);
            self.in_degree[c as usize] -= 1;
            if self.in_degree[c as usize] == 0 {
                // All readiness events share one logical tick; the queue's
                // sequence tie-break makes dispatch order exactly FIFO.
                sim.schedule(TimeNs::ZERO, TaskReady(c));
            }
        }
        self.executed += 1;
    }
}

/// Replays the task graph (Algorithm 1 of the paper).
///
/// Tasks are dispatched in FIFO order of becoming ready, seeded with all
/// zero-dependency tasks; each task starts at the later of its stream's
/// availability and its dependencies' completion; finishing a task releases
/// its children. The per-device compute and communication streams advance
/// independently, modeling computation/communication overlap (Fig. 5).
///
/// When the graph is [stream-chained](TaskGraph::is_stream_chained) — true
/// for everything the graph builder produces — the FIFO schedule is fully
/// determined by the DAG and the replay runs on the allocation-light
/// dataflow fast path; otherwise it runs on the discrete-event engine.
/// Both paths produce bit-identical reports on chained graphs (see the
/// equivalence property test).
///
/// # Panics
///
/// Panics if the graph contains a dependency cycle (some task never becomes
/// ready).
pub fn simulate(graph: &TaskGraph, mode: SimMode<'_>) -> SimReport {
    let mut report = SimReport::default();
    simulate_into(graph, mode, &mut SimScratch::default(), &mut report);
    report
}

/// [`simulate`] over caller-owned scratch buffers, writing the result into
/// `report` (whose `device_busy` vector is reused). Repeated calls on
/// graphs of non-increasing size perform no heap allocation.
pub fn simulate_into(
    graph: &TaskGraph,
    mode: SimMode<'_>,
    scratch: &mut SimScratch,
    report: &mut SimReport,
) {
    simulate_into_with(graph, mode, scratch, report, None);
}

/// [`simulate_into`] with a per-task observer: `trace` is called once per
/// executed task with `(task id, start, finish)` on the simulated clock.
///
/// Tracing is observation only — the report is bit-identical to the
/// untraced replay (pinned by a property test). Task ids index the
/// graph's columns, which for [`TaskGraph::lower`]ed graphs also
/// index the originating `OpGraph`'s nodes, so a caller can join spans
/// back to operator names — the timeline exporter's labeling path.
pub fn simulate_into_traced(
    graph: &TaskGraph,
    mode: SimMode<'_>,
    scratch: &mut SimScratch,
    report: &mut SimReport,
    trace: TaskTrace<'_>,
) {
    simulate_into_with(graph, mode, scratch, report, Some(trace));
}

fn simulate_into_with(
    graph: &TaskGraph,
    mode: SimMode<'_>,
    scratch: &mut SimScratch,
    report: &mut SimReport,
    trace: Option<TaskTrace<'_>>,
) {
    report.busy = BusyBreakdown::default();
    report.iteration_time = TimeNs::ZERO;
    report.device_busy.clear();
    report.device_busy.resize(graph.num_devices() as usize, TimeNs::ZERO);
    if graph.is_stream_chained_with(&mut scratch.chain_last) {
        simulate_dataflow(graph, mode, scratch, report, trace);
    } else {
        simulate_engine_into(graph, mode, scratch, report, trace);
    }
}

/// The dataflow fast path: longest-path relaxation over the DAG.
///
/// Correctness argument. On a stream-chained graph, tasks reserve each
/// (device, stream) timeline in chain order, and a task's chain
/// predecessor is one of its dependency parents. At the moment task `u`
/// reserves its stream, the stream's availability equals its chain
/// predecessor's finish — which `ready_at[u] = max(parent finishes)`
/// already includes. So `start(u) = max(ready_at, avail) = ready_at[u]`:
/// the FIFO dispatch order cannot influence any start time, and every
/// quantity the report aggregates (max finish, commutative busy sums) is
/// traversal-order independent. Hence this traversal — plain Kahn with a
/// stack — reproduces the engine replay bit for bit.
fn simulate_dataflow(
    graph: &TaskGraph,
    mode: SimMode<'_>,
    scratch: &mut SimScratch,
    report: &mut SimReport,
    mut trace: Option<TaskTrace<'_>>,
) {
    let n = graph.len();
    graph.fill_in_degrees(&mut scratch.in_degree);
    let in_degree = &mut scratch.in_degree;
    scratch.ready_at.clear();
    scratch.ready_at.resize(n, TimeNs::ZERO);
    let ready_at = &mut scratch.ready_at;
    let device_busy = &mut report.device_busy;
    let mut busy = BusyBreakdown::default();
    let mut iteration_time = TimeNs::ZERO;
    let mut executed = 0usize;

    // The hot loop reads the duration/kind/device columns directly; the
    // stream column is untouched here (chained graphs need no stream
    // availability — see the correctness argument above).
    let durations = graph.durations();
    let kinds = graph.kinds();
    let devices = graph.devices();

    scratch.stack.clear();
    scratch.stack.extend((0..n as u32).filter(|&i| in_degree[i as usize] == 0));
    let stack = &mut scratch.stack;
    while let Some(u) = stack.pop() {
        let duration = effective_duration(u, durations[u as usize], &kinds[u as usize], &mode);
        // On a stream-chained graph start(u) == ready_at[u] (see the
        // correctness argument above), so the trace can report exact
        // start/finish without consulting stream availability.
        let finish = ready_at[u as usize] + duration;
        iteration_time = iteration_time.max(finish);
        if let Some(trace) = trace.as_mut() {
            trace(u, ready_at[u as usize], finish);
        }

        let dev = devices[u as usize] as usize;
        match kinds[u as usize] {
            TaskKind::Compute { .. } => {
                busy.compute += duration;
                device_busy[dev] += duration;
            }
            TaskKind::Comm { kind, .. } => match kind {
                CommKind::TpAllReduce => {
                    busy.tp_comm += duration;
                    device_busy[dev] += duration;
                }
                CommKind::DpAllReduce => busy.dp_comm += duration,
                CommKind::PpSendRecv => busy.pp_comm += duration,
            },
        }

        for &c in graph.children(u) {
            ready_at[c as usize] = ready_at[c as usize].max(finish);
            in_degree[c as usize] -= 1;
            if in_degree[c as usize] == 0 {
                stack.push(c);
            }
        }
        executed += 1;
    }

    assert_eq!(executed, n, "task graph contains a cycle: {executed} of {n} tasks ran");
    report.iteration_time = iteration_time;
    report.busy = busy;
    report.tasks_executed = executed;
}

/// The general path: Algorithm 1 on the shared discrete-event engine.
fn simulate_engine_into(
    graph: &TaskGraph,
    mode: SimMode<'_>,
    scratch: &mut SimScratch,
    report: &mut SimReport,
    trace: Option<TaskTrace<'_>>,
) {
    let n = graph.len();
    let devices = graph.num_devices() as usize;
    graph.fill_in_degrees(&mut scratch.in_degree);
    scratch.ready_at.clear();
    scratch.ready_at.resize(n, TimeNs::ZERO);
    scratch.streams.reset(devices, 2);
    let mut replay = Replay {
        graph,
        mode,
        in_degree: &mut scratch.in_degree,
        ready_at: &mut scratch.ready_at,
        streams: &mut scratch.streams,
        device_busy: &mut report.device_busy,
        busy: BusyBreakdown::default(),
        iteration_time: TimeNs::ZERO,
        executed: 0,
        trace,
    };

    let sim = &mut scratch.engine;
    sim.reset();
    for i in 0..n as u32 {
        if replay.in_degree[i as usize] == 0 {
            sim.schedule(TimeNs::ZERO, TaskReady(i));
        }
    }
    sim.run(&mut replay);

    assert_eq!(
        replay.executed, n,
        "task graph contains a cycle: {} of {n} tasks ran",
        replay.executed
    );
    report.iteration_time = replay.iteration_time;
    report.busy = replay.busy;
    report.tasks_executed = replay.executed;
}

/// The engine path with fresh buffers (test comparison hook).
#[cfg(test)]
fn simulate_engine(graph: &TaskGraph, mode: SimMode<'_>) -> SimReport {
    let mut report = SimReport::default();
    report.device_busy.resize(graph.num_devices() as usize, TimeNs::ZERO);
    simulate_engine_into(graph, mode, &mut SimScratch::default(), &mut report, None);
    report
}

/// Applies the mode's perturbations to one task's clean duration.
fn effective_duration(task_id: u32, clean: TimeNs, kind: &TaskKind, mode: &SimMode<'_>) -> TimeNs {
    match mode {
        SimMode::Predicted => clean,
        SimMode::Measured { noise, nodes } => match *kind {
            TaskKind::Compute { kernels } => {
                let extra_launches = kernels.saturating_sub(1) as u64;
                noise.compute_time(task_id as u64, clean)
                    + TimeNs::from_nanos(noise.config().launch_overhead.as_nanos() * extra_launches)
            }
            TaskKind::Comm { kind, scope, overlappable, concurrent_groups } => {
                // TP All-Reduces interleave with the surrounding kernels
                // (the paper's dominant single-node error source); bucketed
                // DP All-Reduces overlap backward compute.
                let overlaps = matches!(kind, CommKind::TpAllReduce) || overlappable;
                let mut t =
                    noise.comm_time(task_id as u64, clean, overlaps, concurrent_groups as usize);
                if kind == CommKind::DpAllReduce && scope == CommScope::InterNode {
                    // Synchronization across nodes is paced by stragglers.
                    t = t.scale(noise.sync_straggler_factor((*nodes).min(64)));
                }
                t
            }
        },
    }
}

/// The paper's pseudocode transcribed literally (the pre-engine,
/// pre-columnar implementation), kept as the golden reference both the
/// engine port and the columnar refactor are tested against: it walks the
/// CSR through the assembled per-task [`TaskGraph::task`] view (the old
/// array-of-structs access pattern), so any misalignment the column split
/// could introduce shows up as a report divergence here.
#[cfg(test)]
fn simulate_reference(graph: &TaskGraph, mode: SimMode<'_>) -> SimReport {
    use std::collections::VecDeque;

    let n = graph.len();
    let mut in_degree = Vec::new();
    graph.fill_in_degrees(&mut in_degree);
    let mut ready_at = vec![TimeNs::ZERO; n];
    let mut stream_avail = vec![[TimeNs::ZERO; 2]; graph.num_devices() as usize];
    let mut device_busy = vec![TimeNs::ZERO; graph.num_devices() as usize];

    let mut queue: VecDeque<u32> = (0..n as u32).filter(|&i| in_degree[i as usize] == 0).collect();

    let mut report = SimReport::default();
    let mut executed = 0usize;

    while let Some(u) = queue.pop_front() {
        let task = graph.task(u);
        let duration = effective_duration(u, task.duration, &task.kind, &mode);
        let dev = task.device as usize;
        let stream = task.stream as usize;
        let start = ready_at[u as usize].max(stream_avail[dev][stream]);
        let finish = start + duration;
        stream_avail[dev][stream] = finish;
        report.iteration_time = report.iteration_time.max(finish);

        match task.kind {
            TaskKind::Compute { .. } => {
                report.busy.compute += duration;
                device_busy[dev] += duration;
            }
            TaskKind::Comm { kind, .. } => match kind {
                CommKind::TpAllReduce => {
                    report.busy.tp_comm += duration;
                    device_busy[dev] += duration;
                }
                CommKind::DpAllReduce => report.busy.dp_comm += duration,
                CommKind::PpSendRecv => report.busy.pp_comm += duration,
            },
        }

        for &c in graph.children(u) {
            ready_at[c as usize] = ready_at[c as usize].max(finish);
            in_degree[c as usize] -= 1;
            if in_degree[c as usize] == 0 {
                queue.push_back(c);
            }
        }
        executed += 1;
    }

    assert_eq!(executed, n, "task graph contains a cycle: {} of {n} tasks ran", executed);
    report.tasks_executed = executed;
    report.device_busy = device_busy;
    report
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use vtrain_gpu::NoiseConfig;
    use vtrain_graph::{build_op_graph, GraphOptions};
    use vtrain_model::presets;
    use vtrain_parallel::{ClusterSpec, GpuSpec, ParallelConfig, PipelineSchedule};
    use vtrain_profile::{CommModel, Profiler};

    use super::*;

    fn lower(
        t: usize,
        d: usize,
        p: usize,
        m: usize,
        b: usize,
        sched: PipelineSchedule,
        bucketing: bool,
    ) -> TaskGraph {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(m)
            .global_batch(b)
            .schedule(sched)
            .gradient_bucketing(bucketing)
            .build()
            .unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let table = Profiler::new(GpuSpec::a100_40gb()).profile(&graph.necessary_operators());
        let comm = CommModel::new(&ClusterSpec::aws_p4d(256), 1.0);
        TaskGraph::lower(&graph, &table, &comm).unwrap()
    }

    fn assert_reports_identical(a: &SimReport, b: &SimReport) {
        assert_eq!(a.iteration_time, b.iteration_time);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.device_busy, b.device_busy);
        assert_eq!(a.tasks_executed, b.tasks_executed);
    }

    #[test]
    fn replay_is_deterministic() {
        let tg = lower(2, 2, 2, 1, 8, PipelineSchedule::OneFOneB, true);
        let a = simulate(&tg, SimMode::Predicted);
        let b = simulate(&tg, SimMode::Predicted);
        assert_eq!(a.iteration_time, b.iteration_time);
        assert_eq!(a.busy, b.busy);
    }

    #[test]
    fn two_runs_produce_bit_identical_reports() {
        // Regression test for replay-ordering nondeterminism: the engine
        // queue's sequence tie-break guarantees equal-timestamp events pop
        // in insertion order, so the whole serialized report must match
        // byte for byte run-to-run. Same-process heap behavior alone would
        // also repeat, so each run is additionally pinned to the reference
        // VecDeque replay — a genuinely FIFO structure — which breaks if
        // the tie-break is ever removed.
        let tg = lower(2, 2, 2, 1, 8, PipelineSchedule::OneFOneB, true);
        let noise = NoiseModel::new(NoiseConfig::default());
        for mode in [SimMode::Predicted, SimMode::Measured { noise: &noise, nodes: 2 }] {
            let a = simulate(&tg, mode);
            let b = simulate(&tg, mode);
            assert_reports_identical(&a, &simulate_reference(&tg, mode));
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "serialized SimReports must be bit-identical"
            );
        }
    }

    #[test]
    fn iteration_time_bounds() {
        let tg = lower(2, 2, 2, 1, 8, PipelineSchedule::OneFOneB, true);
        let r = simulate(&tg, SimMode::Predicted);
        assert_eq!(r.tasks_executed, tg.len());
        // Never below the busiest device, never above the serial sum.
        let serial: TimeNs = tg.durations().iter().copied().sum();
        let busiest = r.device_busy.iter().copied().max().unwrap();
        assert!(r.iteration_time >= busiest);
        assert!(r.iteration_time <= serial);
        assert!(r.mean_device_occupancy() > 0.0 && r.mean_device_occupancy() <= 1.0);
    }

    #[test]
    fn single_device_graph_time_is_serial_sum_of_compute_stream() {
        // p = 1, d = 1: everything serializes on one compute stream.
        let tg = lower(2, 1, 1, 1, 4, PipelineSchedule::OneFOneB, true);
        let r = simulate(&tg, SimMode::Predicted);
        let serial: TimeNs = tg.durations().iter().copied().sum();
        assert_eq!(r.iteration_time, serial);
    }

    #[test]
    fn more_micro_batches_shrink_pipeline_bubble() {
        // Same total work (B constant), more micro-batches ⇒ smaller bubble
        // fraction under GPipe (§II-B).
        let few =
            simulate(&lower(1, 1, 4, 8, 16, PipelineSchedule::GPipe, true), SimMode::Predicted);
        let many =
            simulate(&lower(1, 1, 4, 1, 16, PipelineSchedule::GPipe, true), SimMode::Predicted);
        assert!(
            many.mean_device_occupancy() > few.mean_device_occupancy(),
            "16 micro-batches should fill the pipeline better than 2"
        );
    }

    #[test]
    fn one_f_one_b_no_slower_than_gpipe() {
        let gpipe =
            simulate(&lower(1, 1, 4, 1, 16, PipelineSchedule::GPipe, true), SimMode::Predicted);
        let fb =
            simulate(&lower(1, 1, 4, 1, 16, PipelineSchedule::OneFOneB, true), SimMode::Predicted);
        // Equal-bubble in the ideal model; 1F1B must never be slower.
        assert!(fb.iteration_time <= gpipe.iteration_time.scale(1.001));
    }

    #[test]
    fn bucketing_overlap_helps_or_ties() {
        let with =
            simulate(&lower(1, 8, 1, 1, 16, PipelineSchedule::OneFOneB, true), SimMode::Predicted);
        let without =
            simulate(&lower(1, 8, 1, 1, 16, PipelineSchedule::OneFOneB, false), SimMode::Predicted);
        assert!(
            with.iteration_time <= without.iteration_time,
            "gradient bucketing must not slow the iteration: {} vs {}",
            with.iteration_time,
            without.iteration_time
        );
    }

    #[test]
    fn measured_mode_is_slower_than_predicted() {
        let tg = lower(4, 2, 2, 1, 8, PipelineSchedule::OneFOneB, true);
        let predicted = simulate(&tg, SimMode::Predicted);
        let noise = NoiseModel::new(NoiseConfig::default());
        let measured = simulate(&tg, SimMode::Measured { noise: &noise, nodes: 2 });
        assert!(
            measured.iteration_time > predicted.iteration_time,
            "launch overhead + contention must inflate the measured run"
        );
        // ... but within a sane envelope (< 2×).
        assert!(measured.iteration_time < predicted.iteration_time.scale(2.0));
    }

    #[test]
    fn measured_mode_is_deterministic() {
        let tg = lower(4, 2, 2, 1, 8, PipelineSchedule::OneFOneB, true);
        let noise = NoiseModel::new(NoiseConfig::default());
        let a = simulate(&tg, SimMode::Measured { noise: &noise, nodes: 2 });
        let b = simulate(&tg, SimMode::Measured { noise: &noise, nodes: 2 });
        assert_eq!(a.iteration_time, b.iteration_time);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Golden equivalence: on sampled `(t, d, p, m)` design points, the
        /// engine-backed replay reproduces the legacy FIFO replay *exactly*
        /// — iteration time, busy breakdown, per-device busy vectors — in
        /// both Predicted and Measured modes.
        #[test]
        fn engine_replay_matches_legacy_exactly(
            t_exp in 0usize..=1,
            d_exp in 0usize..=1,
            p_exp in 0usize..=2,
            m_exp in 0usize..=1,
            gpipe in proptest::bool::ANY,
            bucketing in proptest::bool::ANY,
        ) {
            let (t, d, p, m) = (1usize << t_exp, 1 << d_exp, 1 << p_exp, 1 << m_exp);
            let b = d * m * 4;
            let sched = if gpipe { PipelineSchedule::GPipe } else { PipelineSchedule::OneFOneB };
            let tg = lower(t, d, p, m, b, sched, bucketing);
            assert!(tg.is_stream_chained(), "builder graphs are stream-chained");

            // All three replays — dataflow fast path (what simulate picks
            // for chained graphs), engine replay, legacy pseudocode — must
            // agree exactly.
            let fast = simulate(&tg, SimMode::Predicted);
            let engine = simulate_engine(&tg, SimMode::Predicted);
            let legacy = simulate_reference(&tg, SimMode::Predicted);
            assert_reports_identical(&fast, &engine);
            assert_reports_identical(&engine, &legacy);

            let noise = NoiseModel::new(NoiseConfig::default());
            let mode = SimMode::Measured { noise: &noise, nodes: (t * d * p).div_ceil(8) };
            let fast = simulate(&tg, mode);
            let engine = simulate_engine(&tg, mode);
            let legacy = simulate_reference(&tg, mode);
            assert_reports_identical(&fast, &engine);
            assert_reports_identical(&engine, &legacy);
        }

        /// Tracing is pure observation: a traced replay produces a
        /// `SimReport` bit-identical to the untraced one, and the spans
        /// themselves are consistent — exactly one per task, each
        /// `finish − start` equal to the task's effective duration, and
        /// the latest finish equal to the iteration time.
        #[test]
        fn tracing_never_changes_the_report(
            t_exp in 0usize..=1,
            d_exp in 0usize..=1,
            p_exp in 0usize..=2,
            m_exp in 0usize..=1,
            gpipe in proptest::bool::ANY,
            bucketing in proptest::bool::ANY,
        ) {
            let (t, d, p, m) = (1usize << t_exp, 1 << d_exp, 1 << p_exp, 1 << m_exp);
            let b = d * m * 4;
            let sched = if gpipe { PipelineSchedule::GPipe } else { PipelineSchedule::OneFOneB };
            let tg = lower(t, d, p, m, b, sched, bucketing);

            let noise = NoiseModel::new(NoiseConfig::default());
            for mode in [
                SimMode::Predicted,
                SimMode::Measured { noise: &noise, nodes: (t * d * p).div_ceil(8) },
            ] {
                let plain = simulate(&tg, mode);
                let mut spans: Vec<(u32, TimeNs, TimeNs)> = Vec::new();
                let mut traced = SimReport::default();
                let mut record = |id: u32, start: TimeNs, finish: TimeNs| {
                    spans.push((id, start, finish));
                };
                simulate_into_traced(
                    &tg,
                    mode,
                    &mut SimScratch::default(),
                    &mut traced,
                    &mut record,
                );
                assert_eq!(
                    serde_json::to_string(&plain).unwrap(),
                    serde_json::to_string(&traced).unwrap(),
                    "tracing must not perturb the report"
                );
                assert_eq!(spans.len(), tg.len(), "one span per task");
                let mut seen = vec![false; tg.len()];
                let mut max_finish = TimeNs::ZERO;
                for &(id, start, finish) in &spans {
                    assert!(!std::mem::replace(&mut seen[id as usize], true));
                    let task = tg.task(id);
                    let dur = effective_duration(id, task.duration, &task.kind, &mode);
                    assert_eq!(finish, start + dur);
                    max_finish = max_finish.max(finish);
                }
                assert_eq!(max_finish, traced.iteration_time);
            }
        }
    }
}
