//! Training-cost arithmetic (paper Fig. 1, Table I).

use serde::{Deserialize, Serialize};
use vtrain_model::TimeNs;

/// Converts GPU time to dollars.
///
/// The paper prices training via AWS EC2 P4d instances; Table I implies
/// $5.00 per GPU-hour (2,240 GPUs ↔ $11,200/hour), which is the default.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Dollars per GPU-hour.
    pub per_gpu_hour: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { per_gpu_hour: 5.0 }
    }
}

impl CostModel {
    /// Creates a cost model.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    pub fn new(per_gpu_hour: f64) -> Self {
        assert!(per_gpu_hour.is_finite() && per_gpu_hour > 0.0, "rate must be positive");
        CostModel { per_gpu_hour }
    }

    /// Cluster-wide dollars per hour for `gpus` GPUs.
    pub fn dollars_per_hour(&self, gpus: usize) -> f64 {
        gpus as f64 * self.per_gpu_hour
    }

    /// Total cost of occupying `gpus` GPUs for `duration`.
    pub fn total_cost(&self, gpus: usize, duration: TimeNs) -> f64 {
        self.dollars_per_hour(gpus) * duration.as_secs_f64() / 3600.0
    }
}

/// End-to-end projection of a training run from a single-iteration estimate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainingProjection {
    /// Training iterations to consume the token budget.
    pub iterations: u64,
    /// Wall-clock time for all iterations.
    pub total_time: TimeNs,
    /// GPUs occupied.
    pub num_gpus: usize,
    /// Cluster-wide dollars per hour.
    pub dollars_per_hour: f64,
    /// End-to-end training cost in dollars.
    pub total_dollars: f64,
}

impl TrainingProjection {
    /// Projects end-to-end training: `total_tokens / tokens-per-iteration`
    /// iterations at `iteration_time` each (paper §III-E).
    pub fn project(
        iteration_time: TimeNs,
        tokens_per_iteration: u64,
        total_tokens: u64,
        num_gpus: usize,
        cost: &CostModel,
    ) -> Self {
        assert!(tokens_per_iteration > 0, "iteration must consume tokens");
        let iterations = total_tokens.div_ceil(tokens_per_iteration);
        let total_time = TimeNs::from_secs_f64(iteration_time.as_secs_f64() * iterations as f64);
        TrainingProjection {
            iterations,
            total_time,
            num_gpus,
            dollars_per_hour: cost.dollars_per_hour(num_gpus),
            total_dollars: cost.total_cost(num_gpus, total_time),
        }
    }

    /// Wall-clock training time in days.
    pub fn days(&self) -> f64 {
        self.total_time.as_secs_f64() / 86_400.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_pricing_identity() {
        // 2,240 GPUs at the default rate ⇒ $11,200/hour (Table I row 1).
        let c = CostModel::default();
        assert_eq!(c.dollars_per_hour(2240), 11_200.0);
    }

    #[test]
    fn mt_nlg_projection_magnitude() {
        // MT-NLG consumes 1920×2048 tokens/iter over 270B tokens ⇒ ~68.7k
        // iterations (the paper quotes "approximately 68,000").
        let proj = TrainingProjection::project(
            TimeNs::from_secs_f64(42.59),
            1920 * 2048,
            270_000_000_000,
            2240,
            &CostModel::default(),
        );
        assert!((proj.iterations as f64 - 68_665.0).abs() < 10.0, "{}", proj.iterations);
        // Table I: 33.52 days, $9.01M.
        assert!((proj.days() - 33.8).abs() < 0.5, "days {}", proj.days());
        assert!((proj.total_dollars / 1e6 - 9.1).abs() < 0.2, "cost {}", proj.total_dollars);
    }

    #[test]
    fn cost_scales_linearly() {
        let c = CostModel::new(2.0);
        let t = TimeNs::from_secs(7200);
        assert!((c.total_cost(10, t) - 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = CostModel::new(0.0);
    }

    #[test]
    fn iterations_round_up() {
        let proj =
            TrainingProjection::project(TimeNs::from_secs(1), 1000, 1500, 1, &CostModel::default());
        assert_eq!(proj.iterations, 2);
    }
}
