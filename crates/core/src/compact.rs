//! The sweep's compact replay: run-aggregated lowering fused with the
//! Predicted-mode Algorithm 1 traversal, plus the delta-lowering path
//! that re-prices a cached graph for a shape-compatible neighbor.
//!
//! The graph builder emits long program-order chains per (device, stream)
//! whose interior nodes never source or receive cross edges — whole
//! forward/backward slots between [`GraphSink::cut`] boundaries. Because
//! the Predicted replay applies no per-task perturbation, such a chain is
//! lossless to aggregate: its start is its head's ready time, its finish
//! is `start + Σ durations` (exact `u64` arithmetic), and every quantity
//! the report accumulates (category busy sums, device busy, task counts,
//! the finish-time maximum) distributes over the chain. The compact graph
//! is therefore one-to-two orders of magnitude smaller than the full task
//! graph while producing a **bit-identical** [`SimReport`] — proven
//! against the full lowering + replay by the equivalence property test
//! below and by the sweep's golden grid A/B.
//!
//! # Slots and delta-lowering
//!
//! Every node the builder emits carries a *latency slot*
//! ([`vtrain_graph::visit_plan_slots`]): an index into the plan's
//! canonical enumeration of distinct latency sources (8 fixed layer/vocab
//! kinds, per-stage weight updates, the TP All-Reduce, per-boundary
//! pipeline sends, per-stage DP buckets). Lowering prices all slots
//! first (`slot_values`), then each node is an O(1) table lookup instead
//! of a signature-memo probe.
//!
//! Two plans with equal [`PlanShapeKey`]s produce graphs with identical
//! structure — node counts, run boundaries, edges, and slot assignments —
//! differing only in slot *values*. When the scratch already holds a
//! graph for the same key, [`simulate_plan_delta`] skips the builder and
//! the CSR construction entirely and only refills the runs' value columns
//! from the re-priced slot table and the cached run *compositions* —
//! `(slot, multiplicity)` pairs per run, a handful of entries even for
//! thousand-node chains. Exact integer `value · multiplicity` sums make
//! the patched graph bit-identical to a fresh lowering (proven by the
//! A/B property test below).
//!
//! The refill distributes over disjoint run ranges, so a single
//! candidate's patch can be split across `shards` threads (two-level
//! sweep parallelism); shard boundaries never change the values, so
//! N-way output is byte-identical to serial.
//!
//! Measured mode keys noise on task ids and must replay the full graph;
//! this path is Predicted-only by construction.
//!
//! All buffers live in a caller-owned [`CompactScratch`], so steady-state
//! sweep evaluation performs no per-point heap allocation here.

use vtrain_graph::{
    build_op_graph_into, plan_shape_key, visit_plan_slots, ChainOp, CommKind, GraphOptions,
    GraphSink, OpNode, OpSignature, PlanShapeKey, SlotOp, StreamKind,
};
use vtrain_model::{ModelConfig, TimeNs};
use vtrain_parallel::ParallelConfig;
use vtrain_profile::CommModel;

use crate::sim::{BusyBreakdown, SimReport};
use crate::task_graph::MissingProfile;

/// Resolves compute-operator signatures to `(total latency, kernel
/// count)` during compact lowering. Implemented by the estimator over the
/// shared profile cache (with per-sweep hit/miss attribution) and by
/// profile-set adapters in tests.
pub(crate) trait ProfileSource {
    /// The profiled `(total latency, kernel count)` of `sig`, or `None`
    /// if the signature cannot be resolved.
    fn op_latency(&mut self, sig: &OpSignature) -> Option<(TimeNs, u32)>;
}

/// How [`simulate_plan_delta`] obtained the replayed graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LowerOutcome {
    /// Built from scratch through the graph builder.
    Fresh,
    /// Re-priced the cached graph of a shape-compatible previous plan.
    Patched,
}

/// No open run on this device's compute stream.
const NONE: u32 = u32::MAX;

/// Busy-category codes of `slot_cat` (which [`BusyBreakdown`] field a
/// slot's latency lands in).
const CAT_COMPUTE: u8 = 0;
const CAT_TP: u8 = 1;
const CAT_DP: u8 = 2;
const CAT_PP: u8 = 3;

/// Reusable buffers of the compact lowering + replay, columnar throughout.
///
/// The buffers split into *structure* (run boundaries, compositions,
/// edges, CSR, pristine in-degrees), which survives across points and is
/// what delta-lowering reuses, and *values* (the slot table and the runs'
/// duration/category columns), which are refilled per point.
/// One accepted block replication: `periods` copies (including the
/// original) of `node_stride` nodes / `run_stride` runs starting at
/// builder node `start` and run `r0`.
#[derive(Clone, Copy)]
struct Rep {
    start: u32,
    node_stride: u32,
    periods: u32,
    run_stride: u32,
}

#[derive(Default)]
pub struct CompactScratch {
    // --- structure: valid for `base_key`, reused by the delta path ---
    /// Builder node ids consumed so far (nodes are never stored
    /// individually: each belongs to a run, and its latency slot lands in
    /// the run's composition).
    nodes: u32,
    /// Run compositions — `(owning run, latency slot, multiplicity)`
    /// triples, in emission order (so `comp_run` is non-decreasing: runs
    /// own consecutive node-id ranges and close before the next run
    /// opens). The builder's bulk layer chains land here as one triple
    /// per pattern op regardless of layer count, which is what makes
    /// lowering and the delta refill O(runs), not O(nodes).
    comp_run: Vec<u32>,
    comp_slot: Vec<u32>,
    comp_count: Vec<u32>,
    run_device: Vec<u32>,
    /// Source tasks aggregated into each run.
    run_tasks: Vec<u32>,
    /// Builder node ids of each run's chain endpoints.
    run_head: Vec<u32>,
    run_tail: Vec<u32>,
    /// Inter-run edges as collected (source-run, target-run).
    edges: Vec<(u32, u32)>,
    /// Counting-sort cursor for the CSR build.
    counts: Vec<u32>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    /// Pristine in-degrees (kept intact so replays can start without
    /// re-deriving them from the edge list).
    in_degree0: Vec<u32>,
    /// The shape key the structure buffers were built for.
    base_key: Option<PlanShapeKey>,
    /// Moving cursors of [`CompactScratch::run_of_seq`] for edge
    /// endpoints that miss the recency fast path (the builder's pass-2
    /// cross-stage edges, whose sources and targets each arrive in
    /// near-ascending node order).
    hint_from: u32,
    hint_to: u32,
    /// Replicated block regions of the current build, in ascending node
    /// order. Arithmetic edge trains whose endpoints stay inside one
    /// region resolve their run ids by stride instead of per-edge
    /// lookups.
    reps: Vec<Rep>,
    // --- values: refilled per point ---
    /// Latency of each slot of the canonical enumeration.
    slot_values: Vec<TimeNs>,
    /// Busy category of each slot (`CAT_*`).
    slot_cat: Vec<u8>,
    /// Total chain duration per run (sum of member durations).
    run_duration: Vec<TimeNs>,
    /// Per-run contributions to the busy breakdown.
    run_compute: Vec<TimeNs>,
    run_tp: Vec<TimeNs>,
    run_dp: Vec<TimeNs>,
    run_pp: Vec<TimeNs>,
    // --- replay working state ---
    in_degree: Vec<u32>,
    ready_at: Vec<TimeNs>,
    stack: Vec<u32>,
    /// Open (extendable) compute-stream run per device.
    open: Vec<u32>,
}

impl CompactScratch {
    /// Number of aggregated runs of the currently lowered graph.
    #[cfg(test)]
    pub(crate) fn num_runs(&self) -> usize {
        self.run_device.len()
    }

    /// Maps a builder node id back to its owning run. Runs own
    /// consecutive, strictly increasing node-id ranges (asserted at every
    /// extension), so the owner is the last run whose head is at most
    /// `id`. Only edge endpoints ever need this mapping — chain interiors
    /// are implicit. Pass-1 edges (chain links across cuts, send
    /// attachments, comm-stream program order) always touch one of the
    /// few most recent runs, so they resolve with a short backward scan;
    /// only pass-2 cross-stage edges fall through to the binary search.
    fn run_of(&self, id: u32, hint: u32) -> (u32, u32) {
        let n = self.run_head.len();
        let recent = n.saturating_sub(4);
        if id >= self.run_head[recent] {
            let mut r = n - 1;
            while self.run_head[r] > id {
                r -= 1;
            }
            return (r as u32, hint);
        }
        let r = self.run_of_seq(id, hint);
        (r, r)
    }

    /// The cold half of [`CompactScratch::run_of`]: resolves `id` near a
    /// moving cursor — a short forward scan when queries ascend (the
    /// pass-2 sequences), falling back to binary search on a miss.
    fn run_of_seq(&self, id: u32, hint: u32) -> u32 {
        let heads = &self.run_head;
        let n = heads.len();
        let mut r = (hint as usize).min(n - 1);
        if heads[r] <= id {
            for _ in 0..32 {
                if r + 1 >= n || heads[r + 1] > id {
                    return r as u32;
                }
                r += 1;
            }
        }
        (heads.partition_point(|&h| h <= id) - 1) as u32
    }

    /// Per-step run-id stride of an arithmetic node train `base + i *
    /// node_stride` (`i < count`), provided the whole train lies inside a
    /// single replicated block region advancing by that node stride —
    /// then consecutive train members land in consecutive copies, whose
    /// runs are exactly `run_stride` apart. `None` when no region covers
    /// the train (the caller falls back to per-edge resolution).
    fn train_run_stride(&self, base: u32, node_stride: u32, count: u32) -> Option<u32> {
        let i = self.reps.partition_point(|rep| rep.start <= base).checked_sub(1)?;
        let rep = self.reps[i];
        let in_region = node_stride == rep.node_stride
            && base - rep.start + node_stride * (count - 1) < node_stride * rep.periods;
        in_region.then_some(rep.run_stride)
    }

    /// Appends `count` nodes of `slot` to `run`'s composition, merging
    /// with the previous triple when it matches.
    fn push_comp(&mut self, run: u32, slot: u32, count: u32) {
        if let (Some(&r), Some(&s)) = (self.comp_run.last(), self.comp_slot.last()) {
            if r == run && s == slot {
                *self.comp_count.last_mut().expect("parallel comp columns") += count;
                return;
            }
            debug_assert!(r <= run, "composition touched a closed run");
        }
        self.comp_run.push(run);
        self.comp_slot.push(slot);
        self.comp_count.push(count);
    }

    /// Opens a new run headed by node `first` on `device`, or returns the
    /// device's open compute run (which `first` must extend contiguously).
    fn open_or_extend(&mut self, device: u32, first: u32, compute_stream: bool) -> u32 {
        let dev = device as usize;
        if compute_stream && self.open[dev] != NONE {
            let r = self.open[dev];
            // `run_of` relies on runs owning contiguous id ranges.
            assert_eq!(self.run_tail[r as usize], first - 1, "run extended non-contiguously");
            return r;
        }
        let r = self.run_device.len() as u32;
        self.run_device.push(device);
        self.run_tasks.push(0);
        self.run_head.push(first);
        self.run_tail.push(first);
        // Communication nodes join at cross-stream edges, so they are
        // never extendable; compute chains stay open until cut.
        if compute_stream {
            self.open[dev] = r;
        }
        r
    }
}

struct CompactSink<'a> {
    s: &'a mut CompactScratch,
}

impl GraphSink for CompactSink<'_> {
    fn push(&mut self, _node: OpNode) -> u32 {
        unreachable!("the builder emits every node through push_slotted")
    }

    fn push_slotted(&mut self, node: OpNode, slot: u32) -> u32 {
        let id = self.s.nodes;
        self.s.nodes += 1;
        let compute = node.stream == StreamKind::Compute;
        let run_id = self.s.open_or_extend(node.device, id, compute);
        self.s.run_tasks[run_id as usize] += 1;
        self.s.run_tail[run_id as usize] = id;
        self.s.push_comp(run_id, slot, 1);
        id
    }

    fn push_chain(
        &mut self,
        device: u32,
        prev: Option<u32>,
        pattern: &[ChainOp],
        repeat: u32,
    ) -> u32 {
        let first = self.s.nodes;
        let n_new = pattern.len() as u32 * repeat;
        self.s.nodes += n_new;
        let was_open = self.s.open[device as usize] != NONE;
        let run_id = self.s.open_or_extend(device, first, true);
        self.s.run_tasks[run_id as usize] += n_new;
        self.s.run_tail[run_id as usize] = first + n_new - 1;
        // The whole block is one composition entry per pattern op — the
        // interior program-order chain is implicit in the run.
        for item in pattern {
            self.s.push_comp(run_id, item.slot, repeat);
        }
        if !was_open {
            // The chain edge from the device's previous compute node
            // enters a fresh run: record it (and seal the source run),
            // exactly as the per-node expansion would.
            if let Some(p) = prev {
                self.add_edge(p, first);
            }
        }
        first
    }

    fn replicate_block(&mut self, start_node: u32, copies: u32) -> bool {
        let s = &mut *self.s;
        // The block began at a cut, so its first node heads the first
        // block run; everything at or after it belongs to the block.
        let r0 = s.run_head.partition_point(|&h| h < start_node);
        assert_eq!(s.run_head[r0], start_node, "replicated block is not cut-aligned");
        let node_stride = s.nodes - start_node;
        let run_stride = (s.run_device.len() - r0) as u32;
        let comp0 = s.comp_run.partition_point(|&r| (r as usize) < r0);
        // The block's edges are the list's suffix targeting block runs.
        // Sources before the block are the chain links into the block
        // head — the builder re-emits those per copy, so skip them here.
        let mut edge0 = s.edges.len();
        while edge0 > 0 && s.edges[edge0 - 1].1 as usize >= r0 {
            edge0 -= 1;
        }
        let (run_end, comp_end) = (s.run_device.len(), s.comp_run.len());
        // The index ranges below keep pointing at period 0 as the
        // vectors grow, so each extend_from_within is a straight memcpy
        // of the original block; only the node/run-indexed columns need
        // an offset fixup afterwards (a vectorizable add-scalar pass).
        let (n_runs, n_comp) = (run_end - r0, comp_end - comp0);
        s.run_device.reserve(n_runs * copies as usize);
        s.run_tasks.reserve(n_runs * copies as usize);
        s.run_head.reserve(n_runs * copies as usize);
        s.run_tail.reserve(n_runs * copies as usize);
        s.comp_run.reserve(n_comp * copies as usize);
        s.comp_slot.reserve(n_comp * copies as usize);
        s.comp_count.reserve(n_comp * copies as usize);
        let block_edges: Vec<(u32, u32)> =
            s.edges[edge0..].iter().copied().filter(|&(from, _)| from as usize >= r0).collect();
        s.edges.reserve(block_edges.len() * copies as usize);
        for q in 1..=copies {
            let node_off = node_stride * q;
            let run_off = run_stride * q;
            s.run_device.extend_from_within(r0..run_end);
            s.run_tasks.extend_from_within(r0..run_end);
            let base = s.run_head.len();
            s.run_head.extend_from_within(r0..run_end);
            for v in &mut s.run_head[base..] {
                *v += node_off;
            }
            s.run_tail.extend_from_within(r0..run_end);
            for v in &mut s.run_tail[base..] {
                *v += node_off;
            }
            let cbase = s.comp_run.len();
            s.comp_run.extend_from_within(comp0..comp_end);
            for v in &mut s.comp_run[cbase..] {
                *v += run_off;
            }
            s.comp_slot.extend_from_within(comp0..comp_end);
            s.comp_count.extend_from_within(comp0..comp_end);
            s.edges.extend(block_edges.iter().map(|&(from, to)| (from + run_off, to + run_off)));
        }
        s.nodes += node_stride * copies;
        s.reps.push(Rep { start: start_node, node_stride, periods: copies + 1, run_stride });
        // Copies carry the block's internal cut structure; nothing stays
        // extendable across the replication boundary.
        s.open[s.run_device[r0] as usize] = NONE;
        true
    }

    fn add_edge_train(&mut self, from: u32, from_stride: u32, to: u32, to_stride: u32, count: u32) {
        if count == 0 {
            return;
        }
        // The first edge takes the ordinary checked path (sealing the
        // source run if it was still open).
        self.add_edge(from, to);
        if count == 1 {
            return;
        }
        let strides = Option::zip(
            self.s.train_run_stride(from, from_stride, count),
            self.s.train_run_stride(to, to_stride, count),
        );
        let Some((frs, trs)) = strides else {
            for i in 1..count {
                self.add_edge(from + i * from_stride, to + i * to_stride);
            }
            return;
        };
        let s = &mut *self.s;
        let (rf0, _) = s.run_of(from, s.hint_from);
        let (rt0, _) = s.run_of(to, s.hint_to);
        if rf0 == rt0 {
            // An intra-run chain link — and so are all its copies:
            // nothing to store (mirrors the `add_edge` early return).
            debug_assert_eq!(to, from + 1, "non-chain edge inside an aggregation run");
            return;
        }
        s.edges.reserve((count - 1) as usize);
        for i in 1..count {
            let (rf, rt) = (rf0 + i * frs, rt0 + i * trs);
            debug_assert_eq!(
                s.run_tail[rf as usize],
                from + i * from_stride,
                "train edge from the interior of a run"
            );
            debug_assert_eq!(
                s.run_head[rt as usize],
                to + i * to_stride,
                "train edge into the interior of a run"
            );
            debug_assert_ne!(
                s.open[s.run_device[rf as usize] as usize], rf,
                "replicated runs never stay open"
            );
            s.edges.push((rf, rt));
        }
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        let (rf, hint_from) = self.s.run_of(from, self.s.hint_from);
        let (rt, hint_to) = self.s.run_of(to, self.s.hint_to);
        self.s.hint_from = hint_from;
        self.s.hint_to = hint_to;
        if rf == rt {
            // The only intra-run edges are the builder's program-order
            // chain links between consecutive members.
            assert_eq!(to, from + 1, "non-chain edge inside an aggregation run");
            return;
        }
        // An edge may only leave a run at its (current) tail; once it
        // does, the run must not grow past the tail, so seal it.
        assert_eq!(self.s.run_tail[rf as usize], from, "edge from the interior of a run");
        let src_dev = self.s.run_device[rf as usize] as usize;
        if self.s.open[src_dev] == rf {
            self.s.open[src_dev] = NONE;
        }
        assert_eq!(self.s.run_head[rt as usize], to, "edge into the interior of a run");
        self.s.edges.push((rf, rt));
    }

    fn cut(&mut self, device: u32) {
        self.s.open[device as usize] = NONE;
    }
}

/// Prices every slot of the plan's canonical enumeration into
/// `slot_values`/`slot_cat`. Returns `true` if any compute signature
/// could not be resolved.
fn resolve_slots<P: ProfileSource>(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    profiles: &mut P,
    comm: &CommModel,
    slot_values: &mut Vec<TimeNs>,
    slot_cat: &mut Vec<u8>,
) -> bool {
    slot_values.clear();
    slot_cat.clear();
    let mut missing = false;
    visit_plan_slots(model, plan, opts, |op| match op {
        SlotOp::Compute(sig) => {
            let total = match profiles.op_latency(&sig) {
                Some((total, _)) => total,
                None => {
                    missing = true;
                    TimeNs::ZERO
                }
            };
            slot_values.push(total);
            slot_cat.push(CAT_COMPUTE);
        }
        SlotOp::Comm(c) => {
            slot_values.push(comm.latency(&c));
            slot_cat.push(match c.kind {
                CommKind::TpAllReduce => CAT_TP,
                CommKind::DpAllReduce => CAT_DP,
                CommKind::PpSendRecv => CAT_PP,
            });
        }
    });
    missing
}

/// Lowers `(model, plan)` straight into an aggregated replay graph and
/// replays it in Predicted mode, writing the result into `report` — the
/// sweep's fused lower + simulate hot path. Produces a report
/// bit-identical to `simulate(&TaskGraph::lower_fused(..)?,
/// SimMode::Predicted)`. Always lowers from scratch; see
/// [`simulate_plan_delta`] for the neighbor-patching variant.
///
/// # Errors
///
/// Returns [`MissingProfile`] if `profiles` cannot resolve a signature
/// the builder emits.
///
/// # Panics
///
/// Same conditions as [`vtrain_graph::build_op_graph`], or if the builder
/// violates its [`GraphSink::cut`] aggregation contract (a bug, caught by
/// the equivalence property tests).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn simulate_plan_compact<P: ProfileSource>(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    profiles: &mut P,
    comm: &CommModel,
    scratch: &mut CompactScratch,
    report: &mut SimReport,
) -> Result<(), MissingProfile> {
    simulate_plan_delta(model, plan, opts, profiles, comm, scratch, report, false, 1).map(|_| ())
}

/// [`simulate_plan_compact`] with delta-lowering: when `delta` is set and
/// `scratch` holds the graph of a plan with the same [`PlanShapeKey`],
/// the builder and CSR construction are skipped and only the slot table
/// and the runs' value columns are recomputed (optionally split across
/// `shards` threads). The patched graph — and hence the report — is
/// bit-identical to a fresh lowering.
#[cfg_attr(not(test), allow(dead_code))]
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_plan_delta<P: ProfileSource>(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    profiles: &mut P,
    comm: &CommModel,
    scratch: &mut CompactScratch,
    report: &mut SimReport,
    delta: bool,
    shards: usize,
) -> Result<LowerOutcome, MissingProfile> {
    let outcome = lower_plan_delta(model, plan, opts, profiles, comm, scratch, delta, shards)?;
    replay_lowered(scratch, plan.pipeline(), report);
    Ok(outcome)
}

/// The lowering half of [`simulate_plan_delta`]: prices the slot table
/// and either patches the cached graph (same shape key) or rebuilds it.
/// Split from the replay so the sweep's stage profiler can attribute
/// lower vs. simulate time on the compact path.
#[allow(clippy::too_many_arguments)]
pub(crate) fn lower_plan_delta<P: ProfileSource>(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    profiles: &mut P,
    comm: &CommModel,
    scratch: &mut CompactScratch,
    delta: bool,
    shards: usize,
) -> Result<LowerOutcome, MissingProfile> {
    if resolve_slots(
        model,
        plan,
        opts,
        profiles,
        comm,
        &mut scratch.slot_values,
        &mut scratch.slot_cat,
    ) {
        return Err(MissingProfile);
    }

    let devices = plan.pipeline();
    let key = plan_shape_key(model, plan, opts);
    if delta && scratch.base_key == Some(key) {
        refill_runs(scratch, shards);
        return Ok(LowerOutcome::Patched);
    }
    scratch.base_key = None;
    scratch.nodes = 0;
    scratch.comp_run.clear();
    scratch.comp_slot.clear();
    scratch.comp_count.clear();
    scratch.run_device.clear();
    scratch.run_tasks.clear();
    scratch.run_head.clear();
    scratch.run_tail.clear();
    scratch.edges.clear();
    scratch.hint_from = 0;
    scratch.hint_to = 0;
    scratch.reps.clear();
    scratch.open.clear();
    scratch.open.resize(devices, NONE);
    let mut sink = CompactSink { s: scratch };
    build_op_graph_into(model, plan, opts, &mut sink);
    build_csr(scratch);
    // Fresh builds price their value columns through the same
    // composition refill the patch path uses — one value computation,
    // shared and equally sharded on both paths.
    refill_runs(scratch, shards);
    scratch.base_key = Some(key);
    Ok(LowerOutcome::Fresh)
}

/// Builds the inter-run CSR (per-source insertion order preserved) and
/// the pristine in-degree column from the collected edge list.
fn build_csr(s: &mut CompactScratch) {
    let n = s.run_device.len();
    s.counts.clear();
    s.counts.resize(n + 1, 0);
    s.in_degree0.clear();
    s.in_degree0.resize(n, 0);
    for &(from, to) in &s.edges {
        s.counts[from as usize + 1] += 1;
        s.in_degree0[to as usize] += 1;
    }
    for i in 0..n {
        s.counts[i + 1] += s.counts[i];
    }
    s.offsets.clear();
    s.offsets.extend_from_slice(&s.counts);
    s.targets.clear();
    s.targets.resize(s.edges.len(), 0);
    for &(from, to) in &s.edges {
        let slot = &mut s.counts[from as usize];
        s.targets[*slot as usize] = to;
        *slot += 1;
    }
}

/// (Re)computes the runs' value columns from the (re-priced) slot table
/// and the run compositions, leaving all structure untouched — the value
/// half of a fresh lowering and the entirety of a delta patch. With
/// `shards > 1` the work splits across disjoint contiguous run ranges on
/// scoped threads; each run's value is the exact integer sum
/// `Σ slot_value · multiplicity` either way, so the result is independent
/// of the split (and equals per-node accumulation: `u64` addition is
/// associative).
fn refill_runs(s: &mut CompactScratch, shards: usize) {
    let n_runs = s.run_device.len();
    for col in
        [&mut s.run_duration, &mut s.run_compute, &mut s.run_tp, &mut s.run_dp, &mut s.run_pp]
    {
        col.clear();
        col.resize(n_runs, TimeNs::ZERO);
    }
    if n_runs == 0 {
        return;
    }
    let shards = shards.clamp(1, n_runs);
    if shards == 1 {
        refill_range(
            0,
            &mut s.run_duration,
            &mut s.run_compute,
            &mut s.run_tp,
            &mut s.run_dp,
            &mut s.run_pp,
            &s.comp_run,
            &s.comp_slot,
            &s.comp_count,
            &s.slot_values,
            &s.slot_cat,
        );
        return;
    }
    // Deterministic split: ceil(n_runs / shards) runs per shard.
    // `comp_run` is non-decreasing, so each shard owns one contiguous
    // composition range, found by binary search at the run boundary.
    let chunk = n_runs.div_ceil(shards);
    let (comp_run, comp_slot, comp_count) = (&s.comp_run, &s.comp_slot, &s.comp_count);
    let (slot_values, slot_cat) = (&s.slot_values, &s.slot_cat);
    std::thread::scope(|scope| {
        let columns = s
            .run_duration
            .chunks_mut(chunk)
            .zip(s.run_compute.chunks_mut(chunk))
            .zip(s.run_tp.chunks_mut(chunk))
            .zip(s.run_dp.chunks_mut(chunk))
            .zip(s.run_pp.chunks_mut(chunk));
        let mut run_lo = 0usize;
        let mut comp_lo = 0usize;
        for ((((dur, comp), tp), dp), pp) in columns {
            let run_hi = run_lo + dur.len();
            let comp_hi = comp_lo + comp_run[comp_lo..].partition_point(|&r| (r as usize) < run_hi);
            let comp_cols = (
                &comp_run[comp_lo..comp_hi],
                &comp_slot[comp_lo..comp_hi],
                &comp_count[comp_lo..comp_hi],
            );
            scope.spawn(move || {
                refill_range(
                    run_lo as u32,
                    dur,
                    comp,
                    tp,
                    dp,
                    pp,
                    comp_cols.0,
                    comp_cols.1,
                    comp_cols.2,
                    slot_values,
                    slot_cat,
                )
            });
            run_lo = run_hi;
            comp_lo = comp_hi;
        }
    });
}

/// Accumulates the value columns of runs `[run_base, run_base +
/// dur.len())` (already zeroed) from their composition triples.
#[allow(clippy::too_many_arguments)]
fn refill_range(
    run_base: u32,
    dur: &mut [TimeNs],
    comp: &mut [TimeNs],
    tp: &mut [TimeNs],
    dp: &mut [TimeNs],
    pp: &mut [TimeNs],
    comp_run: &[u32],
    comp_slot: &[u32],
    comp_count: &[u32],
    slot_values: &[TimeNs],
    slot_cat: &[u8],
) {
    for ((&r, &slot), &count) in comp_run.iter().zip(comp_slot).zip(comp_count) {
        let i = (r - run_base) as usize;
        let v = TimeNs::from_nanos(slot_values[slot as usize].as_nanos() * count as u64);
        dur[i] += v;
        match slot_cat[slot as usize] {
            CAT_COMPUTE => comp[i] += v,
            CAT_TP => tp[i] += v,
            CAT_DP => dp[i] += v,
            _ => pp[i] += v,
        }
    }
}

/// The dataflow traversal over the aggregated graph. Compact graphs are
/// stream-chained by construction (the builder chains consecutive runs on
/// every slot), so the plain Kahn traversal reproduces the FIFO replay —
/// the same argument as `simulate`'s fast path, proven bit-identical by
/// the equivalence tests. The CSR and pristine in-degrees are taken as
/// built ([`build_csr`]); only working state is touched, so a patched
/// graph replays without re-deriving structure.
pub(crate) fn replay_lowered(s: &mut CompactScratch, devices: usize, report: &mut SimReport) {
    let n = s.run_device.len();
    s.in_degree.clear();
    s.in_degree.extend_from_slice(&s.in_degree0);

    report.busy = BusyBreakdown::default();
    report.iteration_time = TimeNs::ZERO;
    report.device_busy.clear();
    report.device_busy.resize(devices, TimeNs::ZERO);
    s.ready_at.clear();
    s.ready_at.resize(n, TimeNs::ZERO);
    s.stack.clear();
    s.stack.extend((0..n as u32).filter(|&i| s.in_degree[i as usize] == 0));

    let mut busy = BusyBreakdown::default();
    let mut iteration_time = TimeNs::ZERO;
    let mut executed_runs = 0usize;
    let mut executed_tasks = 0usize;
    while let Some(u) = s.stack.pop() {
        let i = u as usize;
        let finish = s.ready_at[i] + s.run_duration[i];
        iteration_time = iteration_time.max(finish);
        busy.compute += s.run_compute[i];
        busy.tp_comm += s.run_tp[i];
        busy.dp_comm += s.run_dp[i];
        busy.pp_comm += s.run_pp[i];
        report.device_busy[s.run_device[i] as usize] += s.run_compute[i] + s.run_tp[i];
        executed_runs += 1;
        executed_tasks += s.run_tasks[i] as usize;

        let lo = s.offsets[i] as usize;
        let hi = s.offsets[i + 1] as usize;
        for &c in &s.targets[lo..hi] {
            s.ready_at[c as usize] = s.ready_at[c as usize].max(finish);
            s.in_degree[c as usize] -= 1;
            if s.in_degree[c as usize] == 0 {
                s.stack.push(c);
            }
        }
    }
    assert_eq!(executed_runs, n, "compact graph contains a cycle: {executed_runs} of {n} runs ran");
    report.iteration_time = iteration_time;
    report.busy = busy;
    report.tasks_executed = executed_tasks;
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use vtrain_model::presets;
    use vtrain_parallel::{ClusterSpec, GpuSpec, ParallelConfig, PipelineSchedule};
    use vtrain_profile::{ProfileSet, Profiler};

    use super::*;
    use crate::sim::{simulate, SimMode};
    use crate::task_graph::TaskGraph;

    /// `ProfileSet` adapter for tests.
    struct SetSource<'a>(&'a ProfileSet);

    impl ProfileSource for SetSource<'_> {
        fn op_latency(&mut self, sig: &OpSignature) -> Option<(TimeNs, u32)> {
            self.0.lookup(sig)
        }
    }

    fn compare_point(
        model: &vtrain_model::ModelConfig,
        plan: &ParallelConfig,
        opts: &GraphOptions,
        scratch: &mut CompactScratch,
    ) {
        let cluster = ClusterSpec::aws_p4d(512);
        let comm = CommModel::new(&cluster, 1.0);
        let cache = vtrain_profile::ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        let sigs = vtrain_graph::plan_signatures(model, plan, opts);
        let profiles = cache.resolve(&profiler, &sigs);

        let full = TaskGraph::lower_fused(model, plan, opts, &profiles, &comm).unwrap();
        let expect = simulate(&full, SimMode::Predicted);

        let mut report = SimReport::default();
        let mut source = SetSource(&profiles);
        simulate_plan_compact(model, plan, opts, &mut source, &comm, scratch, &mut report).unwrap();

        assert_eq!(report.iteration_time, expect.iteration_time, "{plan}");
        assert_eq!(report.busy, expect.busy, "{plan}");
        assert_eq!(report.device_busy, expect.device_busy, "{plan}");
        assert_eq!(report.tasks_executed, expect.tasks_executed, "{plan}");
        // The aggregation must actually shrink the graph whenever a stage
        // holds more than one operator.
        assert!(scratch.num_runs() <= full.len());
    }

    #[test]
    fn compact_replay_matches_full_on_grid_corners() {
        let model = presets::megatron("1.7B");
        let mut scratch = CompactScratch::default();
        for (t, d, p, m, b) in
            [(1, 1, 1, 1, 4), (2, 2, 2, 1, 8), (2, 4, 3, 2, 16), (1, 8, 1, 1, 16), (4, 1, 6, 1, 6)]
        {
            for sched in [PipelineSchedule::OneFOneB, PipelineSchedule::GPipe] {
                for bucketing in [true, false] {
                    let plan = ParallelConfig::builder()
                        .tensor(t)
                        .data(d)
                        .pipeline(p)
                        .micro_batch(m)
                        .global_batch(b)
                        .schedule(sched)
                        .gradient_bucketing(bucketing)
                        .build()
                        .unwrap();
                    compare_point(&model, &plan, &GraphOptions::default(), &mut scratch);
                }
            }
        }
    }

    #[test]
    fn missing_profile_reported() {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder().global_batch(4).build().unwrap();
        let comm = CommModel::new(&ClusterSpec::aws_p4d(8), 1.0);
        let empty = ProfileSet::default();
        let mut source = SetSource(&empty);
        let err = simulate_plan_compact(
            &model,
            &plan,
            &GraphOptions::default(),
            &mut source,
            &comm,
            &mut CompactScratch::default(),
            &mut SimReport::default(),
        )
        .unwrap_err();
        assert_eq!(err, MissingProfile);
    }

    /// Runs `plan` through the delta-enabled path on `walk_scratch` and
    /// through a from-scratch lowering on a throwaway scratch, asserting
    /// bit-identical reports. Returns the walk path's outcome.
    fn compare_delta_step(
        model: &vtrain_model::ModelConfig,
        plan: &ParallelConfig,
        opts: &GraphOptions,
        walk_scratch: &mut CompactScratch,
        shards: usize,
    ) -> LowerOutcome {
        let cluster = ClusterSpec::aws_p4d(512);
        let comm = CommModel::new(&cluster, 1.0);
        let cache = vtrain_profile::ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        let sigs = vtrain_graph::plan_signatures(model, plan, opts);
        let profiles = cache.resolve(&profiler, &sigs);

        let mut fresh_report = SimReport::default();
        let mut fresh_scratch = CompactScratch::default();
        let mut source = SetSource(&profiles);
        simulate_plan_compact(
            model,
            plan,
            opts,
            &mut source,
            &comm,
            &mut fresh_scratch,
            &mut fresh_report,
        )
        .unwrap();

        let mut walk_report = SimReport::default();
        let mut source = SetSource(&profiles);
        let outcome = simulate_plan_delta(
            model,
            plan,
            opts,
            &mut source,
            &comm,
            walk_scratch,
            &mut walk_report,
            true,
            shards,
        )
        .unwrap();

        assert_eq!(walk_report.iteration_time, fresh_report.iteration_time, "{plan}");
        assert_eq!(walk_report.busy, fresh_report.busy, "{plan}");
        assert_eq!(walk_report.device_busy, fresh_report.device_busy, "{plan}");
        assert_eq!(walk_report.tasks_executed, fresh_report.tasks_executed, "{plan}");
        outcome
    }

    #[test]
    fn delta_patch_covers_shape_compatible_neighbors() {
        // A deterministic neighbor walk that must exercise the patch
        // path: t changes move slot values (boundary bytes per rank,
        // WU params) but not the shape; so do micro-batch changes with
        // n_micro held fixed.
        let model = presets::megatron("1.7B");
        let mut scratch = CompactScratch::default();
        let step = |t, m, b, scratch: &mut CompactScratch, shards| {
            let plan = ParallelConfig::builder()
                .tensor(t)
                .data(2)
                .pipeline(3)
                .micro_batch(m)
                .global_batch(b)
                .build()
                .unwrap();
            compare_delta_step(&model, &plan, &GraphOptions::default(), scratch, shards)
        };
        assert_eq!(step(2, 1, 8, &mut scratch, 1), LowerOutcome::Fresh);
        // t changes within t > 1 keep the shape (the TP slot exists
        // either way); only slot values move.
        assert_eq!(step(4, 1, 8, &mut scratch, 3), LowerOutcome::Patched);
        // Same n_micro (4), larger micro-batch: still a patch.
        assert_eq!(step(4, 2, 16, &mut scratch, 2), LowerOutcome::Patched);
        // n_micro changes (8): the stage programs differ, so re-lower.
        assert_eq!(step(4, 1, 16, &mut scratch, 1), LowerOutcome::Fresh);
        assert_eq!(step(2, 1, 16, &mut scratch, 4), LowerOutcome::Patched);
        // Dropping to t = 1 removes the TP slot: re-lower again.
        assert_eq!(step(1, 1, 16, &mut scratch, 1), LowerOutcome::Fresh);
    }

    #[test]
    #[ignore = "manual profiling aid"]
    fn profile_lower_breakdown() {
        let model = presets::mt_nlg_530b();
        let plan = ParallelConfig::builder()
            .tensor(8)
            .data(1)
            .pipeline(21)
            .micro_batch(1)
            .global_batch(1920)
            .build()
            .unwrap();
        let opts = GraphOptions::default();
        let cluster = ClusterSpec::aws_p4d(21 * 8);
        let comm = CommModel::new(&cluster, 1.0);
        let cache = vtrain_profile::ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        let sigs = vtrain_graph::plan_signatures(&model, &plan, &opts);
        let profiles = cache.resolve(&profiler, &sigs);
        let mut scratch = CompactScratch::default();
        let mut report = SimReport::default();
        for round in 0..3 {
            let t0 = std::time::Instant::now();
            let mut source = SetSource(&profiles);
            resolve_slots(
                &model,
                &plan,
                &opts,
                &mut source,
                &comm,
                &mut scratch.slot_values,
                &mut scratch.slot_cat,
            );
            let t1 = std::time::Instant::now();
            scratch.base_key = None;
            scratch.nodes = 0;
            scratch.comp_run.clear();
            scratch.comp_slot.clear();
            scratch.comp_count.clear();
            scratch.run_device.clear();
            scratch.run_tasks.clear();
            scratch.run_head.clear();
            scratch.run_tail.clear();
            scratch.edges.clear();
            scratch.reps.clear();
            scratch.open.clear();
            scratch.open.resize(plan.pipeline(), NONE);
            let mut sink = CompactSink { s: &mut scratch };
            build_op_graph_into(&model, &plan, &opts, &mut sink);
            let t2 = std::time::Instant::now();
            build_csr(&mut scratch);
            let t3 = std::time::Instant::now();
            refill_runs(&mut scratch, 1);
            let t4 = std::time::Instant::now();
            replay_lowered(&mut scratch, plan.pipeline(), &mut report);
            let t5 = std::time::Instant::now();
            eprintln!(
                "round {round}: slots {:?} build {:?} csr {:?} refill {:?} replay {:?} | nodes {} runs {} comp {} edges {}",
                t1 - t0,
                t2 - t1,
                t3 - t2,
                t4 - t3,
                t5 - t4,
                scratch.nodes,
                scratch.run_device.len(),
                scratch.comp_run.len(),
                scratch.edges.len(),
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Golden equivalence: the aggregated replay reproduces the full
        /// lowering + Predicted replay bit for bit on sampled design
        /// points — schedules, bucketing, recompute, uneven partitions.
        #[test]
        fn compact_replay_is_bit_identical_to_full(
            t_exp in 0usize..=2,
            d_exp in 0usize..=2,
            p in 1usize..=5,
            m_exp in 0usize..=1,
            n_micro in 1usize..=24,
            flags in 0u32..8,
        ) {
            let (gpipe, bucketing, recompute) =
                (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
            let (t, d, m) = (1usize << t_exp, 1 << d_exp, 1 << m_exp);
            // Large-ish micro-batch counts exercise the builder's
            // periodic block replication (warmup/steady/drain splits).
            let b = d * m * n_micro;
            let sched = if gpipe { PipelineSchedule::GPipe } else { PipelineSchedule::OneFOneB };
            let plan = ParallelConfig::builder()
                .tensor(t).data(d).pipeline(p).micro_batch(m).global_batch(b)
                .schedule(sched).gradient_bucketing(bucketing).build().unwrap();
            let opts = GraphOptions { recompute, ..GraphOptions::default() };
            compare_point(&presets::megatron("1.7B"), &plan, &opts, &mut CompactScratch::default());
        }

        /// Delta A/B: walking random neighbors with one shared scratch —
        /// patched whenever shapes line up, re-lowered otherwise, with
        /// random shard splits — always reproduces a from-scratch
        /// lowering bit for bit.
        #[test]
        fn delta_lowering_matches_fresh_on_random_walks(
            walk in proptest::collection::vec(
                (0usize..=2, 0usize..=2, 1usize..=4, 0usize..=1, 0u32..4,
                 (1usize..=4, 1usize..=12)),
                2..6,
            ),
        ) {
            let model = presets::megatron("1.7B");
            let mut scratch = CompactScratch::default();
            for (t_exp, d_exp, p, m_exp, flags, (shards, n_micro)) in walk {
                let (gpipe, bucketing) = (flags & 1 != 0, flags & 2 != 0);
                let (t, d, m) = (1usize << t_exp, 1 << d_exp, 1 << m_exp);
                let b = d * m * n_micro;
                let sched =
                    if gpipe { PipelineSchedule::GPipe } else { PipelineSchedule::OneFOneB };
                let plan = ParallelConfig::builder()
                    .tensor(t).data(d).pipeline(p).micro_batch(m).global_batch(b)
                    .schedule(sched).gradient_bucketing(bucketing).build().unwrap();
                compare_delta_step(
                    &model, &plan, &GraphOptions::default(), &mut scratch, shards,
                );
            }
        }
    }
}
