//! The sweep's compact replay: run-aggregated lowering fused with the
//! Predicted-mode Algorithm 1 traversal.
//!
//! The graph builder emits long program-order chains per (device, stream)
//! whose interior nodes never source or receive cross edges — whole
//! forward/backward slots between [`GraphSink::cut`] boundaries. Because
//! the Predicted replay applies no per-task perturbation, such a chain is
//! lossless to aggregate: its start is its head's ready time, its finish
//! is `start + Σ durations` (exact `u64` arithmetic), and every quantity
//! the report accumulates (category busy sums, device busy, task counts,
//! the finish-time maximum) distributes over the chain. The compact graph
//! is therefore one-to-two orders of magnitude smaller than the full task
//! graph while producing a **bit-identical** [`SimReport`] — proven
//! against the full lowering + replay by the equivalence property test
//! below and by the sweep's golden grid A/B.
//!
//! Measured mode keys noise on task ids and must replay the full graph;
//! this path is Predicted-only by construction.
//!
//! All buffers live in a caller-owned [`CompactScratch`], so steady-state
//! sweep evaluation performs no per-point heap allocation here.

use vtrain_graph::{
    build_op_graph_into, CommKind, CommOp, GraphOptions, GraphSink, Op, OpNode, OpSignature,
    StreamKind,
};
use vtrain_model::{ModelConfig, TimeNs};
use vtrain_parallel::ParallelConfig;
use vtrain_profile::CommModel;

use crate::sim::{BusyBreakdown, SimReport};
use crate::task_graph::MissingProfile;

/// Resolves compute-operator signatures to `(total latency, kernel
/// count)` during compact lowering. Implemented by the estimator over the
/// shared profile cache (with per-sweep hit/miss attribution) and by
/// profile-set adapters in tests.
pub(crate) trait ProfileSource {
    /// The profiled `(total latency, kernel count)` of `sig`, or `None`
    /// if the signature cannot be resolved.
    fn op_latency(&mut self, sig: &OpSignature) -> Option<(TimeNs, u32)>;
}

/// No open run on this device's compute stream.
const NONE: u32 = u32::MAX;

/// One aggregated chain of tasks on a single (device, stream).
#[derive(Clone, Copy, Debug, Default)]
struct Run {
    device: u32,
    /// Total chain duration (sum of member durations).
    duration: TimeNs,
    /// Contribution to `busy.compute`.
    compute: TimeNs,
    /// Contribution to `busy.tp_comm`.
    tp: TimeNs,
    /// Contribution to `busy.dp_comm`.
    dp: TimeNs,
    /// Contribution to `busy.pp_comm`.
    pp: TimeNs,
    /// Source tasks aggregated into this run.
    tasks: u32,
    /// Builder node ids of the chain endpoints (invariant checks).
    head: u32,
    tail: u32,
}

/// Reusable buffers of the compact lowering + replay.
#[derive(Default)]
pub struct CompactScratch {
    /// Builder node id → owning run.
    node_run: Vec<u32>,
    runs: Vec<Run>,
    /// Inter-run edges as collected (source-run, target-run).
    edges: Vec<(u32, u32)>,
    /// Counting-sort cursor for the CSR build.
    counts: Vec<u32>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    in_degree: Vec<u32>,
    ready_at: Vec<TimeNs>,
    stack: Vec<u32>,
    /// Open (extendable) compute-stream run per device.
    open: Vec<u32>,
    /// Per-point compute-profile memo (a plan touches ≲ `8 + p` distinct
    /// signatures; a short linear probe beats hashing per node).
    sig_memo: Vec<(OpSignature, TimeNs)>,
    /// Per-point communication-latency memo.
    comm_memo: Vec<(CommOp, TimeNs)>,
}

struct CompactSink<'a, P> {
    profiles: &'a mut P,
    comm: &'a CommModel,
    s: &'a mut CompactScratch,
    missing: bool,
}

impl<P: ProfileSource> CompactSink<'_, P> {
    fn compute_latency(&mut self, sig: &OpSignature) -> TimeNs {
        if let Some(&(_, total)) = self.s.sig_memo.iter().find(|(cached, _)| cached == sig) {
            return total;
        }
        let total = match self.profiles.op_latency(sig) {
            Some((total, _)) => total,
            None => {
                self.missing = true;
                TimeNs::ZERO
            }
        };
        self.s.sig_memo.push((*sig, total));
        total
    }

    fn comm_latency(&mut self, op: &CommOp) -> TimeNs {
        if let Some(&(_, latency)) = self.s.comm_memo.iter().find(|(cached, _)| cached == op) {
            return latency;
        }
        let latency = self.comm.latency(op);
        self.s.comm_memo.push((*op, latency));
        latency
    }
}

impl<P: ProfileSource> GraphSink for CompactSink<'_, P> {
    fn push(&mut self, node: OpNode) -> u32 {
        let id = self.s.node_run.len() as u32;
        let dev = node.device as usize;
        // Busy-category deltas of this node.
        let (duration, compute, tp, dp, pp) = match &node.op {
            Op::Compute(c) => {
                let d = self.compute_latency(&c.sig);
                (d, d, TimeNs::ZERO, TimeNs::ZERO, TimeNs::ZERO)
            }
            Op::Comm(c) => {
                let d = self.comm_latency(c);
                let z = TimeNs::ZERO;
                match c.kind {
                    CommKind::TpAllReduce => (d, z, d, z, z),
                    CommKind::DpAllReduce => (d, z, z, d, z),
                    CommKind::PpSendRecv => (d, z, z, z, d),
                }
            }
        };

        let extend = node.stream == StreamKind::Compute && self.s.open[dev] != NONE;
        let run_id = if extend {
            let r = self.s.open[dev];
            let run = &mut self.s.runs[r as usize];
            run.duration += duration;
            run.compute += compute;
            run.tp += tp;
            run.dp += dp;
            run.pp += pp;
            run.tasks += 1;
            run.tail = id;
            r
        } else {
            let r = self.s.runs.len() as u32;
            self.s.runs.push(Run {
                device: node.device,
                duration,
                compute,
                tp,
                dp,
                pp,
                tasks: 1,
                head: id,
                tail: id,
            });
            // Communication nodes join at cross-stream edges, so they are
            // never extendable; compute chains stay open until cut.
            if node.stream == StreamKind::Compute {
                self.s.open[dev] = r;
            }
            r
        };
        self.s.node_run.push(run_id);
        id
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        let rf = self.s.node_run[from as usize];
        let rt = self.s.node_run[to as usize];
        if rf == rt {
            // The only intra-run edges are the builder's program-order
            // chain links between consecutive members.
            assert_eq!(to, from + 1, "non-chain edge inside an aggregation run");
            return;
        }
        let src = &self.s.runs[rf as usize];
        // An edge may only leave a run at its (current) tail; once it
        // does, the run must not grow past the tail, so seal it.
        assert_eq!(src.tail, from, "edge from the interior of an aggregation run");
        if self.s.open[src.device as usize] == rf {
            self.s.open[src.device as usize] = NONE;
        }
        assert_eq!(
            self.s.runs[rt as usize].head, to,
            "edge into the interior of an aggregation run"
        );
        self.s.edges.push((rf, rt));
    }

    fn cut(&mut self, device: u32) {
        self.s.open[device as usize] = NONE;
    }
}

/// Lowers `(model, plan)` straight into an aggregated replay graph and
/// replays it in Predicted mode, writing the result into `report` — the
/// sweep's fused lower + simulate hot path. Produces a report
/// bit-identical to `simulate(&TaskGraph::lower_fused(..)?,
/// SimMode::Predicted)`.
///
/// # Errors
///
/// Returns [`MissingProfile`] if `profiles` cannot resolve a signature
/// the builder emits.
///
/// # Panics
///
/// Same conditions as [`vtrain_graph::build_op_graph`], or if the builder
/// violates its [`GraphSink::cut`] aggregation contract (a bug, caught by
/// the equivalence property tests).
pub(crate) fn simulate_plan_compact<P: ProfileSource>(
    model: &ModelConfig,
    plan: &ParallelConfig,
    opts: &GraphOptions,
    profiles: &mut P,
    comm: &CommModel,
    scratch: &mut CompactScratch,
    report: &mut SimReport,
) -> Result<(), MissingProfile> {
    let devices = plan.pipeline();
    scratch.node_run.clear();
    scratch.runs.clear();
    scratch.edges.clear();
    scratch.sig_memo.clear();
    scratch.comm_memo.clear();
    scratch.open.clear();
    scratch.open.resize(devices, NONE);

    let mut sink = CompactSink { profiles, comm, s: scratch, missing: false };
    build_op_graph_into(model, plan, opts, &mut sink);
    if sink.missing {
        return Err(MissingProfile);
    }

    replay(scratch, devices, report);
    Ok(())
}

/// The dataflow traversal over the aggregated graph. Compact graphs are
/// stream-chained by construction (the builder chains consecutive runs on
/// every slot), so the plain Kahn traversal reproduces the FIFO replay —
/// the same argument as `simulate`'s fast path, proven bit-identical by
/// the equivalence tests.
fn replay(s: &mut CompactScratch, devices: usize, report: &mut SimReport) {
    let n = s.runs.len();
    // CSR over inter-run edges, preserving per-source insertion order,
    // with in-degrees computed in the same pass.
    s.counts.clear();
    s.counts.resize(n + 1, 0);
    s.in_degree.clear();
    s.in_degree.resize(n, 0);
    for &(from, to) in &s.edges {
        s.counts[from as usize + 1] += 1;
        s.in_degree[to as usize] += 1;
    }
    for i in 0..n {
        s.counts[i + 1] += s.counts[i];
    }
    s.offsets.clear();
    s.offsets.extend_from_slice(&s.counts);
    s.targets.clear();
    s.targets.resize(s.edges.len(), 0);
    for &(from, to) in &s.edges {
        let slot = &mut s.counts[from as usize];
        s.targets[*slot as usize] = to;
        *slot += 1;
    }

    report.busy = BusyBreakdown::default();
    report.iteration_time = TimeNs::ZERO;
    report.device_busy.clear();
    report.device_busy.resize(devices, TimeNs::ZERO);
    s.ready_at.clear();
    s.ready_at.resize(n, TimeNs::ZERO);
    s.stack.clear();
    s.stack.extend((0..n as u32).filter(|&i| s.in_degree[i as usize] == 0));

    let mut busy = BusyBreakdown::default();
    let mut iteration_time = TimeNs::ZERO;
    let mut executed_runs = 0usize;
    let mut executed_tasks = 0usize;
    while let Some(u) = s.stack.pop() {
        let run = &s.runs[u as usize];
        let finish = s.ready_at[u as usize] + run.duration;
        iteration_time = iteration_time.max(finish);
        busy.compute += run.compute;
        busy.tp_comm += run.tp;
        busy.dp_comm += run.dp;
        busy.pp_comm += run.pp;
        report.device_busy[run.device as usize] += run.compute + run.tp;
        executed_runs += 1;
        executed_tasks += run.tasks as usize;

        let lo = s.offsets[u as usize] as usize;
        let hi = s.offsets[u as usize + 1] as usize;
        for &c in &s.targets[lo..hi] {
            s.ready_at[c as usize] = s.ready_at[c as usize].max(finish);
            s.in_degree[c as usize] -= 1;
            if s.in_degree[c as usize] == 0 {
                s.stack.push(c);
            }
        }
    }
    assert_eq!(executed_runs, n, "compact graph contains a cycle: {executed_runs} of {n} runs ran");
    report.iteration_time = iteration_time;
    report.busy = busy;
    report.tasks_executed = executed_tasks;
}

#[cfg(test)]
mod tests {
    use proptest::prelude::*;
    use vtrain_model::presets;
    use vtrain_parallel::{ClusterSpec, GpuSpec, ParallelConfig, PipelineSchedule};
    use vtrain_profile::{ProfileSet, Profiler};

    use super::*;
    use crate::sim::{simulate, SimMode};
    use crate::task_graph::TaskGraph;

    /// `ProfileSet` adapter for tests.
    struct SetSource<'a>(&'a ProfileSet);

    impl ProfileSource for SetSource<'_> {
        fn op_latency(&mut self, sig: &OpSignature) -> Option<(TimeNs, u32)> {
            self.0.lookup(sig)
        }
    }

    fn compare_point(
        model: &vtrain_model::ModelConfig,
        plan: &ParallelConfig,
        opts: &GraphOptions,
        scratch: &mut CompactScratch,
    ) {
        let cluster = ClusterSpec::aws_p4d(512);
        let comm = CommModel::new(&cluster, 1.0);
        let cache = vtrain_profile::ProfileCache::new();
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        let sigs = vtrain_graph::plan_signatures(model, plan, opts);
        let profiles = cache.resolve(&profiler, &sigs);

        let full = TaskGraph::lower_fused(model, plan, opts, &profiles, &comm).unwrap();
        let expect = simulate(&full, SimMode::Predicted);

        let mut report = SimReport::default();
        let mut source = SetSource(&profiles);
        simulate_plan_compact(model, plan, opts, &mut source, &comm, scratch, &mut report).unwrap();

        assert_eq!(report.iteration_time, expect.iteration_time, "{plan}");
        assert_eq!(report.busy, expect.busy, "{plan}");
        assert_eq!(report.device_busy, expect.device_busy, "{plan}");
        assert_eq!(report.tasks_executed, expect.tasks_executed, "{plan}");
        // The aggregation must actually shrink the graph whenever a stage
        // holds more than one operator.
        assert!(scratch.runs.len() <= full.len());
    }

    #[test]
    fn compact_replay_matches_full_on_grid_corners() {
        let model = presets::megatron("1.7B");
        let mut scratch = CompactScratch::default();
        for (t, d, p, m, b) in
            [(1, 1, 1, 1, 4), (2, 2, 2, 1, 8), (2, 4, 3, 2, 16), (1, 8, 1, 1, 16), (4, 1, 6, 1, 6)]
        {
            for sched in [PipelineSchedule::OneFOneB, PipelineSchedule::GPipe] {
                for bucketing in [true, false] {
                    let plan = ParallelConfig::builder()
                        .tensor(t)
                        .data(d)
                        .pipeline(p)
                        .micro_batch(m)
                        .global_batch(b)
                        .schedule(sched)
                        .gradient_bucketing(bucketing)
                        .build()
                        .unwrap();
                    compare_point(&model, &plan, &GraphOptions::default(), &mut scratch);
                }
            }
        }
    }

    #[test]
    fn missing_profile_reported() {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder().global_batch(4).build().unwrap();
        let comm = CommModel::new(&ClusterSpec::aws_p4d(8), 1.0);
        let empty = ProfileSet::default();
        let mut source = SetSource(&empty);
        let err = simulate_plan_compact(
            &model,
            &plan,
            &GraphOptions::default(),
            &mut source,
            &comm,
            &mut CompactScratch::default(),
            &mut SimReport::default(),
        )
        .unwrap_err();
        assert_eq!(err, MissingProfile);
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Golden equivalence: the aggregated replay reproduces the full
        /// lowering + Predicted replay bit for bit on sampled design
        /// points — schedules, bucketing, recompute, uneven partitions.
        #[test]
        fn compact_replay_is_bit_identical_to_full(
            t_exp in 0usize..=2,
            d_exp in 0usize..=2,
            p in 1usize..=5,
            m_exp in 0usize..=1,
            flags in 0u32..8,
        ) {
            let (gpipe, bucketing, recompute) =
                (flags & 1 != 0, flags & 2 != 0, flags & 4 != 0);
            let (t, d, m) = (1usize << t_exp, 1 << d_exp, 1 << m_exp);
            let b = d * m * 2;
            let sched = if gpipe { PipelineSchedule::GPipe } else { PipelineSchedule::OneFOneB };
            let plan = ParallelConfig::builder()
                .tensor(t).data(d).pipeline(p).micro_batch(m).global_batch(b)
                .schedule(sched).gradient_bucketing(bucketing).build().unwrap();
            let opts = GraphOptions { recompute, ..GraphOptions::default() };
            compare_point(&presets::megatron("1.7B"), &plan, &opts, &mut CompactScratch::default());
        }
    }
}
