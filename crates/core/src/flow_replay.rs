//! The fair-sharing replay: Algorithm 1's task graph re-run in *physical*
//! time with communication tasks as flows on a shared network.
//!
//! The closed-form replay ([`crate::sim`]) prices every communication
//! task in isolation and replays the graph in logical time — correct by
//! construction when links never carry two transfers at once. Under
//! [`NetworkBackend::FairSharing`](vtrain_net::NetworkBackend) that
//! assumption is dropped: each link-crossing comm task becomes a flow in
//! a [`FlowSim`], overlapping DP/TP/PP collectives on a tier split its
//! effective bandwidth max-min fairly, and a task's duration is whatever
//! the contended drain actually took. Tasks without a flow program
//! (intra-node collectives priced by the profiled tables, compute
//! kernels) keep their fixed closed-form durations.
//!
//! The replay runs on the shared [`vtrain_engine`] discrete-event kernel:
//! task readiness and fixed-duration finishes are engine events, and the
//! network contributes a single re-armed `NetTick` event at the flow
//! simulator's next join/drain boundary, invalidated by a generation
//! counter whenever the flow set changes. With zero concurrent flows the
//! physical-time schedule coincides with the logical-time one, so a
//! contention-free replay reproduces the closed-form report exactly (see
//! the equivalence tests in `estimate.rs`).

use std::collections::VecDeque;

use vtrain_engine::{Handler, Simulation};
use vtrain_graph::CommKind;
use vtrain_model::TimeNs;
use vtrain_net::flow::{FlowProgram, FlowSim};
use vtrain_net::Topology;

use crate::sim::{BusyBreakdown, SimReport, TaskTrace};
use crate::task_graph::{TaskGraph, TaskKind};

/// Observer of the network's state at every refill: `(time, per-tier
/// utilization)` — the timeline exporter's counter-track feed.
pub type NetTrace<'t> = &'t mut dyn FnMut(TimeNs, &[f64]);

enum FlowEvent {
    /// All dependencies of task `.0` are satisfied.
    Ready(u32),
    /// Fixed-duration task `.0` finishes now.
    Finish(u32),
    /// The flow simulator has a join/drain boundary now (valid only if
    /// the generation `.0` is still current).
    NetTick(u64),
}

struct FlowReplay<'a, 't> {
    graph: &'a TaskGraph,
    programs: &'a [Option<FlowProgram>],
    net: FlowSim,
    /// Bumped on every flow-set mutation; pending `NetTick`s with an
    /// older generation are stale and ignored.
    generation: u64,
    /// task id of each in-flight flow, indexed by `FlowId` slot.
    flow_task: Vec<u32>,
    in_degree: Vec<u32>,
    started_at: Vec<TimeNs>,
    /// Per-(device, stream) FIFO of ready tasks and the running task.
    queues: Vec<VecDeque<u32>>,
    running: Vec<Option<u32>>,
    device_busy: Vec<TimeNs>,
    busy: BusyBreakdown,
    iteration_time: TimeNs,
    executed: usize,
    trace: Option<TaskTrace<'t>>,
    net_trace: Option<NetTrace<'t>>,
    /// `(refill count at last sample, per-tier utilization histograms)`
    /// when the metrics registry is live.
    metrics: Option<Vec<std::sync::Arc<vtrain_obs::Histogram>>>,
}

impl<'a, 't> FlowReplay<'a, 't> {
    fn lane(&self, task: u32) -> usize {
        let dev = self.graph.devices()[task as usize] as usize;
        let stream = self.graph.streams()[task as usize] as usize;
        dev * 2 + stream
    }

    /// Re-arms the network tick after a flow-set mutation and samples the
    /// observers.
    fn rearm(&mut self, sim: &mut Simulation<FlowEvent>) {
        self.generation += 1;
        if let Some(at) = self.net.next_event() {
            sim.schedule(at, FlowEvent::NetTick(self.generation));
        }
        let now = self.net.now();
        if self.net_trace.is_some() || self.metrics.is_some() {
            let util = self.net.utilization();
            if let Some(trace) = self.net_trace.as_mut() {
                trace(now, &util);
            }
            if let Some(histograms) = &self.metrics {
                for (h, u) in histograms.iter().zip(&util) {
                    h.record((u * 100.0).round() as u64);
                }
            }
        }
    }

    /// Starts `task` on its stream at the current time.
    fn start_task(&mut self, task: u32, sim: &mut Simulation<FlowEvent>) {
        let now = sim.now();
        self.started_at[task as usize] = now;
        match &self.programs[task as usize] {
            Some(program) => {
                // Process any flow boundary landing exactly now before
                // the join, then admit the new flow.
                let done = self.net.advance(now);
                self.settle_flows(done, sim);
                let slot = self.net.start(now, program.clone());
                if self.flow_task.len() <= slot {
                    self.flow_task.resize(slot + 1, u32::MAX);
                }
                self.flow_task[slot] = task;
                self.rearm(sim);
            }
            None => {
                let duration = self.graph.durations()[task as usize];
                sim.schedule(now + duration, FlowEvent::Finish(task));
            }
        }
    }

    /// Completes the tasks whose flows just finished.
    fn settle_flows(&mut self, done: Vec<usize>, sim: &mut Simulation<FlowEvent>) {
        for slot in done {
            let task = self.flow_task[slot];
            self.flow_task[slot] = u32::MAX;
            self.finish_task(task, sim);
        }
    }

    /// Books the finished task and releases its stream and children.
    fn finish_task(&mut self, task: u32, sim: &mut Simulation<FlowEvent>) {
        let i = task as usize;
        let now = sim.now();
        let duration = now - self.started_at[i];
        self.iteration_time = self.iteration_time.max(now);
        if let Some(trace) = self.trace.as_mut() {
            trace(task, self.started_at[i], now);
        }
        let dev = self.graph.devices()[i] as usize;
        match self.graph.kinds()[i] {
            TaskKind::Compute { .. } => {
                self.busy.compute += duration;
                self.device_busy[dev] += duration;
            }
            TaskKind::Comm { kind, .. } => match kind {
                CommKind::TpAllReduce => {
                    self.busy.tp_comm += duration;
                    self.device_busy[dev] += duration;
                }
                CommKind::DpAllReduce => self.busy.dp_comm += duration,
                CommKind::PpSendRecv => self.busy.pp_comm += duration,
            },
        }
        self.executed += 1;

        for &c in self.graph.children(task) {
            self.in_degree[c as usize] -= 1;
            if self.in_degree[c as usize] == 0 {
                sim.schedule(now, FlowEvent::Ready(c));
            }
        }

        // The stream is free: start its next queued task.
        let lane = self.lane(task);
        self.running[lane] = None;
        if let Some(next) = self.queues[lane].pop_front() {
            self.running[lane] = Some(next);
            self.start_task(next, sim);
        }
    }
}

impl Handler<FlowEvent> for FlowReplay<'_, '_> {
    fn handle(&mut self, event: FlowEvent, sim: &mut Simulation<FlowEvent>) {
        match event {
            FlowEvent::Ready(task) => {
                let lane = self.lane(task);
                if self.running[lane].is_none() {
                    self.running[lane] = Some(task);
                    self.start_task(task, sim);
                } else {
                    self.queues[lane].push_back(task);
                }
            }
            FlowEvent::Finish(task) => self.finish_task(task, sim),
            FlowEvent::NetTick(generation) => {
                if generation != self.generation {
                    return; // Stale: the flow set changed since arming.
                }
                let done = self.net.advance(sim.now());
                self.settle_flows(done, sim);
                self.rearm(sim);
            }
        }
    }
}

/// Replays `graph` in physical time with fair-shared network flows.
///
/// `programs[i]` is task `i`'s bandwidth demand ([`None`] keeps the
/// closed-form fixed duration). `trace` observes `(task, start, finish)`
/// per executed task; `net_trace` observes `(time, per-tier utilization)`
/// at every refill.
///
/// # Panics
///
/// Panics if `programs.len() != graph.len()` or the graph has a cycle.
pub(crate) fn simulate_flows<'t>(
    graph: &TaskGraph,
    programs: &[Option<FlowProgram>],
    topology: &Topology,
    trace: Option<TaskTrace<'t>>,
    net_trace: Option<NetTrace<'t>>,
) -> SimReport {
    assert_eq!(programs.len(), graph.len(), "one program slot per task");
    let lanes = graph.num_devices() as usize * 2;
    let mut in_degree = Vec::new();
    graph.fill_in_degrees(&mut in_degree);

    let metrics = vtrain_obs::enabled().then(|| {
        let reg = vtrain_obs::global();
        (0..topology.num_tiers())
            .map(|t| reg.histogram(&format!("net.link_utilization.tier{t}")))
            .collect()
    });

    let mut replay = FlowReplay {
        graph,
        programs,
        net: FlowSim::new(topology),
        generation: 0,
        flow_task: Vec::new(),
        in_degree,
        started_at: vec![TimeNs::ZERO; graph.len()],
        queues: vec![VecDeque::new(); lanes],
        running: vec![None; lanes],
        device_busy: vec![TimeNs::ZERO; graph.num_devices() as usize],
        busy: BusyBreakdown::default(),
        iteration_time: TimeNs::ZERO,
        executed: 0,
        trace,
        net_trace,
        metrics,
    };

    let mut sim = Simulation::new();
    for i in 0..graph.len() as u32 {
        if replay.in_degree[i as usize] == 0 {
            sim.schedule(TimeNs::ZERO, FlowEvent::Ready(i));
        }
    }
    sim.run(&mut replay);

    assert_eq!(
        replay.executed,
        graph.len(),
        "task graph contains a cycle: {} of {} tasks ran",
        replay.executed,
        graph.len()
    );
    if vtrain_obs::enabled() {
        let reg = vtrain_obs::global();
        reg.gauge("net.flows_active").set_max(replay.net.max_active() as u64);
        reg.counter("net.refills").add(replay.net.refills());
    }
    SimReport {
        iteration_time: replay.iteration_time,
        busy: replay.busy,
        device_busy: replay.device_busy,
        tasks_executed: replay.executed,
    }
}
