//! Design-space exploration over `(t, d, p, m)` 3D-parallelism plans
//! (paper §V-A, Figs. 10/11, Tables I/II).
//!
//! Every simulation point is independent, so the sweep fans out over
//! crossbeam scoped threads — the software analogue of the paper's
//! "completely parallelizable over multiple CPU cores" observation (§III-F).

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use vtrain_model::ModelConfig;
use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule};

use crate::cost::{CostModel, TrainingProjection};
use crate::estimate::{Estimator, IterationEstimate};

/// Bounds of the exhaustive sweep (paper §V-A sweeps `t ≤ 16`, `d ≤ 32`,
/// `p ≤ 105`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchLimits {
    /// Maximum tensor-parallel degree.
    pub max_tensor: usize,
    /// Maximum data-parallel degree.
    pub max_data: usize,
    /// Maximum pipeline depth.
    pub max_pipeline: usize,
    /// Maximum micro-batch size.
    pub max_micro_batch: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits { max_tensor: 16, max_data: 32, max_pipeline: 105, max_micro_batch: 8 }
    }
}

/// One evaluated design point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The plan.
    pub plan: ParallelConfig,
    /// Its simulated verdict.
    pub estimate: IterationEstimate,
}

impl DesignPoint {
    /// End-to-end projection of this point over a token budget.
    pub fn project(&self, total_tokens: u64, cost: &CostModel) -> TrainingProjection {
        TrainingProjection::project(
            self.estimate.iteration_time,
            self.estimate.tokens_per_iteration,
            total_tokens,
            self.estimate.num_gpus,
            cost,
        )
    }
}

/// Enumerates the candidate plans of an exhaustive `(t, d, p, m)` sweep.
///
/// Tensor degrees are powers of two within the NVLink domain; pipeline
/// depths divide the layer count evenly (the paper's design methodology of
/// identically-shaped stages); `d·m` must divide the global batch.
pub fn enumerate_candidates(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    global_batch: usize,
    schedule: PipelineSchedule,
    limits: &SearchLimits,
) -> Vec<ParallelConfig> {
    let mut tensors = Vec::new();
    let mut t = 1;
    while t <= limits.max_tensor.min(cluster.gpus_per_node) {
        if model.num_heads().is_multiple_of(t) && model.hidden_size().is_multiple_of(t) {
            tensors.push(t);
        }
        t *= 2;
    }
    let pipelines: Vec<usize> = (1..=limits.max_pipeline.min(model.num_layers()))
        .filter(|&p| model.num_layers().is_multiple_of(p))
        .collect();
    let mut out = Vec::new();
    for &t in &tensors {
        for d in 1..=limits.max_data {
            if !global_batch.is_multiple_of(d) {
                continue;
            }
            for &p in &pipelines {
                if t * d * p > cluster.total_gpus {
                    continue;
                }
                let mut m = 1;
                while m <= limits.max_micro_batch {
                    if (global_batch / d).is_multiple_of(m) {
                        let plan = ParallelConfig::builder()
                            .tensor(t)
                            .data(d)
                            .pipeline(p)
                            .micro_batch(m)
                            .global_batch(global_batch)
                            .schedule(schedule)
                            .build()
                            .expect("enumerated divisibility holds");
                        out.push(plan);
                    }
                    m *= 2;
                }
            }
        }
    }
    out
}

/// Evaluates candidates in parallel, discarding infeasible plans.
///
/// Results are returned in candidate order regardless of thread
/// interleaving, so sweeps are deterministic.
pub fn sweep(
    estimator: &Estimator,
    model: &ModelConfig,
    candidates: &[ParallelConfig],
    threads: usize,
) -> Vec<DesignPoint> {
    let threads = threads.max(1);
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, DesignPoint)>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= candidates.len() {
                    break;
                }
                if let Ok(estimate) = estimator.estimate(model, &candidates[i]) {
                    results.lock().push((i, DesignPoint { plan: candidates[i], estimate }));
                }
            });
        }
    })
    .expect("sweep worker panicked");
    let mut out = results.into_inner();
    out.sort_by_key(|(i, _)| *i);
    out.into_iter().map(|(_, p)| p).collect()
}

/// Convenience: enumerate + sweep with one call.
pub fn explore(
    estimator: &Estimator,
    model: &ModelConfig,
    global_batch: usize,
    schedule: PipelineSchedule,
    limits: &SearchLimits,
    threads: usize,
) -> Vec<DesignPoint> {
    let candidates =
        enumerate_candidates(model, estimator.cluster(), global_batch, schedule, limits);
    sweep(estimator, model, &candidates, threads)
}

/// The fastest feasible plan using at most `max_gpus` GPUs.
pub fn fastest_within_gpu_budget(points: &[DesignPoint], max_gpus: usize) -> Option<&DesignPoint> {
    points
        .iter()
        .filter(|p| p.estimate.num_gpus <= max_gpus)
        .min_by(|a, b| a.estimate.iteration_time.cmp(&b.estimate.iteration_time))
}

/// The cheapest end-to-end plan (total dollars over `total_tokens`) using at
/// most `max_gpus` GPUs — the paper's cost-effectiveness criterion
/// (Table I).
pub fn most_cost_effective<'a>(
    points: &'a [DesignPoint],
    total_tokens: u64,
    cost: &CostModel,
    max_gpus: usize,
) -> Option<(&'a DesignPoint, TrainingProjection)> {
    points
        .iter()
        .filter(|p| p.estimate.num_gpus <= max_gpus)
        .map(|p| (p, p.project(total_tokens, cost)))
        .min_by(|a, b| a.1.total_dollars.total_cmp(&b.1.total_dollars))
}

/// Pareto frontier minimizing `(iteration_time, num_gpus)`.
pub fn pareto_front(points: &[DesignPoint]) -> Vec<&DesignPoint> {
    let mut front: Vec<&DesignPoint> = Vec::new();
    for p in points {
        let dominated = points.iter().any(|q| {
            (q.estimate.iteration_time < p.estimate.iteration_time
                && q.estimate.num_gpus <= p.estimate.num_gpus)
                || (q.estimate.iteration_time <= p.estimate.iteration_time
                    && q.estimate.num_gpus < p.estimate.num_gpus)
        });
        if !dominated {
            front.push(p);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_model::presets;

    fn small_points() -> Vec<DesignPoint> {
        let cluster = ClusterSpec::aws_p4d(16);
        let estimator = Estimator::new(cluster);
        let model = presets::megatron("1.7B");
        explore(
            &estimator,
            &model,
            16,
            PipelineSchedule::OneFOneB,
            &SearchLimits { max_tensor: 4, max_data: 4, max_pipeline: 4, max_micro_batch: 4 },
            4,
        )
    }

    #[test]
    fn enumeration_respects_constraints() {
        let model = presets::megatron("1.7B"); // 24 layers
        let cluster = ClusterSpec::aws_p4d(64);
        let limits =
            SearchLimits { max_tensor: 16, max_data: 8, max_pipeline: 8, max_micro_batch: 4 };
        let cands = enumerate_candidates(&model, &cluster, 32, PipelineSchedule::OneFOneB, &limits);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.tensor() <= 8, "tensor capped by node size");
            assert_eq!(24 % c.pipeline(), 0, "even stage partition");
            assert_eq!(32 % (c.data() * c.micro_batch()), 0);
            assert!(c.num_gpus() <= 64);
        }
    }

    #[test]
    fn sweep_returns_feasible_points_deterministically() {
        let a = small_points();
        let b = small_points();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.plan, y.plan);
            assert_eq!(x.estimate.iteration_time, y.estimate.iteration_time);
        }
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        let cluster = ClusterSpec::aws_p4d(16);
        let estimator = Estimator::new(cluster.clone());
        let model = presets::megatron("1.7B");
        let limits =
            SearchLimits { max_tensor: 2, max_data: 2, max_pipeline: 2, max_micro_batch: 2 };
        let cands = enumerate_candidates(&model, &cluster, 8, PipelineSchedule::OneFOneB, &limits);
        let serial = sweep(&estimator, &model, &cands, 1);
        let parallel = sweep(&estimator, &model, &cands, 8);
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.estimate.iteration_time, b.estimate.iteration_time);
        }
    }

    #[test]
    fn budget_filters_apply() {
        let points = small_points();
        let best = fastest_within_gpu_budget(&points, 8).unwrap();
        assert!(best.estimate.num_gpus <= 8);
        // No point under the budget beats it.
        for p in points.iter().filter(|p| p.estimate.num_gpus <= 8) {
            assert!(best.estimate.iteration_time <= p.estimate.iteration_time);
        }
    }

    #[test]
    fn cost_optimum_is_cheapest() {
        let points = small_points();
        let cost = CostModel::default();
        let (_, proj) = most_cost_effective(&points, 1_000_000_000, &cost, 16).unwrap();
        for p in &points {
            let other = p.project(1_000_000_000, &cost);
            assert!(proj.total_dollars <= other.total_dollars + 1e-9);
        }
    }

    #[test]
    fn pareto_points_are_mutually_nondominated() {
        let points = small_points();
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                let strictly_better = b.estimate.iteration_time < a.estimate.iteration_time
                    && b.estimate.num_gpus <= a.estimate.num_gpus;
                assert!(!strictly_better, "front contains dominated point");
            }
        }
    }
}
