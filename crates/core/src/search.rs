//! Design-space exploration over `(t, d, p, m)` 3D-parallelism plans
//! (paper §V-A, Figs. 10/11, Tables I/II).
//!
//! Every simulation point is independent, so the sweep fans out over a
//! work-stealing pool of scoped threads — the software analogue of the
//! paper's "completely parallelizable over multiple CPU cores"
//! observation (§III-F). Infeasible candidates are pruned by the cheap
//! validation stage before any lowering work; feasible points share the
//! estimator's profile cache, so each unique operator signature is
//! profiled once per sweep rather than once per plan.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use vtrain_model::{ModelConfig, TimeNs};
use vtrain_net::{NetworkBackend, Topology};
use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule};
use vtrain_profile::ProfileCache;

use crate::cost::{CostModel, TrainingProjection};
use crate::estimate::{Estimator, EstimatorScratch, IterationEstimate, StageNanos};
use crate::sim::BusyBreakdown;

/// Bounds of the exhaustive sweep (paper §V-A sweeps `t ≤ 16`, `d ≤ 32`,
/// `p ≤ 105`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchLimits {
    /// Maximum tensor-parallel degree.
    pub max_tensor: usize,
    /// Maximum data-parallel degree.
    pub max_data: usize,
    /// Maximum pipeline depth.
    pub max_pipeline: usize,
    /// Maximum micro-batch size.
    pub max_micro_batch: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits { max_tensor: 16, max_data: 32, max_pipeline: 105, max_micro_batch: 8 }
    }
}

/// One evaluated design point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct DesignPoint {
    /// The plan.
    pub plan: ParallelConfig,
    /// Its simulated verdict.
    pub estimate: IterationEstimate,
}

impl DesignPoint {
    /// End-to-end projection of this point over a token budget.
    pub fn project(&self, total_tokens: u64, cost: &CostModel) -> TrainingProjection {
        TrainingProjection::project(
            self.estimate.iteration_time,
            self.estimate.tokens_per_iteration,
            total_tokens,
            self.estimate.num_gpus,
            cost,
        )
    }
}

/// What a sweep must guarantee about its result — the license for
/// bound-guided pruning.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepGoal {
    /// Evaluate every feasible candidate and return all of them. No
    /// bounds are computed, so results are byte-identical to the
    /// pre-goal sweep by construction.
    #[default]
    Exhaustive,
    /// Return exactly the Pareto frontier minimizing
    /// `(iteration_time, num_gpus)`. Candidates whose analytic floor
    /// already loses to an evaluated incumbent (strictly slower at no
    /// fewer GPUs) are skipped without lowering.
    Front,
    /// Return exactly the single fastest feasible point (earliest
    /// candidate on ties). Candidates whose floor is strictly slower
    /// than the incumbent best are skipped without lowering.
    Best,
}

/// Why a sweep stopped before visiting every candidate.
///
/// Attached to [`SweepOutcome::aborted`] when a [`CancelToken`] fired
/// mid-sweep; `None` means the sweep ran to completion and its points
/// are the full (goal-filtered) result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbortReason {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    Deadline,
    /// The token's evaluated-point budget was exhausted.
    Budget,
}

#[derive(Debug, Default)]
struct CancelInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    /// Evaluation permits remaining; `None` means unbudgeted.
    permits: Option<AtomicU64>,
}

/// A cooperative cancellation handle threaded into the sweep executor's
/// candidate loop (the `vtrain serve` per-request budget mechanism).
///
/// Workers poll the token once per claimed candidate: an explicit
/// [`cancel`](CancelToken::cancel), an elapsed deadline, or an exhausted
/// point budget stops every worker at the next claim. The outcome then
/// carries the points evaluated so far plus the
/// [`AbortReason`](SweepOutcome::aborted) — a truncated result, *not*
/// the goal's guaranteed winner set.
///
/// Clones share one state, so a server can hand the executor a token and
/// keep a handle to fire it from another thread.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

impl CancelToken {
    /// A token that never fires on its own (cancellable only via
    /// [`cancel`](CancelToken::cancel)).
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// A token with an optional wall-clock deadline and an optional
    /// budget of evaluated points — the serve-request shape.
    pub fn with_limits(deadline: Option<Instant>, max_points: Option<u64>) -> CancelToken {
        CancelToken {
            inner: Arc::new(CancelInner {
                cancelled: AtomicBool::new(false),
                deadline,
                permits: max_points.map(AtomicU64::new),
            }),
        }
    }

    /// A token that fires `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> CancelToken {
        CancelToken::with_limits(Instant::now().checked_add(timeout), None)
    }

    /// Requests cancellation; every sweep polling this token stops at
    /// its next candidate claim.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once [`cancel`](CancelToken::cancel) has been called.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// The reason work should stop right now, if any (explicit
    /// cancellation wins over an elapsed deadline).
    fn should_stop(&self) -> Option<AbortReason> {
        if self.is_cancelled() {
            return Some(AbortReason::Cancelled);
        }
        match self.inner.deadline {
            Some(deadline) if Instant::now() >= deadline => Some(AbortReason::Deadline),
            _ => None,
        }
    }

    /// Claims one evaluation permit; `false` means the point budget is
    /// spent and the caller must stop instead of evaluating.
    fn claim_permit(&self) -> bool {
        let Some(permits) = &self.inner.permits else { return true };
        permits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |left| left.checked_sub(1))
            .is_ok()
    }
}

/// Execution report of one sweep.
///
/// Cache counters are tallied per worker at each lookup and summed, so
/// they attribute exactly this sweep's traffic even when other work
/// (another sweep, ad-hoc estimates) drives the same shared cache
/// concurrently.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct SweepStats {
    /// Candidate plans submitted.
    pub candidates: usize,
    /// Candidates pruned by the validation stage before lowering.
    pub pruned: usize,
    /// Feasible candidates skipped because their analytic lower bound
    /// already lost to an incumbent (always 0 under
    /// [`SweepGoal::Exhaustive`]).
    pub bound_pruned: usize,
    /// Candidates lowered and simulated
    /// (`candidates − pruned − bound_pruned` for a completed sweep;
    /// fewer when a [`CancelToken`] aborted it).
    pub evaluated: usize,
    /// Profile-cache hits attributed to this sweep.
    pub cache_hits: u64,
    /// Profile-cache misses (signatures profiled) during this sweep.
    pub cache_misses: u64,
    /// Evaluated points lowered from scratch through the graph builder.
    #[serde(default)]
    pub delta_fresh: u64,
    /// Evaluated points delta-patched from a shape-compatible neighbor's
    /// cached graph structure (always 0 with
    /// [`Sweep::delta_lowering`]`(false)`).
    #[serde(default)]
    pub delta_patched: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Replay shards each worker splits a candidate's value refill
    /// across — greater than 1 only when the candidate count is small
    /// relative to the thread budget (the two-level split).
    #[serde(default)]
    pub shards: usize,
    /// Wall-clock seconds.
    pub wall_s: f64,
}

impl SweepStats {
    /// Fraction of profile lookups served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Evaluated (feasible) design points per wall-clock second.
    ///
    /// Guarded against degenerate timers: a zero (or non-finite) wall
    /// clock reports 0 instead of leaking `inf`/`NaN` into serialized
    /// benchmark records.
    pub fn points_per_sec(&self) -> f64 {
        if self.wall_s.is_finite() && self.wall_s > 0.0 {
            self.evaluated as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

/// Wall-clock attribution of one sweep across the estimation pipeline's
/// stages, captured when [`Sweep::stage_profile`] is enabled.
///
/// Stage times are summed over all workers, so on a multi-threaded sweep
/// `stages.total_ns()` approaches `wall_ns × threads` (CPU time, not
/// elapsed time); [`StageProfile::attributed_fraction`] normalizes by
/// the thread count.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct StageProfile {
    /// Per-stage time (validate / lower / simulate / summarize), summed
    /// over workers.
    pub stages: StageNanos,
    /// Time spent computing analytic lower bounds (only nonzero under
    /// `Front`/`Best` goals), summed over workers.
    pub bound_ns: u64,
    /// Time spent ordering the candidate visit — GPU-count sorting for
    /// bound-guided goals, shape-key grouping for delta sweeps (a
    /// once-per-sweep driver pass, not per-point work).
    #[serde(default)]
    pub order_ns: u64,
    /// Elapsed wall-clock time of the whole sweep.
    pub wall_ns: u64,
    /// Worker threads the attribution is summed over.
    pub threads: usize,
}

impl StageProfile {
    /// Total time attributed to a named stage (the four pipeline stages
    /// plus bound pricing and candidate ordering).
    pub fn attributed_ns(&self) -> u64 {
        self.stages.total_ns() + self.bound_ns + self.order_ns
    }

    /// Fraction of the sweep's total CPU budget
    /// (`wall_ns × threads`) attributed to named stages — the remainder
    /// is scheduling, stealing, and merge overhead.
    pub fn attributed_fraction(&self) -> f64 {
        let budget = self.wall_ns.saturating_mul(self.threads.max(1) as u64);
        if budget == 0 {
            0.0
        } else {
            self.attributed_ns() as f64 / budget as f64
        }
    }
}

/// The result of a sweep: feasible design points in candidate order plus
/// the execution report.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepOutcome {
    /// Feasible points, in candidate order (deterministic for a given
    /// candidate list regardless of thread count).
    pub points: Vec<DesignPoint>,
    /// Execution report.
    pub stats: SweepStats,
    /// Per-stage wall-clock attribution; `Some` iff the sweep ran with
    /// [`Sweep::stage_profile`] enabled.
    pub stage_profile: Option<StageProfile>,
    /// Why the sweep stopped early, if it did; `None` for a completed
    /// sweep. (Defaulted on deserialization so records predating
    /// cancellation still parse.)
    #[serde(default)]
    pub aborted: Option<AbortReason>,
}

/// Enumerates the candidate plans of an exhaustive `(t, d, p, m)` sweep.
///
/// Tensor degrees are powers of two within the NVLink domain; pipeline
/// depths divide the layer count evenly (the paper's design methodology of
/// identically-shaped stages); `d·m` must divide the global batch.
pub fn enumerate_candidates(
    model: &ModelConfig,
    cluster: &ClusterSpec,
    global_batch: usize,
    schedule: PipelineSchedule,
    limits: &SearchLimits,
) -> Vec<ParallelConfig> {
    let mut tensors = Vec::new();
    let mut t = 1;
    while t <= limits.max_tensor.min(cluster.gpus_per_node) {
        if model.num_heads().is_multiple_of(t) && model.hidden_size().is_multiple_of(t) {
            tensors.push(t);
        }
        t *= 2;
    }
    let pipelines: Vec<usize> = (1..=limits.max_pipeline.min(model.num_layers()))
        .filter(|&p| model.num_layers().is_multiple_of(p))
        .collect();
    let mut out = Vec::new();
    for &t in &tensors {
        for d in 1..=limits.max_data {
            if !global_batch.is_multiple_of(d) {
                continue;
            }
            for &p in &pipelines {
                if t * d * p > cluster.total_gpus {
                    continue;
                }
                let mut m = 1;
                while m <= limits.max_micro_batch {
                    if (global_batch / d).is_multiple_of(m) {
                        let plan = ParallelConfig::builder()
                            .tensor(t)
                            .data(d)
                            .pipeline(p)
                            .micro_batch(m)
                            .global_batch(global_batch)
                            .schedule(schedule)
                            .build()
                            .expect("enumerated divisibility holds");
                        out.push(plan);
                    }
                    m *= 2;
                }
            }
        }
    }
    out
}

/// Shared bound-pruning watermarks: for each distinct GPU count in the
/// candidate list (ascending), the best evaluated iteration time using
/// *at most* that many GPUs, as atomic nanosecond values.
///
/// `Best` degenerates to a single bucket (GPU counts are irrelevant to
/// the fastest-point goal); `Front` prunes a candidate only when an
/// evaluated point with no more GPUs is *strictly* faster than the
/// candidate's floor — by admissibility the candidate is then strictly
/// dominated, so winner sets (and their candidate-order tie-breaks) are
/// exactly those of the exhaustive sweep, regardless of thread timing.
struct Watermarks {
    gpu_buckets: Vec<usize>,
    best_ns: Vec<AtomicU64>,
}

impl Watermarks {
    fn new(goal: SweepGoal, candidates: &[ParallelConfig]) -> Watermarks {
        let mut gpu_buckets = match goal {
            SweepGoal::Best => Vec::new(),
            _ => {
                let mut gpus: Vec<usize> =
                    candidates.iter().map(ParallelConfig::num_gpus).collect();
                gpus.sort_unstable();
                gpus.dedup();
                gpus
            }
        };
        if gpu_buckets.is_empty() {
            gpu_buckets = vec![usize::MAX];
        }
        let best_ns = gpu_buckets.iter().map(|_| AtomicU64::new(u64::MAX)).collect();
        Watermarks { gpu_buckets, best_ns }
    }

    fn bucket(&self, gpus: usize) -> usize {
        self.gpu_buckets.partition_point(|&g| g < gpus).min(self.gpu_buckets.len() - 1)
    }

    /// True if some evaluated point with `≤ gpus` GPUs is strictly
    /// faster than `floor` — the candidate is provably dominated.
    fn dominates(&self, gpus: usize, floor: TimeNs) -> bool {
        self.best_ns[self.bucket(gpus)].load(Ordering::Relaxed) < floor.as_nanos()
    }

    /// Records an evaluated point: its time becomes a pruning watermark
    /// for every bucket of at least its GPU count.
    fn record(&self, gpus: usize, time: TimeNs) {
        for slot in &self.best_ns[self.bucket(gpus)..] {
            slot.fetch_min(time.as_nanos(), Ordering::Relaxed);
        }
    }
}

/// The sweep executor: evaluates candidates on a work-stealing thread
/// pool, pruning infeasible plans with the cheap validation stage and
/// sharing the estimator's profile cache across workers.
///
/// Each worker owns a contiguous candidate range with an atomic cursor,
/// a private result buffer, and a private [`EstimatorScratch`] (so
/// steady-state evaluation allocates nothing per point); exhausted
/// workers steal from the cursors of loaded neighbours, and buffers
/// merge once at the end — no per-result lock anywhere. Results are
/// returned in candidate order, so sweeps are deterministic regardless
/// of thread count or interleaving.
///
/// Under [`SweepGoal::Front`]/[`SweepGoal::Best`], candidates whose
/// [analytic floor](Estimator::lower_bound) is strictly beaten by an
/// evaluated incumbent (shared across workers via atomic watermarks) are
/// skipped entirely, and the outcome is filtered to exactly the goal's
/// winners — provably the same winners the exhaustive sweep returns.
///
/// Parallelism is two-level: when the candidate count is smaller than
/// the thread budget (the `vtrain serve` shape — few points, many
/// cores), the leftover threads split each candidate's value refill
/// into `shards = threads / workers` deterministic chunks instead of
/// idling. Shard splits are exact re-pricings (proven by the compact
/// shard property tests), so output stays byte-identical to one thread.
#[allow(clippy::too_many_arguments)]
fn run_sweep(
    estimator: &Estimator,
    model: &ModelConfig,
    candidates: &[ParallelConfig],
    threads: usize,
    goal: SweepGoal,
    profile: bool,
    delta: bool,
    cancel: Option<&CancelToken>,
) -> SweepOutcome {
    let started = Instant::now();
    let _sweep_span = vtrain_obs::span!("sweep.run", candidates = candidates.len() as u64);
    let requested = threads.max(1);
    let threads = requested.min(candidates.len().max(1));
    // Level two: threads the candidate axis cannot absorb split each
    // candidate's refill instead of idling.
    let shards = (requested / threads).max(1);
    let pruned = AtomicUsize::new(0);
    let bound_pruned = AtomicUsize::new(0);
    // First abort reason wins; 0 = running. Workers poll this (and the
    // token) once per claimed candidate, so a fired token stops every
    // worker within one evaluation.
    let abort = AtomicUsize::new(0);
    let flag_abort = |reason: AbortReason| {
        let code = match reason {
            AbortReason::Cancelled => 1,
            AbortReason::Deadline => 2,
            AbortReason::Budget => 3,
        };
        let _ = abort.compare_exchange(0, code, Ordering::Relaxed, Ordering::Relaxed);
    };
    // Exhaustive sweeps never consult watermarks; skip the sort and the
    // atomic array entirely on that (default) path.
    let watermarks = (goal != SweepGoal::Exhaustive).then(|| Watermarks::new(goal, candidates));

    // Bound-guided goals are proven order-independent, so visit
    // likely-fastest points first (more GPUs → shorter iterations in the
    // bulk of the space): the incumbent tightens immediately and the
    // slow small-GPU tail prunes instead of being evaluated. The stable
    // sort keeps candidate order within a GPU count.
    //
    // Exhaustive delta sweeps instead group candidates by graph shape
    // (stable within a group), so shape-compatible neighbors land back
    // to back in each worker's scratch and lower as patches rather than
    // from scratch. Either reordering only changes *visit* order:
    // results are re-sorted by candidate index below, so the outcome is
    // byte-identical to the unordered sweep.
    let order_t0 = profile.then(Instant::now);
    let order: Option<Vec<u32>> = match goal {
        SweepGoal::Exhaustive => delta.then(|| {
            let mut group_of = HashMap::new();
            let groups: Vec<u32> = candidates
                .iter()
                .map(|c| {
                    let next = group_of.len() as u32;
                    *group_of.entry(estimator.shape_key(model, c)).or_insert(next)
                })
                .collect();
            let mut idx: Vec<u32> = (0..candidates.len() as u32).collect();
            idx.sort_by_key(|&i| groups[i as usize]);
            idx
        }),
        _ => {
            let mut idx: Vec<u32> = (0..candidates.len() as u32).collect();
            idx.sort_by_key(|&i| std::cmp::Reverse(candidates[i as usize].num_gpus()));
            Some(idx)
        }
    };
    let order_ns = order_t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
    let order = order.as_deref();

    // Contiguous per-worker ranges: (cursor, end). A worker drains its own
    // range, then scans the others for leftover work; `fetch_add` claims
    // are exclusive, so every index is evaluated exactly once.
    let chunk = candidates.len().div_ceil(threads);
    let ranges: Vec<(AtomicUsize, usize)> = (0..threads)
        .map(|w| (AtomicUsize::new(w * chunk), ((w + 1) * chunk).min(candidates.len())))
        .collect();

    struct WorkerYield {
        buf: Vec<(u32, DesignPoint)>,
        cache: vtrain_profile::CacheStats,
        delta_counts: (u64, u64),
        stages: StageNanos,
        bound_ns: u64,
    }
    let run_worker = |w: usize| -> WorkerYield {
        let mut buf: Vec<(u32, DesignPoint)> = Vec::new();
        let mut scratch = EstimatorScratch::default();
        let mut stages = StageNanos::default();
        let mut bound_ns = 0u64;
        'steal: for victim in 0..threads {
            let (cursor, end) = &ranges[(w + victim) % threads];
            loop {
                if abort.load(Ordering::Relaxed) != 0 {
                    break 'steal;
                }
                if let Some(reason) = cancel.and_then(CancelToken::should_stop) {
                    flag_abort(reason);
                    break 'steal;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= *end {
                    break;
                }
                let i = order.map_or(i, |o| o[i] as usize);
                let plan = candidates[i];
                let t0 = profile.then(Instant::now);
                let feasible = estimator.validate(model, &plan).is_ok();
                if let Some(t0) = t0 {
                    stages.validate_ns += t0.elapsed().as_nanos() as u64;
                }
                if !feasible {
                    pruned.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let Some(marks) = watermarks.as_ref() {
                    // The floor's cost is a stage of its own: bound
                    // pricing is neither validation nor lowering, and
                    // folding it into either would hide the cost of
                    // bound-guided goals from the attribution table.
                    let t0 = profile.then(Instant::now);
                    let floor = estimator.lower_bound(model, &plan);
                    if let Some(t0) = t0 {
                        bound_ns += t0.elapsed().as_nanos() as u64;
                    }
                    if marks.dominates(plan.num_gpus(), floor) {
                        bound_pruned.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                }
                // The point budget is spent per *evaluation*: pruned
                // candidates cost nothing against it.
                if let Some(token) = cancel {
                    if !token.claim_permit() {
                        flag_abort(AbortReason::Budget);
                        break 'steal;
                    }
                }
                // Both paths run the same fused compact pipeline; the
                // profiled variant times lower/simulate/summarize from
                // inside it, so delta patches show up as shrunken
                // `lower_ns` rather than a separate path.
                let estimate = estimator.estimate_validated_delta(
                    model,
                    &plan,
                    &mut scratch,
                    delta,
                    shards,
                    profile.then_some(&mut stages),
                );
                if let Some(marks) = watermarks.as_ref() {
                    marks.record(plan.num_gpus(), estimate.iteration_time);
                }
                buf.push((i as u32, DesignPoint { plan, estimate }));
            }
        }
        WorkerYield {
            buf,
            cache: scratch.cache_stats(),
            delta_counts: scratch.delta_counts(),
            stages,
            bound_ns,
        }
    };
    // One worker needs no pool: run inline, skipping thread spawn/join
    // (this also keeps single-threaded stage profiles nearly 100%
    // attributable to the pipeline stages).
    let results: Vec<WorkerYield> = if threads == 1 {
        vec![run_worker(0)]
    } else {
        crossbeam::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let run_worker = &run_worker;
                    scope.spawn(move |_| run_worker(w))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
        })
        .expect("sweep scope")
    };

    let mut indexed: Vec<(u32, DesignPoint)> = Vec::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut delta_fresh = 0u64;
    let mut delta_patched = 0u64;
    let mut stages = StageNanos::default();
    let mut bound_ns = 0u64;
    for worker in results {
        indexed.extend(worker.buf);
        cache_hits += worker.cache.hits;
        cache_misses += worker.cache.misses;
        delta_fresh += worker.delta_counts.0;
        delta_patched += worker.delta_counts.1;
        stages.merge(&worker.stages);
        bound_ns += worker.bound_ns;
    }
    indexed.sort_unstable_by_key(|(i, _)| *i);
    // Equals `candidates − pruned − bound_pruned` for a completed sweep;
    // counting the merged buffers stays correct when a token aborted the
    // sweep with candidates unvisited.
    let evaluated = indexed.len();
    let mut points: Vec<DesignPoint> = indexed.into_iter().map(|(_, p)| p).collect();

    // Filter to the goal's winners: pruning guarantees every winner was
    // evaluated, so these are exactly the exhaustive sweep's winners —
    // unless a token aborted the sweep, in which case they are the best
    // of the points visited so far (flagged via `aborted`).
    apply_goal(goal, &mut points);

    let pruned = pruned.into_inner();
    let bound_pruned = bound_pruned.into_inner();
    let aborted = match abort.into_inner() {
        0 => None,
        1 => Some(AbortReason::Cancelled),
        2 => Some(AbortReason::Deadline),
        _ => Some(AbortReason::Budget),
    };
    let stats = SweepStats {
        candidates: candidates.len(),
        pruned,
        bound_pruned,
        evaluated,
        cache_hits,
        cache_misses,
        delta_fresh,
        delta_patched,
        threads,
        shards,
        wall_s: started.elapsed().as_secs_f64(),
    };
    if vtrain_obs::enabled() {
        let reg = vtrain_obs::global();
        reg.counter("sweep.runs").inc();
        reg.counter("sweep.candidates").add(stats.candidates as u64);
        reg.counter("sweep.evaluated").add(stats.evaluated as u64);
        reg.counter("sweep.pruned").add(stats.pruned as u64);
        reg.counter("sweep.bound_pruned").add(stats.bound_pruned as u64);
        reg.counter("sweep.cache_hits").add(stats.cache_hits);
        reg.counter("sweep.cache_misses").add(stats.cache_misses);
        reg.counter("lower.delta.fresh").add(stats.delta_fresh);
        reg.counter("lower.delta.patched").add(stats.delta_patched);
        reg.histogram("sweep.wall_ms").record((stats.wall_s * 1e3) as u64);
    }
    let stage_profile = profile.then_some(StageProfile {
        stages,
        bound_ns,
        order_ns,
        wall_ns: (stats.wall_s * 1e9) as u64,
        threads,
    });
    SweepOutcome { points, stats, stage_profile, aborted }
}

/// Filters `points` down to exactly what `goal` promises: everything
/// (`Exhaustive`), the `(iteration_time, num_gpus)` Pareto frontier
/// (`Front`), or the single fastest point (`Best`, earliest on ties).
fn apply_goal(goal: SweepGoal, points: &mut Vec<DesignPoint>) {
    match goal {
        SweepGoal::Exhaustive => {}
        SweepGoal::Front => {
            // `pareto_front` returns members in input order; match them
            // back by identity with one forward pass.
            let keep: Vec<bool> = {
                let front = pareto_front(points);
                let mut fi = 0;
                points
                    .iter()
                    .map(|p| {
                        let on_front = fi < front.len() && std::ptr::eq(p, front[fi]);
                        fi += usize::from(on_front);
                        on_front
                    })
                    .collect()
            };
            let mut it = keep.into_iter();
            points.retain(|_| it.next().expect("keep mask covers points"));
        }
        SweepGoal::Best => {
            let best = points
                .iter()
                .enumerate()
                .min_by_key(|(_, p)| p.estimate.iteration_time)
                .map(|(i, _)| i);
            *points = best.map(|i| vec![points[i].clone()]).unwrap_or_default();
        }
    }
}

/// The degraded-mode executor: prices every feasible candidate at its
/// [admissible analytic floor](Estimator::lower_bound) instead of
/// lowering and simulating it — a few microseconds per candidate, no
/// profile-cache traffic, no threads. The floor is a true lower bound on
/// iteration time, so relative ordering is meaningful even though the
/// returned "estimates" carry zero utilization/occupancy and an empty
/// busy breakdown (nothing was simulated to attribute).
fn bound_only_sweep(
    estimator: &Estimator,
    model: &ModelConfig,
    candidates: &[ParallelConfig],
    goal: SweepGoal,
) -> SweepOutcome {
    let started = Instant::now();
    let mut points: Vec<DesignPoint> = Vec::new();
    let mut pruned = 0;
    for plan in candidates {
        if estimator.validate(model, plan).is_err() {
            pruned += 1;
            continue;
        }
        let floor = estimator.lower_bound(model, plan);
        points.push(DesignPoint {
            plan: *plan,
            estimate: IterationEstimate {
                iteration_time: floor,
                utilization: 0.0,
                busy: BusyBreakdown::default(),
                occupancy: 0.0,
                num_gpus: plan.num_gpus(),
                tokens_per_iteration: model.tokens_per_iteration(plan.global_batch()),
            },
        });
    }
    let evaluated = points.len();
    apply_goal(goal, &mut points);
    SweepOutcome {
        points,
        stats: SweepStats {
            candidates: candidates.len(),
            pruned,
            bound_pruned: 0,
            evaluated,
            cache_hits: 0,
            cache_misses: 0,
            delta_fresh: 0,
            delta_patched: 0,
            threads: 1,
            shards: 1,
            wall_s: started.elapsed().as_secs_f64(),
        },
        stage_profile: None,
        aborted: None,
    }
}

/// One topology variant's outcome in a placement sweep.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct PlacementSweep {
    /// The variant's label (e.g. `"two-tier"`, `"multi-rack/4"`).
    pub label: String,
    /// The sweep over this placement.
    pub outcome: SweepOutcome,
}

/// The placement-axis executor: the same candidate plans priced under
/// several interconnect topologies, all variants sharing one profile
/// cache (compute profiles are topology-independent, so every unique
/// operator signature is profiled once for the *entire* placement sweep;
/// bounds are priced per variant — communication costs differ between
/// placements).
#[allow(clippy::too_many_arguments)]
fn run_placements(
    cluster: &ClusterSpec,
    alpha: Option<f64>,
    network: NetworkBackend,
    cache: &Arc<ProfileCache>,
    topologies: &[(String, Topology)],
    model: &ModelConfig,
    candidates: &[ParallelConfig],
    threads: usize,
    goal: SweepGoal,
    profile: bool,
    delta: bool,
    cancel: Option<&CancelToken>,
) -> Vec<PlacementSweep> {
    let mut sweeps = Vec::with_capacity(topologies.len());
    for (label, topo) in topologies {
        let mut builder = Estimator::builder(cluster.clone())
            .topology(topo.clone())
            .network(network)
            .cache(Arc::clone(cache));
        if let Some(alpha) = alpha {
            builder = builder.alpha(alpha);
        }
        let estimator = builder.build();
        let outcome =
            run_sweep(&estimator, model, candidates, threads, goal, profile, delta, cancel);
        let stop = outcome.aborted.is_some();
        sweeps.push(PlacementSweep { label: label.clone(), outcome });
        if stop {
            // A fired token stops the placement axis too: later variants
            // are omitted entirely rather than returned empty-but-
            // unlabeled-as-aborted.
            break;
        }
    }
    sweeps
}

/// Declarative design-space sweep — the one entry point (the former
/// free-function `sweep` / `sweep_with_goal` / `sweep_topologies` /
/// `sweep_topologies_with_goal` / `explore` shims were removed after a
/// deprecation cycle; the builder drives the exact same executor they
/// did).
///
/// A sweep needs a model, a cluster, and a candidate grid (either
/// [enumerated](Sweep::batch) from a batch size + [`SearchLimits`] or
/// [given explicitly](Sweep::candidates)); everything else — goal,
/// threads, `α`, a shared cache, a topology, a placement axis — is an
/// optional axis with the flat exhaustive sweep as the default. Results
/// are bit-identical to the deprecated entry points by construction:
/// the builder drives the exact same executor.
///
/// ```
/// use vtrain_core::search::{SearchLimits, Sweep, SweepGoal};
/// use vtrain_model::presets;
/// use vtrain_parallel::ClusterSpec;
///
/// let model = presets::megatron("1.7B");
/// let cluster = ClusterSpec::aws_p4d(16);
/// let limits = SearchLimits { max_tensor: 4, max_data: 4, max_pipeline: 2, max_micro_batch: 2 };
/// let run = Sweep::over(&model, &cluster)
///     .batch(16)
///     .limits(limits)
///     .goal(SweepGoal::Best)
///     .threads(2)
///     .run();
/// assert_eq!(run.outcome().points.len(), 1, "Best returns exactly the winner");
/// ```
#[derive(Clone, Debug)]
pub struct Sweep {
    model: ModelConfig,
    cluster: ClusterSpec,
    /// `None` until [`Sweep::alpha`] is called: unset, the topology's
    /// own inter-node tier α is inherited (see [`EstimatorBuilder`]).
    alpha: Option<f64>,
    cache: Option<Arc<ProfileCache>>,
    topology: Option<Topology>,
    network: NetworkBackend,
    placements: Vec<(String, Topology)>,
    batch: Option<usize>,
    schedule: PipelineSchedule,
    limits: SearchLimits,
    goal: SweepGoal,
    threads: Option<usize>,
    stage_profile: bool,
    delta_lowering: bool,
    cancel: Option<CancelToken>,
    /// Shared, not owned: cloning a configured sweep (e.g. to re-run it
    /// under another goal) must not copy the candidate grid.
    candidates: Option<Arc<[ParallelConfig]>>,
}

impl Sweep {
    /// Starts a sweep of `model` over `cluster` with default axes
    /// (`α = 1.0`, fresh cache, flat interconnect, exhaustive goal,
    /// 1F1B schedule, default [`SearchLimits`], all CPU cores).
    pub fn over(model: &ModelConfig, cluster: &ClusterSpec) -> Sweep {
        Sweep {
            model: model.clone(),
            cluster: cluster.clone(),
            alpha: None,
            cache: None,
            topology: None,
            network: NetworkBackend::default(),
            placements: Vec::new(),
            batch: None,
            schedule: PipelineSchedule::OneFOneB,
            limits: SearchLimits::default(),
            goal: SweepGoal::default(),
            threads: None,
            stage_profile: false,
            delta_lowering: true,
            cancel: None,
            candidates: None,
        }
    }

    /// Starts a sweep reusing an existing estimator's configuration —
    /// its cluster, `α`, topology, and (shared) profile cache — so ad-hoc
    /// estimates and the sweep deduplicate profiling work.
    pub fn on(estimator: &Estimator, model: &ModelConfig) -> Sweep {
        let mut sweep = Sweep::over(model, estimator.cluster());
        sweep.cache = Some(Arc::clone(estimator.cache()));
        sweep.network = estimator.network();
        if estimator.is_topology_aware() {
            // The estimator's topology already carries its resolved
            // per-tier αs; leaving `alpha` unset reuses them exactly.
            sweep.topology = Some(estimator.topology().clone());
        } else {
            sweep.alpha = Some(estimator.alpha());
        }
        sweep
    }

    /// Sets the global batch (sequences per iteration) the candidate
    /// grid is enumerated for. Required unless
    /// [`candidates`](Sweep::candidates) supplies the grid directly.
    pub fn batch(mut self, global_batch: usize) -> Self {
        self.batch = Some(global_batch);
        self
    }

    /// Sets the pipeline schedule of enumerated candidates (default
    /// [`PipelineSchedule::OneFOneB`]).
    pub fn schedule(mut self, schedule: PipelineSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Bounds the enumerated `(t, d, p, m)` grid (default
    /// [`SearchLimits::default`], the paper's §V-A axes).
    pub fn limits(mut self, limits: SearchLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets what the sweep must guarantee (default
    /// [`SweepGoal::Exhaustive`]); `Front`/`Best` license bound-guided
    /// pruning and return exactly the exhaustive winners.
    pub fn goal(mut self, goal: SweepGoal) -> Self {
        self.goal = goal;
        self
    }

    /// Sets the worker-thread count (default: all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables per-stage wall-clock attribution: the outcome carries a
    /// [`StageProfile`] splitting the sweep's CPU time across
    /// validate / bound / lower / simulate / summarize.
    ///
    /// Profiled sweeps run the same fused compact pipeline as
    /// unprofiled ones, timed from inside — results are bit-identical
    /// and delta-patched points show up as shrunken `lower_ns`. The
    /// only cost is the per-stage clock reads.
    pub fn stage_profile(mut self, enabled: bool) -> Self {
        self.stage_profile = enabled;
        self
    }

    /// Enables or disables delta-lowering (default on): with it on,
    /// exhaustive sweeps visit candidates grouped by graph shape and
    /// each worker patches only the changed values of its previously
    /// lowered graph when the shape matches, instead of rebuilding the
    /// structure per point. Results are bit-identical either way
    /// (proven by the delta A/B property tests); turn it off only to
    /// measure or gate that equivalence.
    pub fn delta_lowering(mut self, enabled: bool) -> Self {
        self.delta_lowering = enabled;
        self
    }

    /// Threads a [`CancelToken`] into the executor's candidate loop:
    /// explicit cancellation, an elapsed deadline, or an exhausted point
    /// budget stops every worker at its next candidate claim, and the
    /// outcome reports the [`AbortReason`](SweepOutcome::aborted)
    /// alongside the points evaluated so far.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Sets the bandwidth-effectiveness factor `α` (default `1.0`).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Shares an existing profile cache across this sweep (and anything
    /// else holding it). Without this, the sweep creates a fresh cache —
    /// still shared across its workers and placement variants.
    pub fn cache(mut self, cache: Arc<ProfileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Prices communication on a hierarchical topology instead of the
    /// flat Equation (1) model. For sweeping *several* topologies, use
    /// [`placements`](Sweep::placements).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Selects the network-cost regime every evaluated point runs
    /// under (default [`NetworkBackend::ClosedForm`]). Under
    /// [`NetworkBackend::FairSharing`] each point is priced by the
    /// physical-time contention replay; the compact delta-lowering fast
    /// path only applies to the closed form, so expect fair-sharing
    /// sweeps to cost full lowering per point.
    pub fn network(mut self, network: NetworkBackend) -> Self {
        self.network = network;
        self
    }

    /// Adds a placement axis: the same candidate grid is priced under
    /// every `(label, topology)` variant, all variants sharing one
    /// profile cache. Supersedes [`topology`](Sweep::topology).
    pub fn placements(mut self, placements: impl IntoIterator<Item = (String, Topology)>) -> Self {
        self.placements = placements.into_iter().collect();
        self
    }

    /// Supplies the candidate grid explicitly instead of enumerating it
    /// from [`batch`](Sweep::batch) + [`limits`](Sweep::limits).
    ///
    /// Accepts a `Vec`, an `Arc<[_]>`, or a slice; pass an
    /// `Arc<[ParallelConfig]>` (cloned per sweep, O(1)) to share one
    /// grid across several sweeps without copying it.
    pub fn candidates(mut self, candidates: impl Into<Arc<[ParallelConfig]>>) -> Self {
        self.candidates = Some(candidates.into());
        self
    }

    /// Enumerates (if needed) and evaluates the grid.
    ///
    /// # Panics
    ///
    /// Panics if neither [`batch`](Sweep::batch) nor
    /// [`candidates`](Sweep::candidates) was set — there is no grid to
    /// sweep.
    pub fn run(self) -> SweepRun {
        let threads = self
            .threads
            .unwrap_or_else(|| std::thread::available_parallelism().map(Into::into).unwrap_or(8));
        let candidates: Arc<[ParallelConfig]> = match self.candidates {
            Some(c) => c,
            None => {
                let batch =
                    self.batch.expect("Sweep: set .batch(..) or .candidates(..) before .run()");
                enumerate_candidates(&self.model, &self.cluster, batch, self.schedule, &self.limits)
                    .into()
            }
        };
        let cache = self.cache.unwrap_or_default();
        let sweeps = if self.placements.is_empty() {
            let mut builder = Estimator::builder(self.cluster).network(self.network).cache(cache);
            if let Some(alpha) = self.alpha {
                builder = builder.alpha(alpha);
            }
            if let Some(topology) = self.topology {
                builder = builder.topology(topology);
            }
            let estimator = builder.build();
            let outcome = run_sweep(
                &estimator,
                &self.model,
                &candidates,
                threads,
                self.goal,
                self.stage_profile,
                self.delta_lowering,
                self.cancel.as_ref(),
            );
            vec![PlacementSweep { label: String::new(), outcome }]
        } else {
            run_placements(
                &self.cluster,
                self.alpha,
                self.network,
                &cache,
                &self.placements,
                &self.model,
                &candidates,
                threads,
                self.goal,
                self.stage_profile,
                self.delta_lowering,
                self.cancel.as_ref(),
            )
        };
        SweepRun { sweeps }
    }

    /// Degraded bound-only evaluation: enumerates (if needed) and prices
    /// the grid at each candidate's admissible analytic floor
    /// ([`Estimator::lower_bound`]) instead of lowering and simulating —
    /// the load-shedding answer a saturated `vtrain serve` hands out
    /// under `--degrade bound-only`, orders of magnitude cheaper than
    /// [`run`](Sweep::run).
    ///
    /// Floor points carry the true lower bound as their
    /// `iteration_time`, the plan's GPU/token accounting, and zeroed
    /// utilization/occupancy/busy fields (nothing was simulated). The
    /// configured [`goal`](Sweep::goal) and placement axis apply exactly
    /// as in a full run; cancellation tokens are ignored — bound pricing
    /// is microseconds per candidate.
    ///
    /// # Panics
    ///
    /// Panics if neither [`batch`](Sweep::batch) nor
    /// [`candidates`](Sweep::candidates) was set, like [`run`](Sweep::run).
    pub fn bound_only(self) -> SweepRun {
        let candidates: Arc<[ParallelConfig]> = match self.candidates {
            Some(c) => c,
            None => {
                let batch = self
                    .batch
                    .expect("Sweep: set .batch(..) or .candidates(..) before .bound_only()");
                enumerate_candidates(&self.model, &self.cluster, batch, self.schedule, &self.limits)
                    .into()
            }
        };
        let cache = self.cache.unwrap_or_default();
        let sweeps = if self.placements.is_empty() {
            let mut builder = Estimator::builder(self.cluster).network(self.network).cache(cache);
            if let Some(alpha) = self.alpha {
                builder = builder.alpha(alpha);
            }
            if let Some(topology) = self.topology {
                builder = builder.topology(topology);
            }
            let estimator = builder.build();
            let outcome = bound_only_sweep(&estimator, &self.model, &candidates, self.goal);
            vec![PlacementSweep { label: String::new(), outcome }]
        } else {
            self.placements
                .iter()
                .map(|(label, topo)| {
                    let mut builder = Estimator::builder(self.cluster.clone())
                        .topology(topo.clone())
                        .network(self.network)
                        .cache(Arc::clone(&cache));
                    if let Some(alpha) = self.alpha {
                        builder = builder.alpha(alpha);
                    }
                    let estimator = builder.build();
                    PlacementSweep {
                        label: label.clone(),
                        outcome: bound_only_sweep(&estimator, &self.model, &candidates, self.goal),
                    }
                })
                .collect()
        };
        SweepRun { sweeps }
    }
}

/// The result of a [`Sweep`]: one [`PlacementSweep`] per topology
/// variant (exactly one for a sweep without a placement axis).
///
/// Serializes field-for-field (the stable machine form lives in the
/// `vtrain::api` wire envelope, which versions and key-sorts it);
/// deserialization rejects unknown fields so schema drift is loud.
#[derive(Clone, Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
pub struct SweepRun {
    sweeps: Vec<PlacementSweep>,
}

impl SweepRun {
    /// The (first) variant's outcome — the whole result for a sweep
    /// without a placement axis.
    pub fn outcome(&self) -> &SweepOutcome {
        &self.sweeps[0].outcome
    }

    /// Consumes the run into the first variant's outcome.
    pub fn into_outcome(self) -> SweepOutcome {
        self.sweeps.into_iter().next().expect("a sweep always has at least one variant").outcome
    }

    /// All placement variants, in the order they were declared.
    pub fn variants(&self) -> &[PlacementSweep] {
        &self.sweeps
    }

    /// Consumes the run into its placement variants.
    pub fn into_variants(self) -> Vec<PlacementSweep> {
        self.sweeps
    }
}

/// The fastest feasible plan using at most `max_gpus` GPUs.
pub fn fastest_within_gpu_budget(points: &[DesignPoint], max_gpus: usize) -> Option<&DesignPoint> {
    points
        .iter()
        .filter(|p| p.estimate.num_gpus <= max_gpus)
        .min_by(|a, b| a.estimate.iteration_time.cmp(&b.estimate.iteration_time))
}

/// The cheapest end-to-end plan (total dollars over `total_tokens`) using at
/// most `max_gpus` GPUs — the paper's cost-effectiveness criterion
/// (Table I).
pub fn most_cost_effective<'a>(
    points: &'a [DesignPoint],
    total_tokens: u64,
    cost: &CostModel,
    max_gpus: usize,
) -> Option<(&'a DesignPoint, TrainingProjection)> {
    points
        .iter()
        .filter(|p| p.estimate.num_gpus <= max_gpus)
        .map(|p| (p, p.project(total_tokens, cost)))
        .min_by(|a, b| a.1.total_dollars.total_cmp(&b.1.total_dollars))
}

/// Pareto frontier minimizing `(iteration_time, num_gpus)`, in input
/// order.
///
/// Sort-based `O(n log n)`: after ordering by `(time, gpus)`, a point
/// survives iff it has the fewest GPUs within its exact iteration time
/// *and* strictly fewer GPUs than every strictly-faster point. Exact
/// duplicates are mutually non-dominating and all survive, matching the
/// quadratic definition (see the agreement property test).
pub fn pareto_front(points: &[DesignPoint]) -> Vec<&DesignPoint> {
    let key = |i: usize| (points[i].estimate.iteration_time, points[i].estimate.num_gpus);
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_unstable_by_key(|&i| key(i));

    let mut keep = vec![false; points.len()];
    let mut best_gpus = usize::MAX;
    let mut at = 0;
    while at < order.len() {
        let time = key(order[at]).0;
        let mut end = at;
        let mut group_min = usize::MAX;
        while end < order.len() && key(order[end]).0 == time {
            group_min = group_min.min(key(order[end]).1);
            end += 1;
        }
        if group_min < best_gpus {
            for &idx in &order[at..end] {
                keep[idx] = key(idx).1 == group_min;
            }
            best_gpus = group_min;
        }
        at = end;
    }
    points.iter().enumerate().filter_map(|(i, p)| keep[i].then_some(p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vtrain_model::{presets, TimeNs};

    fn small_points() -> Vec<DesignPoint> {
        let cluster = ClusterSpec::aws_p4d(16);
        let model = presets::megatron("1.7B");
        Sweep::over(&model, &cluster)
            .batch(16)
            .limits(SearchLimits {
                max_tensor: 4,
                max_data: 4,
                max_pipeline: 4,
                max_micro_batch: 4,
            })
            .threads(4)
            .run()
            .into_outcome()
            .points
    }

    #[test]
    fn bound_only_floors_every_full_estimate() {
        let cluster = ClusterSpec::aws_p4d(16);
        let model = presets::megatron("1.7B");
        let limits =
            SearchLimits { max_tensor: 2, max_data: 2, max_pipeline: 2, max_micro_batch: 1 };
        let sweep = Sweep::over(&model, &cluster).batch(16).limits(limits).threads(2);
        let full = sweep.clone().run().into_outcome();
        let floors = sweep.clone().bound_only().into_outcome();
        // Same feasible set, in the same candidate order...
        assert_eq!(full.points.len(), floors.points.len());
        assert_eq!(full.stats.pruned, floors.stats.pruned);
        for (f, b) in full.points.iter().zip(&floors.points) {
            assert_eq!(f.plan, b.plan);
            // ...and every floor is admissible: never above the
            // simulated iteration time.
            assert!(b.estimate.iteration_time <= f.estimate.iteration_time);
            assert!(b.estimate.iteration_time > TimeNs::ZERO);
            assert_eq!(b.estimate.num_gpus, f.estimate.num_gpus);
            assert_eq!(b.estimate.tokens_per_iteration, f.estimate.tokens_per_iteration);
            assert_eq!(b.estimate.utilization, 0.0, "nothing simulated, nothing attributed");
        }
        // The goal filter applies to floor points exactly as to full ones.
        let best = sweep.goal(SweepGoal::Best).bound_only().into_outcome();
        assert_eq!(best.points.len(), 1);
        let min = floors.points.iter().map(|p| p.estimate.iteration_time).min().unwrap();
        assert_eq!(best.points[0].estimate.iteration_time, min);
    }

    /// The original quadratic frontier, kept as the oracle for the
    /// sort-based implementation.
    fn pareto_front_naive(points: &[DesignPoint]) -> Vec<&DesignPoint> {
        let mut front: Vec<&DesignPoint> = Vec::new();
        for p in points {
            let dominated = points.iter().any(|q| {
                (q.estimate.iteration_time < p.estimate.iteration_time
                    && q.estimate.num_gpus <= p.estimate.num_gpus)
                    || (q.estimate.iteration_time <= p.estimate.iteration_time
                        && q.estimate.num_gpus < p.estimate.num_gpus)
            });
            if !dominated {
                front.push(p);
            }
        }
        front
    }

    fn synthetic_point(time_us: u64, gpus: usize) -> DesignPoint {
        DesignPoint {
            plan: ParallelConfig::builder().global_batch(1).build().unwrap(),
            estimate: IterationEstimate {
                iteration_time: TimeNs::from_micros(time_us),
                utilization: 0.5,
                busy: Default::default(),
                occupancy: 0.5,
                num_gpus: gpus,
                tokens_per_iteration: 1,
            },
        }
    }

    #[test]
    fn enumeration_respects_constraints() {
        let model = presets::megatron("1.7B"); // 24 layers
        let cluster = ClusterSpec::aws_p4d(64);
        let limits =
            SearchLimits { max_tensor: 16, max_data: 8, max_pipeline: 8, max_micro_batch: 4 };
        let cands = enumerate_candidates(&model, &cluster, 32, PipelineSchedule::OneFOneB, &limits);
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.tensor() <= 8, "tensor capped by node size");
            assert_eq!(24 % c.pipeline(), 0, "even stage partition");
            assert_eq!(32 % (c.data() * c.micro_batch()), 0);
            assert!(c.num_gpus() <= 64);
        }
    }

    #[test]
    fn sweep_returns_feasible_points_deterministically() {
        let a = small_points();
        let b = small_points();
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.plan, y.plan);
            assert_eq!(x.estimate.iteration_time, y.estimate.iteration_time);
        }
    }

    #[test]
    fn parallel_and_serial_sweeps_agree() {
        let cluster = ClusterSpec::aws_p4d(16);
        let model = presets::megatron("1.7B");
        let limits =
            SearchLimits { max_tensor: 2, max_data: 2, max_pipeline: 2, max_micro_batch: 2 };
        let cands = enumerate_candidates(&model, &cluster, 8, PipelineSchedule::OneFOneB, &limits);
        // Fresh cache per thread count: the executor must be
        // deterministic at 1 vs N threads with hot *or* cold caches.
        let serial =
            Sweep::over(&model, &cluster).candidates(cands.clone()).threads(1).run().into_outcome();
        let parallel =
            Sweep::over(&model, &cluster).candidates(cands).threads(8).run().into_outcome();
        assert_eq!(serial.points.len(), parallel.points.len());
        for (a, b) in serial.points.iter().zip(&parallel.points) {
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.estimate.iteration_time, b.estimate.iteration_time);
        }
        assert_eq!(serial.stats.pruned, parallel.stats.pruned);
        assert_eq!(serial.stats.evaluated, parallel.stats.evaluated);
        assert_eq!(serial.stats.threads, 1);
    }

    #[test]
    fn delta_lowering_is_bit_identical_and_actually_patches() {
        let cluster = ClusterSpec::aws_p4d(32);
        let model = presets::megatron("1.7B");
        let limits =
            SearchLimits { max_tensor: 4, max_data: 8, max_pipeline: 4, max_micro_batch: 4 };
        let cands = enumerate_candidates(&model, &cluster, 32, PipelineSchedule::OneFOneB, &limits);
        let run = |delta: bool| {
            Sweep::over(&model, &cluster)
                .candidates(cands.clone())
                .threads(1)
                .delta_lowering(delta)
                .run()
                .into_outcome()
        };
        let fresh = run(false);
        let patched = run(true);
        assert_eq!(fresh.stats.delta_patched, 0, "delta off must never patch");
        assert_eq!(fresh.stats.delta_fresh as usize, fresh.stats.evaluated);
        assert!(
            patched.stats.delta_patched > 0,
            "shape-grouped visit order must produce patches on a {}-point grid",
            patched.stats.evaluated
        );
        assert_eq!(
            patched.stats.delta_fresh + patched.stats.delta_patched,
            patched.stats.evaluated as u64
        );
        // Patching must not change a single bit of any estimate, nor the
        // candidate-order output contract.
        assert_eq!(fresh.points.len(), patched.points.len());
        for (a, b) in fresh.points.iter().zip(&patched.points) {
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.estimate.iteration_time, b.estimate.iteration_time);
            assert_eq!(a.estimate.utilization.to_bits(), b.estimate.utilization.to_bits());
            assert_eq!(a.estimate.occupancy.to_bits(), b.estimate.occupancy.to_bits());
            assert_eq!(a.estimate.busy, b.estimate.busy);
        }
    }

    #[test]
    fn two_level_split_shards_small_grids_without_changing_output() {
        let cluster = ClusterSpec::aws_p4d(16);
        let model = presets::megatron("1.7B");
        let plan = |t: usize, d: usize, p: usize| {
            ParallelConfig::builder()
                .tensor(t)
                .data(d)
                .pipeline(p)
                .micro_batch(1)
                .global_batch(8)
                .build()
                .unwrap()
        };
        let cands = vec![plan(1, 2, 2), plan(2, 2, 2), plan(2, 4, 1)];
        let serial =
            Sweep::over(&model, &cluster).candidates(cands.clone()).threads(1).run().into_outcome();
        let sharded =
            Sweep::over(&model, &cluster).candidates(cands).threads(16).run().into_outcome();
        assert_eq!(serial.stats.shards, 1);
        assert!(
            sharded.stats.shards > 1,
            "{} candidates on 16 threads must shard refills",
            sharded.stats.candidates
        );
        assert_eq!(sharded.stats.threads, sharded.stats.candidates);
        assert_eq!(serial.points.len(), sharded.points.len());
        for (a, b) in serial.points.iter().zip(&sharded.points) {
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.estimate.iteration_time, b.estimate.iteration_time);
            assert_eq!(a.estimate.utilization.to_bits(), b.estimate.utilization.to_bits());
        }
    }

    #[test]
    fn goal_guided_stage_profiles_attribute_bound_time() {
        // Regression test: `bound_ns` must be a stage window of its own,
        // nonzero whenever a goal-guided profiled sweep priced floors.
        let cluster = ClusterSpec::aws_p4d(32);
        let model = presets::megatron("1.7B");
        let limits =
            SearchLimits { max_tensor: 4, max_data: 8, max_pipeline: 4, max_micro_batch: 4 };
        let cands = enumerate_candidates(&model, &cluster, 32, PipelineSchedule::OneFOneB, &limits);
        let outcome = Sweep::over(&model, &cluster)
            .candidates(cands)
            .threads(1)
            .goal(SweepGoal::Best)
            .stage_profile(true)
            .run()
            .into_outcome();
        let profile = outcome.stage_profile.expect("requested profile must be attached");
        assert!(
            outcome.stats.evaluated + outcome.stats.bound_pruned > 0,
            "grid must reach the bound stage"
        );
        assert!(
            profile.bound_ns > 0,
            "goal-guided sweeps price floors, so bound time must be attributed"
        );
        assert!(profile.attributed_ns() <= profile.wall_ns);
    }

    #[test]
    fn sweep_stats_account_for_every_candidate() {
        // 18.4B on 32 GPUs: low-parallelism candidates exceed HBM and must
        // be pruned by the validation stage before any lowering work.
        let cluster = ClusterSpec::aws_p4d(32);
        let estimator = Estimator::builder(cluster.clone()).build();
        let model = presets::megatron("18.4B");
        let limits =
            SearchLimits { max_tensor: 8, max_data: 8, max_pipeline: 8, max_micro_batch: 1 };
        let cands = enumerate_candidates(&model, &cluster, 32, PipelineSchedule::OneFOneB, &limits);
        let outcome =
            Sweep::on(&estimator, &model).candidates(cands.clone()).threads(4).run().into_outcome();
        let s = outcome.stats;
        assert_eq!(s.candidates, cands.len());
        assert_eq!(s.pruned + s.evaluated, s.candidates);
        assert_eq!(outcome.points.len(), s.evaluated);
        assert!(s.pruned > 0, "memory-infeasible plans must be pruned");
        assert!(s.evaluated > 0, "some plans must survive");
        assert!(s.wall_s > 0.0);
        assert!(s.points_per_sec() > 0.0);
        assert_eq!(s.threads, 4);
        // The sweep shares one cache: far more lookups hit than miss.
        assert!(
            s.cache_hit_rate() > 0.8,
            "hit rate {:.3} (hits {}, misses {})",
            s.cache_hit_rate(),
            s.cache_hits,
            s.cache_misses
        );
    }

    #[test]
    fn stage_profiling_is_observation_only_and_accounts_for_the_wall_clock() {
        let cluster = ClusterSpec::aws_p4d(16);
        let model = presets::megatron("1.7B");
        let limits =
            SearchLimits { max_tensor: 4, max_data: 4, max_pipeline: 4, max_micro_batch: 4 };
        let cands = enumerate_candidates(&model, &cluster, 16, PipelineSchedule::OneFOneB, &limits);
        let plain =
            Sweep::over(&model, &cluster).candidates(cands.clone()).threads(1).run().into_outcome();
        let profiled = Sweep::over(&model, &cluster)
            .candidates(cands)
            .threads(1)
            .stage_profile(true)
            .run()
            .into_outcome();
        assert!(plain.stage_profile.is_none(), "profiling is opt-in");

        // Profiling must not change a single bit of any estimate.
        assert_eq!(plain.points.len(), profiled.points.len());
        for (a, b) in plain.points.iter().zip(&profiled.points) {
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.estimate.iteration_time, b.estimate.iteration_time);
            assert_eq!(a.estimate.utilization.to_bits(), b.estimate.utilization.to_bits());
            assert_eq!(a.estimate.occupancy.to_bits(), b.estimate.occupancy.to_bits());
        }

        let profile = profiled.stage_profile.expect("requested profile must be attached");
        assert_eq!(profile.threads, 1);
        assert!(profile.stages.simulate_ns > 0, "replay time must be attributed");
        assert!(profile.stages.lower_ns > 0, "lowering time must be attributed");
        assert_eq!(profile.bound_ns, 0, "exhaustive sweeps never price bounds");
        assert!(profile.attributed_ns() <= profile.wall_ns, "stages nest inside the wall clock");
        // On one thread, named stages dominate the wall clock: the
        // executor's own overhead (cursor claims, buffer merge) is noise.
        assert!(
            profile.attributed_fraction() > 0.9,
            "stage attribution covers only {:.1}% of the wall clock",
            profile.attributed_fraction() * 100.0
        );
    }

    #[test]
    fn placement_sweep_shares_one_cache_and_orders_topologies() {
        let cluster = ClusterSpec::aws_p4d(32);
        let model = presets::megatron("1.7B");
        let limits =
            SearchLimits { max_tensor: 4, max_data: 8, max_pipeline: 2, max_micro_batch: 2 };
        let cands = enumerate_candidates(&model, &cluster, 16, PipelineSchedule::OneFOneB, &limits);
        let spine = vtrain_net::TierSpec::new(25e9, vtrain_model::TimeNs::from_micros(35), 1.0);
        let topologies = vec![
            ("two-tier".to_owned(), cluster.topology(1.0)),
            ("multi-rack/2".to_owned(), cluster.topology(1.0).with_rack_tier(2, spine)),
        ];
        let sweeps = Sweep::over(&model, &cluster)
            .candidates(cands)
            .placements(topologies)
            .threads(4)
            .run()
            .into_variants();
        assert_eq!(sweeps.len(), 2);
        assert_eq!(sweeps[0].label, "two-tier");
        // Identical candidate grids: the same plans are feasible under
        // every placement (feasibility never depends on the topology).
        assert_eq!(sweeps[0].outcome.points.len(), sweeps[1].outcome.points.len());
        // The second variant re-used every compute profile of the first.
        assert_eq!(sweeps[1].outcome.stats.cache_misses, 0, "placement sweeps share one cache");
        // A slower spine can only slow points down.
        for (a, b) in sweeps[0].outcome.points.iter().zip(&sweeps[1].outcome.points) {
            assert_eq!(a.plan, b.plan);
            assert!(b.estimate.iteration_time >= a.estimate.iteration_time);
        }
    }

    #[test]
    fn budget_filters_apply() {
        let points = small_points();
        let best = fastest_within_gpu_budget(&points, 8).unwrap();
        assert!(best.estimate.num_gpus <= 8);
        // No point under the budget beats it.
        for p in points.iter().filter(|p| p.estimate.num_gpus <= 8) {
            assert!(best.estimate.iteration_time <= p.estimate.iteration_time);
        }
    }

    #[test]
    fn cost_optimum_is_cheapest() {
        let points = small_points();
        let cost = CostModel::default();
        let (_, proj) = most_cost_effective(&points, 1_000_000_000, &cost, 16).unwrap();
        for p in &points {
            let other = p.project(1_000_000_000, &cost);
            assert!(proj.total_dollars <= other.total_dollars + 1e-9);
        }
    }

    #[test]
    fn pareto_points_are_mutually_nondominated() {
        let points = small_points();
        let front = pareto_front(&points);
        assert!(!front.is_empty());
        for a in &front {
            for b in &front {
                let strictly_better = b.estimate.iteration_time < a.estimate.iteration_time
                    && b.estimate.num_gpus <= a.estimate.num_gpus;
                assert!(!strictly_better, "front contains dominated point");
            }
        }
    }

    #[test]
    fn pareto_matches_naive_on_swept_points() {
        let points = small_points();
        let fast: Vec<*const DesignPoint> =
            pareto_front(&points).into_iter().map(|p| p as *const _).collect();
        let naive: Vec<*const DesignPoint> =
            pareto_front_naive(&points).into_iter().map(|p| p as *const _).collect();
        assert_eq!(fast, naive, "sort-based front must equal the quadratic oracle");
    }

    #[test]
    fn pareto_keeps_exact_duplicates_and_time_ties() {
        let points = vec![
            synthetic_point(10, 4),
            synthetic_point(10, 4), // exact duplicate: kept
            synthetic_point(10, 8), // same time, more GPUs: dominated
            synthetic_point(5, 8),
            synthetic_point(20, 2),
            synthetic_point(20, 4), // slower and ≥ GPUs than (10, 4): dominated
        ];
        let front = pareto_front(&points);
        let naive = pareto_front_naive(&points);
        assert_eq!(
            front.iter().map(|p| p.estimate.num_gpus).collect::<Vec<_>>(),
            naive.iter().map(|p| p.estimate.num_gpus).collect::<Vec<_>>()
        );
        assert_eq!(front.len(), 4, "duplicates of (10, 4) both survive alongside (5,8), (20,2)");
    }

    #[test]
    fn points_per_sec_guards_degenerate_wall_clocks() {
        let stats = SweepStats { evaluated: 5, wall_s: 0.0, ..SweepStats::default() };
        assert_eq!(stats.points_per_sec(), 0.0, "zero wall must not emit inf");
        let stats = SweepStats { evaluated: 5, wall_s: f64::NAN, ..SweepStats::default() };
        assert_eq!(stats.points_per_sec(), 0.0, "NaN wall must not propagate");
        let stats = SweepStats { evaluated: 4, wall_s: 2.0, ..SweepStats::default() };
        assert!((stats.points_per_sec() - 2.0).abs() < 1e-12);
    }

    /// Winners of each goal derived from an exhaustive sweep's points —
    /// the oracle the pruned sweeps must reproduce exactly.
    fn assert_goal_outcomes_match(
        estimator: &Estimator,
        model: &ModelConfig,
        cands: &[ParallelConfig],
        threads: usize,
    ) -> SweepStats {
        let run_goal = |goal: SweepGoal| {
            Sweep::on(estimator, model)
                .candidates(cands.to_vec())
                .threads(threads)
                .goal(goal)
                .run()
                .into_outcome()
        };
        let exhaustive = run_goal(SweepGoal::Exhaustive);
        assert_eq!(exhaustive.stats.bound_pruned, 0, "exhaustive mode never computes bounds");

        let best = run_goal(SweepGoal::Best);
        let want_best = exhaustive.points.iter().min_by_key(|p| p.estimate.iteration_time);
        match want_best {
            None => assert!(best.points.is_empty()),
            Some(want) => {
                assert_eq!(best.points.len(), 1);
                assert_eq!(best.points[0].plan, want.plan);
                assert_eq!(best.points[0].estimate.iteration_time, want.estimate.iteration_time);
                assert_eq!(
                    best.points[0].estimate.utilization.to_bits(),
                    want.estimate.utilization.to_bits(),
                    "winners must be bit-identical, not merely equal"
                );
            }
        }

        let front = run_goal(SweepGoal::Front);
        let want_front: Vec<&DesignPoint> = pareto_front(&exhaustive.points);
        assert_eq!(front.points.len(), want_front.len());
        for (got, want) in front.points.iter().zip(&want_front) {
            assert_eq!(got.plan, want.plan);
            assert_eq!(got.estimate.iteration_time, want.estimate.iteration_time);
            assert_eq!(got.estimate.num_gpus, want.estimate.num_gpus);
        }

        for outcome in [&best, &front] {
            let s = outcome.stats;
            assert_eq!(s.pruned + s.bound_pruned + s.evaluated, s.candidates);
            assert!(outcome.points.len() <= s.evaluated);
        }
        best.stats
    }

    #[test]
    fn goal_modes_return_exhaustive_winners_and_prune() {
        let cluster = ClusterSpec::aws_p4d(32);
        let estimator = Estimator::builder(cluster.clone()).build();
        let model = presets::megatron("1.7B");
        let limits =
            SearchLimits { max_tensor: 4, max_data: 8, max_pipeline: 4, max_micro_batch: 4 };
        let cands = enumerate_candidates(&model, &cluster, 32, PipelineSchedule::OneFOneB, &limits);
        assert!(cands.len() > 20, "grid too small to be meaningful");
        let best_stats = assert_goal_outcomes_match(&estimator, &model, &cands, 1);
        // On a single thread the incumbent is established early, so the
        // bound must actually skip work (the point of the feature).
        assert!(
            best_stats.bound_pruned > 0,
            "Best goal pruned nothing on {} candidates",
            cands.len()
        );
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_evaluation() {
        let cluster = ClusterSpec::aws_p4d(16);
        let model = presets::megatron("1.7B");
        let token = CancelToken::new();
        token.cancel();
        let outcome =
            Sweep::over(&model, &cluster).batch(16).threads(2).cancel(token).run().into_outcome();
        assert_eq!(outcome.aborted, Some(AbortReason::Cancelled));
        assert_eq!(outcome.stats.evaluated, 0, "no candidate may run after cancellation");
        assert!(outcome.points.is_empty());
    }

    #[test]
    fn point_budget_aborts_and_reports_budget() {
        let cluster = ClusterSpec::aws_p4d(16);
        let model = presets::megatron("1.7B");
        let limits =
            SearchLimits { max_tensor: 4, max_data: 4, max_pipeline: 4, max_micro_batch: 4 };
        let full =
            Sweep::over(&model, &cluster).batch(16).limits(limits).threads(2).run().into_outcome();
        assert!(full.aborted.is_none());
        assert!(full.stats.evaluated > 3, "grid too small to exercise the budget");

        let budget = 3;
        let token = CancelToken::with_limits(None, Some(budget));
        let bounded = Sweep::over(&model, &cluster)
            .batch(16)
            .limits(limits)
            .threads(2)
            .cancel(token)
            .run()
            .into_outcome();
        assert_eq!(bounded.aborted, Some(AbortReason::Budget));
        assert!(
            bounded.stats.evaluated <= budget as usize,
            "claimed permits bound evaluations: {} > {budget}",
            bounded.stats.evaluated
        );
        // Whatever did run is a subset of the full sweep's results —
        // cancellation truncates, never corrupts.
        for point in &bounded.points {
            assert!(full.points.contains(point), "budgeted point not in full sweep");
        }
    }

    #[test]
    fn expired_deadline_aborts_with_deadline_reason() {
        let cluster = ClusterSpec::aws_p4d(16);
        let model = presets::megatron("1.7B");
        let token = CancelToken::with_timeout(std::time::Duration::ZERO);
        let outcome =
            Sweep::over(&model, &cluster).batch(16).threads(2).cancel(token).run().into_outcome();
        assert_eq!(outcome.aborted, Some(AbortReason::Deadline));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        /// The sort-based frontier agrees with the quadratic oracle on
        /// random point clouds (including heavy tie collisions).
        #[test]
        fn pareto_agrees_with_naive(raw in proptest::collection::vec((1u64..20, 1usize..20), 0..60)) {
            let points: Vec<DesignPoint> =
                raw.into_iter().map(|(t, g)| synthetic_point(t, g)).collect();
            let fast: Vec<*const DesignPoint> =
                pareto_front(&points).into_iter().map(|p| p as *const _).collect();
            let naive: Vec<*const DesignPoint> =
                pareto_front_naive(&points).into_iter().map(|p| p as *const _).collect();
            prop_assert_eq!(fast, naive);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Determinism under pruning: `Best`/`Front` return exactly the
        /// exhaustive sweep's winners across random grids, batch sizes,
        /// and thread counts — regardless of watermark race timing.
        #[test]
        fn goal_pruning_never_changes_winners(
            max_tensor_exp in 0usize..=2,
            max_data in 1usize..=6,
            max_pipeline in 1usize..=4,
            batch_exp in 3usize..=5,
            threads in 1usize..=6,
            big_model in proptest::bool::ANY,
        ) {
            let cluster = ClusterSpec::aws_p4d(64);
            let estimator = Estimator::builder(cluster.clone()).build();
            let model =
                if big_model { presets::megatron("3.6B") } else { presets::megatron("1.7B") };
            let limits = SearchLimits {
                max_tensor: 1 << max_tensor_exp,
                max_data,
                max_pipeline,
                max_micro_batch: 2,
            };
            let cands = enumerate_candidates(
                &model,
                &cluster,
                1 << batch_exp,
                PipelineSchedule::OneFOneB,
                &limits,
            );
            assert_goal_outcomes_match(&estimator, &model, &cands, threads);
        }
    }
}
