//! Lowering the operator graph to the task-granularity execution graph
//! (paper §III-D).
//!
//! Compute layer-nodes are replaced by their profiled CUDA-kernel sequences.
//! Because an operator's kernels launch back-to-back on a single stream with
//! no external dependency attaching between them, the sequence is lowered to
//! one task carrying the summed latency and the kernel count — a lossless
//! aggregation for the replay, while the kernel count preserves the
//! launch-overhead accounting the ground-truth emulator needs.
//!
//! The graph is stored **columnar** (structure-of-arrays): the replay's hot
//! loop touches `duration` for every task but `kind` only on the measured
//! path, so packing each attribute contiguously keeps the dataflow replay's
//! working set to the columns it actually reads instead of striding over
//! 40-byte task records. [`Task`] remains as the assembled per-index view.
//!
//! Two lowering paths produce identical graphs:
//! * [`TaskGraph::lower`] consumes a materialized [`OpGraph`];
//! * [`TaskGraph::lower_fused`] streams the builder's nodes straight into
//!   tasks via [`GraphSink`], never allocating the operator graph — the
//!   hot path of the staged estimation pipeline.

use std::fmt;

use serde::{Deserialize, Serialize};
use vtrain_graph::{
    build_op_graph_into, CommKind, CommOp, CommScope, GraphOptions, GraphSink, Op, OpGraph, OpNode,
    OpSignature, StreamKind,
};
use vtrain_model::{ModelConfig, TimeNs};
use vtrain_parallel::ParallelConfig;
use vtrain_profile::{CommModel, OperatorTaskTable, ProfileSet};

/// What a task does (drives how the measured-mode perturbations apply).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Aggregated compute-kernel sequence.
    Compute {
        /// Number of CUDA kernels aggregated into this task.
        kernels: u32,
    },
    /// A communication operator.
    Comm {
        /// Collective class.
        kind: CommKind,
        /// Network tier.
        scope: CommScope,
        /// May overlap compute (runs on the comm stream by construction).
        overlappable: bool,
        /// DP groups sharing the node uplinks.
        concurrent_groups: u32,
    },
}

/// One schedulable unit of the task-granularity graph — the assembled view
/// of one index across the [`TaskGraph`]'s columns.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Task {
    /// Owning device (pipeline-stage representative GPU).
    pub device: u32,
    /// Stream on the device (0 = compute, 1 = comm).
    pub stream: u8,
    /// Clean (lookup-table) duration.
    pub duration: TimeNs,
    /// Task class.
    pub kind: TaskKind,
}

/// The task-granularity execution graph consumed by Algorithm 1.
///
/// Task attributes are stored as parallel columns indexed by task id;
/// children are stored in compressed sparse-row form: `targets[offsets[i]..
/// offsets[i + 1]]` are the successors of task `i`, in edge-insertion
/// order (which the replay's FIFO dispatch depends on).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    device: Vec<u32>,
    stream: Vec<u8>,
    duration: Vec<TimeNs>,
    kind: Vec<TaskKind>,
    offsets: Vec<u32>,
    targets: Vec<u32>,
    num_devices: u32,
}

/// Error lowering an operator graph: an operator was never profiled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissingProfile;

impl fmt::Display for MissingProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operator missing from the lookup table; profile necessary operators first")
    }
}

impl std::error::Error for MissingProfile {}

impl TaskGraph {
    /// Lowers an operator graph using the profiled lookup table and the
    /// communication model.
    ///
    /// # Errors
    ///
    /// Returns [`MissingProfile`] if a compute operator's signature is not
    /// in `table`.
    pub fn lower(
        graph: &OpGraph,
        table: &OperatorTaskTable,
        comm: &CommModel,
    ) -> Result<Self, MissingProfile> {
        let mut cols = Columns::with_capacity(graph.num_nodes());
        for node in graph.nodes() {
            let stream = stream_index(node.stream);
            match &node.op {
                Op::Compute(c) => {
                    let profile = table.get(&c.sig).ok_or(MissingProfile)?;
                    cols.push(
                        node.device,
                        stream,
                        profile.total(),
                        TaskKind::Compute { kernels: profile.kernel_count() as u32 },
                    );
                }
                Op::Comm(c) => {
                    cols.push(node.device, stream, comm.latency(c), comm_kind(c));
                }
            }
        }
        // CSR straight from the graph's per-node child lists.
        let n = graph.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(graph.num_edges());
        offsets.push(0u32);
        for i in 0..n as u32 {
            targets.extend_from_slice(graph.children(i));
            offsets.push(targets.len() as u32);
        }
        Ok(cols.into_graph(offsets, targets, graph.num_devices()))
    }

    /// Lowers `(model, plan)` in one fused pass: the graph builder streams
    /// nodes directly into tasks (profiles resolved from `profiles`,
    /// communication latencies from `comm`) without materializing an
    /// [`OpGraph`]. Produces a graph identical to
    /// [`TaskGraph::lower`]`(build_op_graph(..), ..)`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingProfile`] if a signature the builder emits is
    /// absent from `profiles` (resolve
    /// [`vtrain_graph::plan_signatures`] first).
    ///
    /// # Panics
    ///
    /// Same conditions as [`vtrain_graph::build_op_graph`].
    pub fn lower_fused(
        model: &ModelConfig,
        plan: &ParallelConfig,
        opts: &GraphOptions,
        profiles: &ProfileSet,
        comm: &CommModel,
    ) -> Result<Self, MissingProfile> {
        let mut sink = LoweringSink {
            profiles,
            comm,
            sig_memo: Vec::with_capacity(16),
            comm_memo: Vec::with_capacity(8),
            cols: Columns::with_capacity(0),
            edges: Vec::new(),
            num_devices: plan.pipeline() as u32,
            missing: false,
        };
        build_op_graph_into(model, plan, opts, &mut sink);
        if sink.missing {
            return Err(MissingProfile);
        }
        let LoweringSink { cols, edges, num_devices, .. } = sink;
        // CSR from the flat edge list, preserving per-source insertion
        // order (a counting sort over sources is stable in edge order).
        let n = cols.len();
        let mut counts = vec![0u32; n + 1];
        for &(from, _) in &edges {
            counts[from as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0u32; edges.len()];
        for &(from, to) in &edges {
            let slot = &mut cursor[from as usize];
            targets[*slot as usize] = to;
            *slot += 1;
        }
        Ok(cols.into_graph(offsets, targets, num_devices))
    }

    #[cfg(test)]
    fn assemble(tasks: Vec<Task>, offsets: Vec<u32>, targets: Vec<u32>, num_devices: u32) -> Self {
        let mut cols = Columns::with_capacity(tasks.len());
        for t in tasks {
            cols.push(t.device, t.stream, t.duration, t.kind);
        }
        cols.into_graph(offsets, targets, num_devices)
    }

    /// The assembled view of task `i` (cheap: four column reads).
    pub fn task(&self, i: u32) -> Task {
        let i = i as usize;
        Task {
            device: self.device[i],
            stream: self.stream[i],
            duration: self.duration[i],
            kind: self.kind[i],
        }
    }

    /// The clean-duration column, indexed consistently with
    /// [`TaskGraph::children`] — the only per-task attribute the
    /// predicted-mode replay reads per dispatch.
    pub fn durations(&self) -> &[TimeNs] {
        &self.duration
    }

    /// The task-class column (read by the measured-mode perturbations and
    /// the timeline labeler).
    pub fn kinds(&self) -> &[TaskKind] {
        &self.kind
    }

    /// The owning-device column.
    pub fn devices(&self) -> &[u32] {
        &self.device
    }

    /// The stream column (0 = compute, 1 = comm).
    pub fn streams(&self) -> &[u8] {
        &self.stream
    }

    /// Successor indices of task `i`.
    pub fn children(&self, i: u32) -> &[u32] {
        let lo = self.offsets[i as usize] as usize;
        let hi = self.offsets[i as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.duration.len()
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.duration.is_empty()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> u32 {
        self.num_devices
    }

    /// True if every per-(device, stream) program is totally ordered by
    /// dependency edges — the structural property under which the FIFO
    /// replay's schedule is fully determined by the DAG alone, licensing
    /// the simulator's dataflow fast path.
    ///
    /// Verified by an O(edges) scan on every call (graphs the builder
    /// produces always pass): the property is *checked*, never trusted —
    /// in particular it is not persisted, so a deserialized graph cannot
    /// claim it falsely.
    pub fn is_stream_chained(&self) -> bool {
        self.is_stream_chained_with(&mut Vec::new())
    }

    /// [`TaskGraph::is_stream_chained`] over a caller-owned scratch buffer
    /// (cleared and refilled), so repeated checks allocate nothing once
    /// the buffer has grown to the largest graph seen.
    pub fn is_stream_chained_with(&self, last: &mut Vec<Option<u32>>) -> bool {
        let streams = 2 * self.num_devices as usize;
        last.clear();
        last.resize(streams, None);
        for i in 0..self.len() {
            let (device, stream) = (self.device[i], self.stream[i]);
            if stream > 1 || device >= self.num_devices {
                return false;
            }
            let slot = device as usize * 2 + stream as usize;
            if let Some(prev) = last[slot] {
                if !self.children(prev).contains(&(i as u32)) {
                    return false;
                }
            }
            last[slot] = Some(i as u32);
        }
        true
    }

    /// In-degrees (Algorithm 1's `ref` counts), written into `out`
    /// (cleared and refilled — the allocation-free replacement for the
    /// old `in_degrees() -> Vec<u32>` API).
    pub fn fill_in_degrees(&self, out: &mut Vec<u32>) {
        out.clear();
        out.resize(self.len(), 0);
        for &t in &self.targets {
            out[t as usize] += 1;
        }
    }
}

/// The growing column set of a lowering in progress.
struct Columns {
    device: Vec<u32>,
    stream: Vec<u8>,
    duration: Vec<TimeNs>,
    kind: Vec<TaskKind>,
}

impl Columns {
    fn with_capacity(n: usize) -> Self {
        Columns {
            device: Vec::with_capacity(n),
            stream: Vec::with_capacity(n),
            duration: Vec::with_capacity(n),
            kind: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, device: u32, stream: u8, duration: TimeNs, kind: TaskKind) {
        self.device.push(device);
        self.stream.push(stream);
        self.duration.push(duration);
        self.kind.push(kind);
    }

    fn len(&self) -> usize {
        self.duration.len()
    }

    fn into_graph(self, offsets: Vec<u32>, targets: Vec<u32>, num_devices: u32) -> TaskGraph {
        TaskGraph {
            device: self.device,
            stream: self.stream,
            duration: self.duration,
            kind: self.kind,
            offsets,
            targets,
            num_devices,
        }
    }
}

fn stream_index(stream: StreamKind) -> u8 {
    match stream {
        StreamKind::Compute => 0,
        StreamKind::Comm => 1,
    }
}

fn comm_kind(c: &CommOp) -> TaskKind {
    TaskKind::Comm {
        kind: c.kind,
        scope: c.scope,
        overlappable: c.overlappable,
        concurrent_groups: c.concurrent_groups as u32,
    }
}

/// A [`GraphSink`] mapping builder nodes straight to task columns.
///
/// Profile and communication-latency lookups are memoized in tiny
/// linear-scan tables: one plan touches ≲ a dozen distinct compute
/// signatures and a handful of distinct communication shapes, and a short
/// `Vec` probe beats hashing an 80-byte signature per node.
struct LoweringSink<'a> {
    profiles: &'a ProfileSet,
    comm: &'a CommModel,
    sig_memo: Vec<(OpSignature, TimeNs, u32)>,
    comm_memo: Vec<(CommOp, TimeNs)>,
    cols: Columns,
    edges: Vec<(u32, u32)>,
    num_devices: u32,
    missing: bool,
}

impl LoweringSink<'_> {
    fn compute_latency(&mut self, sig: &OpSignature) -> (TimeNs, u32) {
        if let Some(&(_, total, kernels)) =
            self.sig_memo.iter().find(|(cached, _, _)| cached == sig)
        {
            return (total, kernels);
        }
        let (total, kernels) = match self.profiles.lookup(sig) {
            Some(hit) => hit,
            None => {
                self.missing = true;
                (TimeNs::ZERO, 0)
            }
        };
        self.sig_memo.push((*sig, total, kernels));
        (total, kernels)
    }

    fn comm_latency(&mut self, op: &CommOp) -> TimeNs {
        if let Some(&(_, latency)) = self.comm_memo.iter().find(|(cached, _)| cached == op) {
            return latency;
        }
        let latency = self.comm.latency(op);
        self.comm_memo.push((*op, latency));
        latency
    }
}

impl GraphSink for LoweringSink<'_> {
    fn push(&mut self, node: OpNode) -> u32 {
        let stream = stream_index(node.stream);
        let idx = self.cols.len() as u32;
        match &node.op {
            Op::Compute(c) => {
                let (duration, kernels) = self.compute_latency(&c.sig);
                self.cols.push(node.device, stream, duration, TaskKind::Compute { kernels });
            }
            Op::Comm(c) => {
                let latency = self.comm_latency(c);
                self.cols.push(node.device, stream, latency, comm_kind(c));
            }
        }
        idx
    }

    fn add_edge(&mut self, from: u32, to: u32) {
        self.edges.push((from, to));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_graph::build_op_graph;
    use vtrain_model::presets;
    use vtrain_parallel::{ClusterSpec, GpuSpec, ParallelConfig};
    use vtrain_profile::{ProfileCache, Profiler};

    fn lower_plan(t: usize, d: usize, p: usize) -> TaskGraph {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .global_batch(4 * d)
            .build()
            .unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let table = Profiler::new(GpuSpec::a100_40gb()).profile(&graph.necessary_operators());
        let comm = CommModel::new(&ClusterSpec::aws_p4d(64), 1.0);
        TaskGraph::lower(&graph, &table, &comm).unwrap()
    }

    #[test]
    fn lowering_preserves_structure() {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder()
            .tensor(2)
            .data(2)
            .pipeline(2)
            .global_batch(8)
            .build()
            .unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let tg = lower_plan(2, 2, 2);
        assert_eq!(tg.len(), graph.num_nodes());
        assert_eq!(tg.num_devices(), 2);
        assert!(tg.durations().iter().all(|&d| d > TimeNs::ZERO));
        assert!(tg.is_stream_chained(), "builder graphs are chained by construction");
    }

    #[test]
    fn columns_stay_aligned() {
        let tg = lower_plan(2, 2, 2);
        assert_eq!(tg.durations().len(), tg.len());
        assert_eq!(tg.kinds().len(), tg.len());
        assert_eq!(tg.devices().len(), tg.len());
        assert_eq!(tg.streams().len(), tg.len());
        // The assembled view agrees with the columns at every index.
        for i in 0..tg.len() as u32 {
            let t = tg.task(i);
            assert_eq!(t.device, tg.devices()[i as usize]);
            assert_eq!(t.stream, tg.streams()[i as usize]);
            assert_eq!(t.duration, tg.durations()[i as usize]);
            assert_eq!(t.kind, tg.kinds()[i as usize]);
        }
    }

    #[test]
    fn missing_profile_is_an_error() {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder().global_batch(4).build().unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let empty = OperatorTaskTable::new();
        let comm = CommModel::new(&ClusterSpec::aws_p4d(8), 1.0);
        assert_eq!(TaskGraph::lower(&graph, &empty, &comm).unwrap_err(), MissingProfile);
        // The fused path reports the same error for an empty profile set.
        let err = TaskGraph::lower_fused(
            &model,
            &plan,
            &GraphOptions::default(),
            &ProfileSet::default(),
            &comm,
        )
        .unwrap_err();
        assert_eq!(err, MissingProfile);
    }

    #[test]
    fn compute_tasks_carry_kernel_counts() {
        let tg = lower_plan(2, 1, 1);
        let max_kernels = tg
            .kinds()
            .iter()
            .filter_map(|k| match k {
                TaskKind::Compute { kernels } => Some(*kernels),
                _ => None,
            })
            .max()
            .unwrap();
        // A backward block with recompute aggregates well over 10 kernels.
        assert!(max_kernels >= 10, "max kernels {max_kernels}");
    }

    #[test]
    fn fused_lowering_is_identical_to_two_phase() {
        let model = presets::megatron("1.7B");
        let cluster = ClusterSpec::aws_p4d(64);
        let comm = CommModel::new(&cluster, 1.0);
        let cache = ProfileCache::new();
        let profiler = Profiler::new(cluster.gpu.clone());
        for (t, d, p, m, b) in [(1, 1, 1, 1, 4), (2, 2, 2, 1, 8), (2, 4, 3, 2, 16)] {
            let plan = ParallelConfig::builder()
                .tensor(t)
                .data(d)
                .pipeline(p)
                .micro_batch(m)
                .global_batch(b)
                .build()
                .unwrap();
            let opts = GraphOptions::default();
            let graph = build_op_graph(&model, &plan, &opts);
            let table = profiler.profile(&graph.necessary_operators());
            let two_phase = TaskGraph::lower(&graph, &table, &comm).unwrap();

            let sigs = vtrain_graph::plan_signatures(&model, &plan, &opts);
            let profiles = cache.resolve(&profiler, &sigs);
            let fused = TaskGraph::lower_fused(&model, &plan, &opts, &profiles, &comm).unwrap();

            assert_eq!(fused.len(), two_phase.len());
            assert_eq!(fused.num_devices(), two_phase.num_devices());
            assert!(fused.is_stream_chained());
            for i in 0..fused.len() as u32 {
                let (a, b) = (fused.task(i), two_phase.task(i));
                assert_eq!(
                    (a.device, a.stream, a.duration, a.kind),
                    (b.device, b.stream, b.duration, b.kind)
                );
                assert_eq!(fused.children(i), two_phase.children(i), "children of {i}");
            }
        }
    }

    #[test]
    fn hand_built_unchained_graph_is_detected() {
        // Two tasks on one stream with no edge between them: not chained.
        let task = Task {
            device: 0,
            stream: 0,
            duration: TimeNs::from_micros(1),
            kind: TaskKind::Compute { kernels: 1 },
        };
        let tg = TaskGraph::assemble(vec![task, task], vec![0, 0, 0], vec![], 1);
        assert!(!tg.is_stream_chained());
        // Adding the chain edge restores the property.
        let tg = TaskGraph::assemble(vec![task, task], vec![0, 1, 1], vec![1], 1);
        assert!(tg.is_stream_chained());
        let mut deg = Vec::new();
        tg.fill_in_degrees(&mut deg);
        assert_eq!(deg, vec![0, 1]);
    }
}
