//! Lowering the operator graph to the task-granularity execution graph
//! (paper §III-D).
//!
//! Compute layer-nodes are replaced by their profiled CUDA-kernel sequences.
//! Because an operator's kernels launch back-to-back on a single stream with
//! no external dependency attaching between them, the sequence is lowered to
//! one task carrying the summed latency and the kernel count — a lossless
//! aggregation for the replay, while the kernel count preserves the
//! launch-overhead accounting the ground-truth emulator needs.

use std::fmt;

use serde::{Deserialize, Serialize};
use vtrain_graph::{CommKind, CommScope, Op, OpGraph, StreamKind};
use vtrain_model::TimeNs;
use vtrain_profile::{CommModel, OperatorTaskTable};

/// What a task does (drives how the measured-mode perturbations apply).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TaskKind {
    /// Aggregated compute-kernel sequence.
    Compute {
        /// Number of CUDA kernels aggregated into this task.
        kernels: u32,
    },
    /// A communication operator.
    Comm {
        /// Collective class.
        kind: CommKind,
        /// Network tier.
        scope: CommScope,
        /// May overlap compute (runs on the comm stream by construction).
        overlappable: bool,
        /// DP groups sharing the node uplinks.
        concurrent_groups: u32,
    },
}

/// One schedulable unit of the task-granularity graph.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Task {
    /// Owning device (pipeline-stage representative GPU).
    pub device: u32,
    /// Stream on the device (0 = compute, 1 = comm).
    pub stream: u8,
    /// Clean (lookup-table) duration.
    pub duration: TimeNs,
    /// Task class.
    pub kind: TaskKind,
}

/// The task-granularity execution graph consumed by Algorithm 1.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    children: Vec<Vec<u32>>,
    num_devices: u32,
}

/// Error lowering an operator graph: an operator was never profiled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MissingProfile;

impl fmt::Display for MissingProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "operator missing from the lookup table; profile necessary operators first")
    }
}

impl std::error::Error for MissingProfile {}

impl TaskGraph {
    /// Lowers an operator graph using the profiled lookup table and the
    /// communication model.
    ///
    /// # Errors
    ///
    /// Returns [`MissingProfile`] if a compute operator's signature is not
    /// in `table`.
    pub fn lower(
        graph: &OpGraph,
        table: &OperatorTaskTable,
        comm: &CommModel,
    ) -> Result<Self, MissingProfile> {
        let mut tasks = Vec::with_capacity(graph.num_nodes());
        for node in graph.nodes() {
            let stream = match node.stream {
                StreamKind::Compute => 0u8,
                StreamKind::Comm => 1u8,
            };
            let task = match &node.op {
                Op::Compute(c) => {
                    let profile = table.get(&c.sig).ok_or(MissingProfile)?;
                    Task {
                        device: node.device,
                        stream,
                        duration: profile.total(),
                        kind: TaskKind::Compute { kernels: profile.kernel_count() as u32 },
                    }
                }
                Op::Comm(c) => Task {
                    device: node.device,
                    stream,
                    duration: comm.latency(c),
                    kind: TaskKind::Comm {
                        kind: c.kind,
                        scope: c.scope,
                        overlappable: c.overlappable,
                        concurrent_groups: c.concurrent_groups as u32,
                    },
                },
            };
            tasks.push(task);
        }
        let children = (0..graph.num_nodes() as u32).map(|i| graph.children(i).to_vec()).collect();
        Ok(TaskGraph { tasks, children, num_devices: graph.num_devices() })
    }

    /// All tasks, indexed consistently with [`TaskGraph::children`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Successor indices of task `i`.
    pub fn children(&self, i: u32) -> &[u32] {
        &self.children[i as usize]
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True if the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Number of devices.
    pub fn num_devices(&self) -> u32 {
        self.num_devices
    }

    /// In-degrees (Algorithm 1's `ref` counts).
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.tasks.len()];
        for kids in &self.children {
            for &k in kids {
                deg[k as usize] += 1;
            }
        }
        deg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_graph::{build_op_graph, GraphOptions};
    use vtrain_model::presets;
    use vtrain_parallel::{ClusterSpec, GpuSpec, ParallelConfig};
    use vtrain_profile::Profiler;

    fn lower_plan(t: usize, d: usize, p: usize) -> TaskGraph {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .global_batch(4 * d)
            .build()
            .unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let table = Profiler::new(GpuSpec::a100_40gb()).profile(&graph.necessary_operators());
        let comm = CommModel::new(&ClusterSpec::aws_p4d(64), 1.0);
        TaskGraph::lower(&graph, &table, &comm).unwrap()
    }

    #[test]
    fn lowering_preserves_structure() {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder()
            .tensor(2)
            .data(2)
            .pipeline(2)
            .global_batch(8)
            .build()
            .unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let tg = lower_plan(2, 2, 2);
        assert_eq!(tg.len(), graph.num_nodes());
        assert_eq!(tg.num_devices(), 2);
        assert!(tg.tasks().iter().all(|t| t.duration > TimeNs::ZERO));
    }

    #[test]
    fn missing_profile_is_an_error() {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder().global_batch(4).build().unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let empty = OperatorTaskTable::new();
        let comm = CommModel::new(&ClusterSpec::aws_p4d(8), 1.0);
        assert_eq!(TaskGraph::lower(&graph, &empty, &comm).unwrap_err(), MissingProfile);
    }

    #[test]
    fn compute_tasks_carry_kernel_counts() {
        let tg = lower_plan(2, 1, 1);
        let max_kernels = tg
            .tasks()
            .iter()
            .filter_map(|t| match t.kind {
                TaskKind::Compute { kernels } => Some(kernels),
                _ => None,
            })
            .max()
            .unwrap();
        // A backward block with recompute aggregates well over 10 kernels.
        assert!(max_kernels >= 10, "max kernels {max_kernels}");
    }
}
