//! The end-to-end estimation pipeline: model + plan + cluster → iteration
//! time, utilization, and breakdown.
//!
//! [`Estimator`] is a staged pipeline with an explicit, individually
//! reusable stage per concern:
//!
//! 1. **validate** — feasibility and memory checks, no allocation
//!    (`O(1)`; this is also the sweep executor's pruning predicate);
//! 2. **lower** — resolve the plan's necessary-operator signatures
//!    against the shared [`ProfileCache`], then fuse graph construction
//!    and task lowering into one streaming pass;
//! 3. **simulate** — the Algorithm 1 replay ([`simulate`]);
//! 4. **summarize** — fold a [`SimReport`] into an [`IterationEstimate`].
//!
//! [`Estimator::estimate`] and [`Estimator::measure`] are thin
//! compositions of the stages. Profiles are memoized in a concurrent
//! cache keyed by `(GpuKey, OpSignature)` shared across clones of the
//! estimator — a design-space sweep profiles each unique signature once,
//! not once per plan (§III-C, §III-F) — and cached results are
//! bit-identical to uncached ones (profiling is deterministic).

use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use vtrain_gpu::NoiseModel;
use vtrain_graph::{
    build_op_graph, plan_shape_key, plan_signatures, CommKind, CommOp, CompKind, GraphOptions, Op,
    OpSignature, PlanShapeKey, StreamKind,
};
use vtrain_model::{ModelConfig, TimeNs};
use vtrain_net::flow::FlowProgram;
use vtrain_net::{NetworkBackend, Topology};
use vtrain_obs::{CounterSample, TimelineRecorder, TraceSpan};
use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule, PlanError};
use vtrain_profile::{CacheStats, CommModel, GpuKey, ProfileCache, Profiler};

use crate::compact::{
    lower_plan_delta, replay_lowered, CompactScratch, LowerOutcome, ProfileSource,
};
use crate::flow_replay::simulate_flows;
use crate::sim::{simulate, simulate_into_traced, BusyBreakdown, SimMode, SimReport, SimScratch};
use crate::task_graph::{TaskGraph, TaskKind};

/// Error produced by [`Estimator::estimate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EstimateError {
    /// The plan is malformed or infeasible on this cluster.
    InvalidPlan(PlanError),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::InvalidPlan(e) => write!(f, "invalid training plan: {e}"),
        }
    }
}

impl std::error::Error for EstimateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimateError::InvalidPlan(e) => Some(e),
        }
    }
}

impl From<PlanError> for EstimateError {
    fn from(e: PlanError) -> Self {
        EstimateError::InvalidPlan(e)
    }
}

/// The simulator's verdict on one `(model, plan)` point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationEstimate {
    /// Single-iteration training time.
    pub iteration_time: TimeNs,
    /// Achieved FLOPS relative to peak across all `t·d·p` GPUs
    /// (the paper's GPU compute utilization, Fig. 1/10).
    pub utilization: f64,
    /// Busy time by category summed over simulated devices.
    pub busy: BusyBreakdown,
    /// Mean compute-stream occupancy (1 − bubble fraction).
    pub occupancy: f64,
    /// GPUs occupied by the plan.
    pub num_gpus: usize,
    /// Tokens consumed per iteration.
    pub tokens_per_iteration: u64,
}

/// Wall-clock nanoseconds attributed to each pipeline stage across one
/// or more estimates — the unit [`Estimator::estimate_staged`] fills and
/// the sweep's `--stage-profile` mode aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageNanos {
    /// Stage 1 — feasibility/memory validation.
    pub validate_ns: u64,
    /// Stage 2 — signature resolution + graph construction + lowering.
    pub lower_ns: u64,
    /// Stage 3 — the Algorithm 1 replay.
    pub simulate_ns: u64,
    /// Stage 4 — folding the report into the estimate.
    pub summarize_ns: u64,
}

impl StageNanos {
    /// Total attributed time across all four stages.
    pub fn total_ns(&self) -> u64 {
        self.validate_ns + self.lower_ns + self.simulate_ns + self.summarize_ns
    }

    /// Accumulates another attribution into this one.
    pub fn merge(&mut self, other: &StageNanos) {
        self.validate_ns += other.validate_ns;
        self.lower_ns += other.lower_ns;
        self.simulate_ns += other.simulate_ns;
        self.summarize_ns += other.summarize_ns;
    }
}

/// A fully-labeled per-stream execution timeline of one predicted
/// iteration — [`Estimator::timeline`]'s result.
#[derive(Debug)]
pub struct IterationTimeline {
    /// The recorded timeline: one track per simulated device (each
    /// pipeline stage's representative GPU), streams 0/1 = compute/comm,
    /// spans labeled with operator kinds and per-tier communication
    /// costs. Export with [`TimelineRecorder::to_chrome_trace`].
    pub recorder: TimelineRecorder,
    /// The replay report the timeline was captured from (bit-identical
    /// to the untraced replay).
    pub report: SimReport,
}

/// The vTrain estimation front-end: a staged `validate → lower →
/// simulate → summarize` pipeline over a shared profile cache.
///
/// Built declaratively with [`Estimator::builder`]; clones share the
/// cache (it sits behind an [`Arc`]), so handing clones to sweep worker
/// threads deduplicates profiling across the whole sweep.
#[derive(Clone, Debug)]
pub struct Estimator {
    cluster: ClusterSpec,
    comm: CommModel,
    graph_opts: GraphOptions,
    profiler: Profiler,
    cache: Arc<ProfileCache>,
    /// The profiler GPU's cache key, derived once per estimator instead
    /// of once per lookup.
    gpu_key: GpuKey,
    /// The §IV bandwidth-effectiveness calibration factor this estimator
    /// was built with (kept so derived estimators — sweeps over the same
    /// platform — can reproduce the configuration).
    alpha: f64,
    /// Ground-truth emulation oracle for [`Estimator::measure`].
    noise: NoiseModel,
}

/// Declarative constructor for [`Estimator`] — one builder instead of a
/// constructor per configuration axis.
///
/// Every axis is optional: the default is the paper's calibrated flat
/// model (`α = 1.0`, fresh profile cache, Equation (1) communication,
/// default measurement noise).
///
/// ```
/// use std::sync::Arc;
/// use vtrain_core::Estimator;
/// use vtrain_parallel::ClusterSpec;
/// use vtrain_profile::ProfileCache;
///
/// let cluster = ClusterSpec::aws_p4d(64);
/// let estimator = Estimator::builder(cluster.clone())
///     .alpha(0.9)
///     .topology(cluster.topology(0.9))
///     .cache(Arc::new(ProfileCache::new()))
///     .build();
/// assert!(estimator.is_topology_aware());
/// ```
#[derive(Clone, Debug)]
pub struct EstimatorBuilder {
    cluster: ClusterSpec,
    /// `None` until [`EstimatorBuilder::alpha`] is called: unset, the
    /// topology's own per-tier αs are used exactly as declared instead
    /// of being silently reset to 1.0.
    alpha: Option<f64>,
    cache: Option<Arc<ProfileCache>>,
    topology: Option<Topology>,
    noise: Option<vtrain_gpu::NoiseConfig>,
    network: Option<NetworkBackend>,
}

impl EstimatorBuilder {
    /// Sets the bandwidth-effectiveness factor `α ∈ (0, 1]` applied to
    /// inter-node communication (paper §IV; default `1.0`, the value
    /// found optimal on the paper's 512-GPU platform).
    ///
    /// With a [`topology`](EstimatorBuilder::topology), an explicit
    /// `alpha` supersedes any per-tier `alpha` set on the topology's
    /// inter-node tiers — it is the one §IV calibration knob, applied
    /// uniformly above the node level (encode per-tier effectiveness
    /// differences in tier bandwidths instead). When *not* called, the
    /// topology's own per-tier `α`s are used exactly as declared.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = Some(alpha);
        self
    }

    /// Shares an existing profile cache instead of creating a fresh one
    /// — e.g. one cache across estimators for several cluster sizes of
    /// the same GPU. Compute profiles are topology-independent, so
    /// estimators for different placements can share a cache soundly.
    pub fn cache(mut self, cache: Arc<ProfileCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Prices collectives on a hierarchical `topology` (which may add a
    /// rack tier via
    /// [`Topology::with_rack_tier`](vtrain_net::Topology::with_rack_tier))
    /// via the `vtrain-net` algorithm library instead of the flat
    /// Equation (1) model.
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Configures the ground-truth emulation effects
    /// [`Estimator::measure`] injects (default
    /// [`NoiseConfig::default`](vtrain_gpu::NoiseConfig), the paper's
    /// §IV error decomposition).
    pub fn noise(mut self, noise: vtrain_gpu::NoiseConfig) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Selects the network-cost regime (default
    /// [`NetworkBackend::ClosedForm`], the paper's per-collective
    /// Equation (1) pricing). Under
    /// [`NetworkBackend::FairSharing`] the Predicted replay runs in
    /// physical time with link-crossing collectives as flows that
    /// max-min share each tier's effective bandwidth, so overlapping
    /// DP/TP/PP communication contends instead of being priced in
    /// isolation.
    pub fn network(mut self, network: NetworkBackend) -> Self {
        self.network = Some(network);
        self
    }

    /// Finalizes the estimator.
    pub fn build(self) -> Estimator {
        let EstimatorBuilder { cluster, alpha, cache, topology, noise, network } = self;
        let cache = cache.unwrap_or_default();
        let (comm, graph_opts) = match topology {
            None => {
                let comm = CommModel::new(&cluster, alpha.unwrap_or(1.0));
                let graph_opts = GraphOptions {
                    gpus_per_node: cluster.gpus_per_node,
                    ..GraphOptions::default()
                };
                (comm, graph_opts)
            }
            Some(topology) => {
                // An explicit α is the §IV supersede; unset, the
                // topology's own per-tier αs are used exactly as
                // declared (so `cluster.topology(0.8)` keeps its 0.8
                // and a heterogeneous rack spine keeps its own value).
                let comm = match alpha {
                    Some(alpha) => CommModel::with_topology(&cluster, alpha, topology.clone()),
                    None => CommModel::with_topology_tiers(&cluster, topology.clone()),
                };
                // Graph placement geometry follows the topology's node
                // shape (falling back to the cluster's for a flat
                // topology's unbounded node).
                let gpus_per_node = if topology.gpus_per_node() == usize::MAX {
                    cluster.gpus_per_node
                } else {
                    topology.gpus_per_node()
                };
                let nodes_per_rack = (topology.num_tiers() == 3).then(|| topology.nodes_per_rack());
                let graph_opts =
                    GraphOptions { gpus_per_node, nodes_per_rack, ..GraphOptions::default() };
                (comm, graph_opts)
            }
        };
        let comm = comm.with_backend(network.unwrap_or_default());
        let profiler = Profiler::new(cluster.gpu.clone());
        let gpu_key = GpuKey::of(&cluster.gpu);
        let noise = NoiseModel::new(noise.unwrap_or_default());
        let alpha = comm.alpha();
        Estimator { cluster, comm, graph_opts, profiler, cache, gpu_key, alpha, noise }
    }
}

/// Reusable per-thread state of the sweep's evaluation hot path: the
/// compact lowering/replay buffers, the report whose vectors are
/// recycled, and this thread's exact share of profile-cache traffic.
///
/// Thread one of these through [`Estimator::estimate_validated_with`] and
/// steady-state evaluation performs no per-point heap allocation.
#[derive(Default)]
pub struct EstimatorScratch {
    compact: CompactScratch,
    report: SimReport,
    /// Profile-cache hits/misses attributable to this scratch's owner.
    cache_stats: CacheStats,
    /// Points lowered from scratch through the graph builder (monotonic).
    delta_fresh: u64,
    /// Points delta-patched from a shape-compatible neighbor (monotonic).
    delta_patched: u64,
}

impl EstimatorScratch {
    /// This scratch's exact profile-cache hit/miss tally (monotonic).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache_stats
    }

    /// `(fresh, patched)` lowering counts of this scratch: how many
    /// points were lowered from scratch vs. delta-patched from a
    /// shape-compatible neighbor's cached graph (monotonic).
    pub fn delta_counts(&self) -> (u64, u64) {
        (self.delta_fresh, self.delta_patched)
    }
}

/// [`ProfileSource`] over the estimator's shared cache: weight updates
/// (near-unique parameter counts) are evaluated closed-form inline;
/// everything else goes through the cache with exact hit/miss
/// attribution into the scratch's local tally.
struct CacheSource<'a> {
    cache: &'a ProfileCache,
    profiler: &'a Profiler,
    gpu_key: &'a GpuKey,
    stats: &'a mut CacheStats,
}

impl ProfileSource for CacheSource<'_> {
    fn op_latency(&mut self, sig: &OpSignature) -> Option<(TimeNs, u32)> {
        if sig.kind == CompKind::WeightUpdate {
            return Some(self.profiler.operator_latency(sig));
        }
        let profile = self.cache.get_with(self.gpu_key, self.profiler, sig, self.stats);
        Some((profile.total(), profile.kernel_count() as u32))
    }
}

impl Estimator {
    /// Starts building an estimator for `cluster` — the one constructor.
    ///
    /// Defaults: `α = 1.0` (the value §IV found optimal on the paper's
    /// 512-GPU platform), a fresh profile cache, the flat Equation (1)
    /// communication model, and the paper's default measurement noise.
    pub fn builder(cluster: ClusterSpec) -> EstimatorBuilder {
        EstimatorBuilder {
            cluster,
            alpha: None,
            cache: None,
            topology: None,
            noise: None,
            network: None,
        }
    }

    /// The network-cost regime this estimator replays communication
    /// under.
    pub fn network(&self) -> NetworkBackend {
        self.comm.backend()
    }

    /// The bandwidth-effectiveness factor this estimator was built with.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The ground-truth emulation oracle [`Estimator::measure`] uses.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The interconnect topology communication is priced against.
    pub fn topology(&self) -> &Topology {
        self.comm.topology()
    }

    /// True if this estimator routes collectives through the
    /// topology-aware algorithm library.
    pub fn is_topology_aware(&self) -> bool {
        self.comm.is_topology_aware()
    }

    /// The cluster being modeled.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The shared profile cache.
    pub fn cache(&self) -> &Arc<ProfileCache> {
        &self.cache
    }

    /// Lifetime hit/miss counters of the shared profile cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// **Stage 1 — validate.** Checks the plan against the model and
    /// cluster (divisibility, NVLink domain, pipeline depth, GPU count,
    /// per-GPU memory). Cheap: no allocation, no profiling — the sweep
    /// executor uses this as its pruning predicate.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InvalidPlan`] with the first violated
    /// constraint.
    pub fn validate(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
    ) -> Result<(), EstimateError> {
        plan.validate(model, &self.cluster)?;
        Ok(())
    }

    /// **Stage 2 — lower.** Resolves the plan's necessary operators
    /// against the shared profile cache (profiling only signatures no
    /// previous query has seen) and streams the execution graph directly
    /// into a lowered [`TaskGraph`].
    ///
    /// Weight updates are the one exception to cache residency: they
    /// decompose to a single fused Adam kernel whose latency is a
    /// closed-form function of the per-stage parameter count, so they are
    /// evaluated inline — per-stage parameter counts are nearly unique
    /// across `(t, p)` and would dilute the cache with unshareable
    /// entries.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid for the model (run
    /// [`Estimator::validate`] first).
    pub fn lower(&self, model: &ModelConfig, plan: &ParallelConfig) -> TaskGraph {
        let sigs = plan_signatures(model, plan, &self.graph_opts);
        let mut profiles = self
            .cache
            .resolve(&self.profiler, sigs.iter().filter(|s| s.kind != CompKind::WeightUpdate));
        for sig in sigs.iter().filter(|s| s.kind == CompKind::WeightUpdate) {
            profiles.insert(*sig, Arc::new(self.profiler.profile_operator(sig)));
        }
        TaskGraph::lower_fused(model, plan, &self.graph_opts, &profiles, &self.comm)
            .expect("plan_signatures covers all emitted operators")
    }

    /// [`Estimator::lower`] plus the per-task flow programs the
    /// fair-sharing replay consumes: `programs[i]` is `Some` exactly for
    /// the link-crossing communication tasks (the fused lowering emits
    /// one task per operator-graph node in node order, so task id ==
    /// node index).
    fn lower_with_programs(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
    ) -> (TaskGraph, Vec<Option<FlowProgram>>) {
        let graph = build_op_graph(model, plan, &self.graph_opts);
        let tg = self.lower(model, plan);
        assert_eq!(tg.len(), graph.num_nodes(), "lowering preserves node count and order");
        let programs = graph
            .nodes()
            .iter()
            .map(|node| match &node.op {
                Op::Comm(c) => self.comm.flow_program(c),
                Op::Compute(_) => None,
            })
            .collect();
        (tg, programs)
    }

    /// **Stage 3 — simulate.** Replays a lowered task graph (Algorithm 1).
    pub fn simulate(&self, task_graph: &TaskGraph, mode: SimMode<'_>) -> SimReport {
        simulate(task_graph, mode)
    }

    /// **Stage 4 — summarize.** Folds a replay report into the
    /// user-facing estimate (utilization, occupancy, token accounting).
    pub fn summarize(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
        report: &SimReport,
    ) -> IterationEstimate {
        let flops = model.flops_per_iteration(plan.global_batch(), self.graph_opts.recompute);
        let peak = self.cluster.gpu.peak_fp16_flops * plan.num_gpus() as f64;
        let utilization = (flops.as_f64() / (peak * report.iteration_time.as_secs_f64())).min(1.0);
        IterationEstimate {
            iteration_time: report.iteration_time,
            utilization,
            occupancy: report.mean_device_occupancy(),
            busy: report.busy,
            num_gpus: plan.num_gpus(),
            tokens_per_iteration: model.tokens_per_iteration(plan.global_batch()),
        }
    }

    /// vTrain's prediction for one design point: `validate → lower →
    /// simulate → summarize`.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InvalidPlan`] if the plan fails
    /// [`ParallelConfig::validate`] against the model and cluster.
    pub fn estimate(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
    ) -> Result<IterationEstimate, EstimateError> {
        self.validate(model, plan)?;
        Ok(self.estimate_validated(model, plan))
    }

    /// [`Estimator::estimate`] without re-running stage 1 — for callers
    /// (the sweep executor) that have already validated the plan.
    pub(crate) fn estimate_validated(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
    ) -> IterationEstimate {
        if self.network() == NetworkBackend::FairSharing {
            let (tg, programs) = self.lower_with_programs(model, plan);
            let report = simulate_flows(&tg, &programs, self.topology(), None, None);
            return self.summarize(model, plan, &report);
        }
        let tg = self.lower(model, plan);
        let report = self.simulate(&tg, SimMode::Predicted);
        self.summarize(model, plan, &report)
    }

    /// The sweep's allocation-free hot path: lowers `(model, plan)`
    /// straight into the scratch's aggregated replay graph and replays it
    /// in Predicted mode, reusing every buffer point to point. The result
    /// is bit-identical to [`Estimator::estimate`] (equivalence proven by
    /// the compact-replay property tests and the sweep golden tests); the
    /// plan must already be validated.
    ///
    /// # Panics
    ///
    /// Panics if the plan is invalid for the model (run
    /// [`Estimator::validate`] first).
    pub fn estimate_validated_with(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
        scratch: &mut EstimatorScratch,
    ) -> IterationEstimate {
        self.estimate_validated_delta(model, plan, scratch, true, 1, None)
    }

    /// The full-control compact hot path: [`Estimator::estimate_validated_with`]
    /// plus the delta-lowering switch, the two-level replay shard count,
    /// and optional per-stage wall-clock attribution (timed *inside* the
    /// fused pipeline, so the delta path's lower/simulate split is
    /// observable). The estimate is bit-identical across every knob
    /// combination — delta patches and shard splits are exact
    /// re-pricings, proven by the compact A/B property tests.
    pub(crate) fn estimate_validated_delta(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
        scratch: &mut EstimatorScratch,
        delta: bool,
        shards: usize,
        stages: Option<&mut StageNanos>,
    ) -> IterationEstimate {
        if self.network() == NetworkBackend::FairSharing {
            // The compact/delta hot path prices each comm task in
            // isolation — exactly the assumption fair sharing drops — so
            // every fair-sharing point takes the full lowering + physical
            // replay. This also keeps the ClosedForm compact path (and
            // with it the sweep's winners) byte-identical to before the
            // backend existed.
            let estimate = match stages {
                None => self.estimate_validated(model, plan),
                Some(stages) => self.estimate_validated_staged(model, plan, stages),
            };
            scratch.delta_fresh += 1;
            return estimate;
        }
        let EstimatorScratch { compact, report, cache_stats, delta_fresh, delta_patched } = scratch;
        let mut source = CacheSource {
            cache: &self.cache,
            profiler: &self.profiler,
            gpu_key: &self.gpu_key,
            stats: cache_stats,
        };
        let outcome;
        let estimate = match stages {
            None => {
                outcome = lower_plan_delta(
                    model,
                    plan,
                    &self.graph_opts,
                    &mut source,
                    &self.comm,
                    compact,
                    delta,
                    shards,
                )
                .expect("estimator profile source resolves every signature");
                replay_lowered(compact, plan.pipeline(), report);
                self.summarize(model, plan, report)
            }
            Some(stages) => {
                let t0 = Instant::now();
                outcome = lower_plan_delta(
                    model,
                    plan,
                    &self.graph_opts,
                    &mut source,
                    &self.comm,
                    compact,
                    delta,
                    shards,
                )
                .expect("estimator profile source resolves every signature");
                let t1 = Instant::now();
                replay_lowered(compact, plan.pipeline(), report);
                let t2 = Instant::now();
                let estimate = self.summarize(model, plan, report);
                let t3 = Instant::now();
                stages.lower_ns += (t1 - t0).as_nanos() as u64;
                stages.simulate_ns += (t2 - t1).as_nanos() as u64;
                stages.summarize_ns += (t3 - t2).as_nanos() as u64;
                estimate
            }
        };
        match outcome {
            LowerOutcome::Fresh => *delta_fresh += 1,
            LowerOutcome::Patched => *delta_patched += 1,
        }
        estimate
    }

    /// The structural shape key of `(model, plan)` under this
    /// estimator's graph options: equal keys guarantee identical compact
    /// graph structure, licensing a delta patch between the two plans.
    /// The sweep executor groups candidates by this key so
    /// shape-compatible neighbors are visited back to back.
    pub(crate) fn shape_key(&self, model: &ModelConfig, plan: &ParallelConfig) -> PlanShapeKey {
        plan_shape_key(model, plan, &self.graph_opts)
    }

    /// An admissible analytic lower bound on the plan's Predicted
    /// iteration time, computed without lowering — see
    /// [`bounds`](crate::bounds) for the construction. Bound-guided sweep
    /// goals use this to skip points that provably lose to an incumbent.
    ///
    /// # Panics
    ///
    /// Same preconditions as [`Estimator::lower`]: the plan must be valid
    /// for the model.
    pub fn lower_bound(&self, model: &ModelConfig, plan: &ParallelConfig) -> TimeNs {
        crate::bounds::iteration_floor(model, plan, &self.graph_opts, &self.cluster.gpu, &self.comm)
    }

    /// Ground-truth emulated "measurement" of the same design point — the
    /// stand-in for the real training runs of the paper's validation
    /// (Fig. 9, Table II). Same staged composition with the noise-model
    /// replay plus a configuration-level iteration bias.
    ///
    /// Uses the noise the estimator was
    /// [built with](EstimatorBuilder::noise) (the paper's §IV error
    /// decomposition by default); [`Estimator::measure_with`] accepts an
    /// explicit oracle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::estimate`].
    pub fn measure(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
    ) -> Result<IterationEstimate, EstimateError> {
        self.measure_with(model, plan, &self.noise)
    }

    /// [`Estimator::measure`] under an explicit noise oracle.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::estimate`].
    pub fn measure_with(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
        noise: &NoiseModel,
    ) -> Result<IterationEstimate, EstimateError> {
        self.validate(model, plan)?;
        let tg = self.lower(model, plan);
        let nodes = plan.num_gpus().div_ceil(self.cluster.gpus_per_node);
        let mut report = self.simulate(&tg, SimMode::Measured { noise, nodes });
        // Configuration-level runtime bias a kernel replay cannot see
        // (framework effects); keyed deterministically on the config via a
        // toolchain-stable hash.
        let key = stable_config_key(model, plan);
        report.iteration_time = report.iteration_time.scale(noise.iteration_bias(key, nodes));
        Ok(self.summarize(model, plan, &report))
    }

    /// [`Estimator::estimate`] with wall-clock stage attribution: each of
    /// the four pipeline stages is timed individually and accumulated
    /// into `stages`. The estimate itself is bit-identical to
    /// [`Estimator::estimate`] — only the composition is unrolled.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::estimate`].
    pub fn estimate_staged(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
        stages: &mut StageNanos,
    ) -> Result<IterationEstimate, EstimateError> {
        let t0 = Instant::now();
        self.validate(model, plan)?;
        stages.validate_ns += t0.elapsed().as_nanos() as u64;
        Ok(self.estimate_validated_staged(model, plan, stages))
    }

    /// The staged estimate for pre-validated plans (the sweep's
    /// `--stage-profile` path): `lower`, `simulate`, and `summarize` are
    /// timed individually. Runs the unfused staged pipeline, whose result
    /// is bit-identical to the compact hot path (pinned by the compact
    /// equivalence tests) — stage profiling trades speed for attribution.
    pub(crate) fn estimate_validated_staged(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
        stages: &mut StageNanos,
    ) -> IterationEstimate {
        if self.network() == NetworkBackend::FairSharing {
            let t0 = Instant::now();
            let (tg, programs) = self.lower_with_programs(model, plan);
            let t1 = Instant::now();
            let report = simulate_flows(&tg, &programs, self.topology(), None, None);
            let t2 = Instant::now();
            let estimate = self.summarize(model, plan, &report);
            let t3 = Instant::now();
            stages.lower_ns += (t1 - t0).as_nanos() as u64;
            stages.simulate_ns += (t2 - t1).as_nanos() as u64;
            stages.summarize_ns += (t3 - t2).as_nanos() as u64;
            return estimate;
        }
        let t0 = Instant::now();
        let tg = self.lower(model, plan);
        let t1 = Instant::now();
        let report = self.simulate(&tg, SimMode::Predicted);
        let t2 = Instant::now();
        let estimate = self.summarize(model, plan, &report);
        drop(report);
        let t3 = Instant::now();
        drop(tg);
        let t4 = Instant::now();
        // Teardown is attributed to the stage that allocated: the task
        // graph to `lower`, the report to `summarize` — otherwise per-
        // point deallocation (µs-scale) leaks out of the attribution.
        stages.lower_ns += ((t1 - t0) + (t4 - t3)).as_nanos() as u64;
        stages.simulate_ns += (t2 - t1).as_nanos() as u64;
        stages.summarize_ns += (t3 - t2).as_nanos() as u64;
        estimate
    }

    /// Captures a fully-labeled per-stream execution timeline of one
    /// predicted iteration: the traced Algorithm 1 replay joined back to
    /// the operator graph for names, with per-tier communication costs
    /// from the estimator's [`CommModel`] attached as span args.
    ///
    /// The returned recorder has one track per simulated device (each
    /// pipeline stage's representative GPU) with `compute`/`comm` stream
    /// lanes; the report is bit-identical to [`Estimator::estimate`]'s
    /// underlying replay, and the latest span end equals
    /// `report.iteration_time` exactly.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::estimate`].
    pub fn timeline(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
    ) -> Result<IterationTimeline, EstimateError> {
        self.validate(model, plan)?;
        // Materialize the operator graph once, purely for labels: the
        // fused lowering emits exactly one task per node in node order
        // (pinned by the lowering equivalence tests), so task id == node
        // index and the join is an array lookup.
        let graph = build_op_graph(model, plan, &self.graph_opts);
        let tg = self.lower(model, plan);
        assert_eq!(tg.len(), graph.num_nodes(), "lowering preserves node count and order");

        let mut recorder = TimelineRecorder::new();
        for dev in 0..u64::from(tg.num_devices()) {
            recorder.set_track_name(dev, format!("stage {dev} rank group"));
            recorder.set_stream_name(dev, 0, "compute");
            recorder.set_stream_name(dev, 1, "comm");
        }

        let nodes = graph.nodes();
        let kinds = tg.kinds();
        let mut report = SimReport::default();
        let mut record = |id: u32, start: TimeNs, finish: TimeNs| {
            let node = &nodes[id as usize];
            let tid = match node.stream {
                StreamKind::Compute => 0,
                StreamKind::Comm => 1,
            };
            let (name, cat, args) = match &node.op {
                Op::Compute(c) => {
                    let kernels = match kinds[id as usize] {
                        TaskKind::Compute { kernels } => u64::from(kernels),
                        TaskKind::Comm { .. } => 0,
                    };
                    let (name, cat) = compute_label(c.sig.kind);
                    (name, cat, vec![("kernels".to_owned(), kernels)])
                }
                Op::Comm(c) => comm_label(c, &self.comm),
            };
            recorder.record(TraceSpan {
                pid: u64::from(node.device),
                tid,
                name: name.to_owned(),
                cat: cat.to_owned(),
                start_ns: start.as_nanos(),
                dur_ns: (finish - start).as_nanos(),
                args,
            });
        };
        if self.network() == NetworkBackend::FairSharing {
            let programs: Vec<Option<FlowProgram>> = nodes
                .iter()
                .map(|node| match &node.op {
                    Op::Comm(c) => self.comm.flow_program(c),
                    Op::Compute(_) => None,
                })
                .collect();
            // Counter samples are buffered and attached after the replay:
            // the span-recording closure holds the recorder borrow.
            let mut samples: Vec<(TimeNs, Vec<f64>)> = Vec::new();
            let mut net_trace = |t: TimeNs, util: &[f64]| samples.push((t, util.to_vec()));
            report = simulate_flows(
                &tg,
                &programs,
                self.topology(),
                Some(&mut record),
                Some(&mut net_trace),
            );
            for (t, util) in samples {
                recorder.record_counter(CounterSample {
                    pid: 0,
                    name: "net.link_utilization".to_owned(),
                    ts_ns: t.as_nanos(),
                    values: util
                        .iter()
                        .enumerate()
                        .map(|(tier, u)| (format!("tier{tier}_pct"), (u * 100.0).round() as u64))
                        .collect(),
                });
            }
            return Ok(IterationTimeline { recorder, report });
        }
        simulate_into_traced(
            &tg,
            SimMode::Predicted,
            &mut SimScratch::default(),
            &mut report,
            &mut record,
        );
        Ok(IterationTimeline { recorder, report })
    }
}

/// `(name, category)` of a compute span.
fn compute_label(kind: CompKind) -> (&'static str, &'static str) {
    match kind {
        CompKind::EmbeddingFwd => ("EmbeddingFwd", "Fwd"),
        CompKind::MhaFwd => ("MhaFwd", "Fwd"),
        CompKind::FfnFwd => ("FfnFwd", "Fwd"),
        CompKind::LmHeadFwd => ("LmHeadFwd", "Fwd"),
        CompKind::EmbeddingBwd => ("EmbeddingBwd", "Bwd"),
        CompKind::MhaBwd => ("MhaBwd", "Bwd"),
        CompKind::FfnBwd => ("FfnBwd", "Bwd"),
        CompKind::LmHeadBwd => ("LmHeadBwd", "Bwd"),
        CompKind::WeightUpdate => ("WeightUpdate", "WeightUpdate"),
    }
}

/// `(name, category, args)` of a communication span: payload geometry
/// plus the comm model's per-tier cost attribution ([`CostBreakdown`]
/// phases summed by tier).
fn comm_label(op: &CommOp, comm: &CommModel) -> (&'static str, &'static str, Vec<(String, u64)>) {
    let name = match op.kind {
        CommKind::TpAllReduce => "TpAllReduce",
        CommKind::DpAllReduce => "DpAllReduce",
        CommKind::PpSendRecv => "PpSendRecv",
    };
    let mut args =
        vec![("bytes".to_owned(), op.bytes.as_u64()), ("ranks".to_owned(), op.ranks as u64)];
    let breakdown = comm.breakdown(op);
    let mut tiers: Vec<(usize, u64)> = Vec::new();
    for phase in &breakdown.phases {
        match tiers.iter_mut().find(|(t, _)| *t == phase.tier) {
            Some((_, ns)) => *ns += phase.time.as_nanos(),
            None => tiers.push((phase.tier, phase.time.as_nanos())),
        }
    }
    tiers.sort_by_key(|&(t, _)| t);
    for (tier, ns) in tiers {
        args.push((format!("tier{tier}_ns"), ns));
    }
    (name, "Comm", args)
}

/// FNV-1a accumulator for the measured-mode configuration key.
///
/// `std::collections::hash_map::DefaultHasher` makes no cross-release
/// stability promise, and "measured" runs must reproduce across
/// toolchains, so the key is an explicit FNV-1a over an explicit field
/// serialization (see [`stable_config_key`]).
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv1a(Self::OFFSET_BASIS)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// Toolchain-stable 64-bit identity of a `(model, plan)` configuration.
///
/// Every field is serialized explicitly (name bytes length-prefixed,
/// numerics as little-endian `u64`), so the value depends only on this
/// function — never on `#[derive(Hash)]` layout or the standard hasher.
///
/// Maintenance note: unlike the `#[derive(Hash)]` it replaced, this list
/// does NOT extend itself when `ModelConfig` or `ParallelConfig` grow a
/// field — add new fields here (and to
/// `stable_config_key_separates_configurations`) or two configurations
/// differing only in the new field will share a measured-mode bias.
fn stable_config_key(model: &ModelConfig, plan: &ParallelConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(model.name().len() as u64);
    h.write_bytes(model.name().as_bytes());
    for dim in [
        model.hidden_size(),
        model.num_layers(),
        model.seq_len(),
        model.num_heads(),
        model.vocab_size(),
        model.ffn_expansion(),
    ] {
        h.write_u64(dim as u64);
    }
    for dim in
        [plan.tensor(), plan.data(), plan.pipeline(), plan.micro_batch(), plan.global_batch()]
    {
        h.write_u64(dim as u64);
    }
    h.write_u64(match plan.schedule() {
        PipelineSchedule::GPipe => 0,
        PipelineSchedule::OneFOneB => 1,
    });
    h.write_u64(u64::from(plan.gradient_bucketing()));
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_gpu::NoiseConfig;
    use vtrain_model::presets;

    fn plan(t: usize, d: usize, p: usize, m: usize, b: usize) -> ParallelConfig {
        ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(m)
            .global_batch(b)
            .build()
            .unwrap()
    }

    #[test]
    fn estimate_rejects_invalid_plans() {
        let est = Estimator::builder(ClusterSpec::aws_p4d(8)).build();
        let err = est.estimate(&presets::megatron("1.7B"), &plan(16, 1, 1, 1, 8)).unwrap_err();
        assert!(matches!(err, EstimateError::InvalidPlan(_)));
        assert!(err.to_string().contains("invalid training plan"));
    }

    #[test]
    fn utilization_in_plausible_band() {
        // A reasonable plan for 18.4B on 64 GPUs should land in the
        // 25–60 % utilization band the paper reports for A100 systems.
        let est = Estimator::builder(ClusterSpec::aws_p4d(64)).build();
        let e = est.estimate(&presets::megatron("18.4B"), &plan(8, 8, 1, 2, 128)).unwrap();
        assert!(e.utilization > 0.25 && e.utilization < 0.65, "utilization {:.3}", e.utilization);
    }

    #[test]
    fn tensor_parallel_beats_single_gpu_latency() {
        let est = Estimator::builder(ClusterSpec::aws_p4d(8)).build();
        let model = presets::megatron("1.7B");
        let t1 = est.estimate(&model, &plan(1, 1, 1, 1, 8)).unwrap();
        let t8 = est.estimate(&model, &plan(8, 1, 1, 1, 8)).unwrap();
        assert!(t8.iteration_time < t1.iteration_time);
        // ... at lower utilization (All-Reduce overhead + smaller GEMMs).
        assert!(t8.utilization < t1.utilization);
    }

    #[test]
    fn measured_is_slower_on_average_and_close() {
        // Any single configuration's iteration-level bias may scatter
        // below 1 (the paper's Fig. 9 points sit on both sides of the
        // diagonal), so assert the ensemble behaviour: each ratio stays in
        // a sane envelope and the mean shows the systematic slow-down.
        let est = Estimator::builder(ClusterSpec::aws_p4d(16)).build();
        let model = presets::megatron("1.7B");
        let noise = NoiseModel::new(NoiseConfig::default());
        let plans =
            [plan(4, 2, 2, 1, 8), plan(2, 2, 2, 1, 8), plan(2, 4, 2, 1, 8), plan(8, 2, 1, 1, 8)];
        let mut ratios = Vec::new();
        for p in &plans {
            let predicted = est.estimate(&model, p).unwrap();
            let measured = est.measure_with(&model, p, &noise).unwrap();
            let ratio =
                measured.iteration_time.as_secs_f64() / predicted.iteration_time.as_secs_f64();
            assert!(ratio > 0.8 && ratio < 1.7, "measured/predicted ratio {ratio} for {p}");
            ratios.push(ratio);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean > 1.0, "mean measured/predicted ratio {mean:.3} should exceed 1");
    }

    #[test]
    fn data_parallel_scales_throughput() {
        let est = Estimator::builder(ClusterSpec::aws_p4d(64)).build();
        let model = presets::megatron("1.7B");
        // Same per-replica work, 8× replicas consume 8× tokens per
        // iteration in comparable time.
        let one = est.estimate(&model, &plan(2, 1, 1, 2, 16)).unwrap();
        let eight = est.estimate(&model, &plan(2, 8, 1, 2, 128)).unwrap();
        let slowdown = eight.iteration_time.as_secs_f64() / one.iteration_time.as_secs_f64();
        assert!(slowdown < 1.4, "DP iteration slowdown {slowdown}");
        assert_eq!(eight.tokens_per_iteration, 8 * one.tokens_per_iteration);
    }

    #[test]
    fn staged_pipeline_composes_to_estimate() {
        // Running the stages by hand must equal the composed call.
        let est = Estimator::builder(ClusterSpec::aws_p4d(16)).build();
        let model = presets::megatron("1.7B");
        let p = plan(2, 2, 2, 1, 8);
        est.validate(&model, &p).unwrap();
        let tg = est.lower(&model, &p);
        let report = est.simulate(&tg, SimMode::Predicted);
        let staged = est.summarize(&model, &p, &report);
        let composed = est.estimate(&model, &p).unwrap();
        assert_eq!(staged.iteration_time, composed.iteration_time);
        assert_eq!(staged.busy, composed.busy);
        assert_eq!(staged.num_gpus, composed.num_gpus);
    }

    #[test]
    fn repeated_estimates_hit_the_cache_and_agree_exactly() {
        let est = Estimator::builder(ClusterSpec::aws_p4d(16)).build();
        let model = presets::megatron("1.7B");
        let p = plan(2, 2, 2, 1, 8);
        let cold = est.estimate(&model, &p).unwrap();
        let cold_stats = est.cache_stats();
        assert_eq!(cold_stats.hits, 0, "first query profiles everything");
        let warm = est.estimate(&model, &p).unwrap();
        let warm_stats = est.cache_stats();
        assert_eq!(warm_stats.misses, cold_stats.misses, "second query profiles nothing");
        assert!(warm_stats.hits >= cold_stats.misses);
        assert_eq!(cold.iteration_time, warm.iteration_time);
        assert_eq!(cold.busy, warm.busy);
        assert_eq!(cold.utilization.to_bits(), warm.utilization.to_bits());
        assert_eq!(cold.occupancy.to_bits(), warm.occupancy.to_bits());
    }

    #[test]
    fn clones_share_one_cache() {
        let est = Estimator::builder(ClusterSpec::aws_p4d(16)).build();
        let clone = est.clone();
        let model = presets::megatron("1.7B");
        let p = plan(2, 2, 2, 1, 8);
        est.estimate(&model, &p).unwrap();
        let misses_before = clone.cache_stats().misses;
        clone.estimate(&model, &p).unwrap();
        assert_eq!(clone.cache_stats().misses, misses_before, "clone reuses shared profiles");
    }

    #[test]
    fn unset_alpha_inherits_the_topology_tier_alpha() {
        // `.topology(cluster.topology(0.8))` without `.alpha(..)` must
        // keep the declared 0.8, not silently reset tiers to 1.0.
        let cluster = ClusterSpec::aws_p4d(32);
        let inherited = Estimator::builder(cluster.clone()).topology(cluster.topology(0.8)).build();
        assert_eq!(inherited.alpha(), 0.8);
        assert_eq!(inherited.topology().tier(1).alpha, 0.8);
        let explicit =
            Estimator::builder(cluster.clone()).alpha(0.8).topology(cluster.topology(0.8)).build();
        let model = presets::megatron("1.7B");
        let p = plan(2, 8, 1, 1, 16);
        let a = inherited.estimate(&model, &p).unwrap();
        let b = explicit.estimate(&model, &p).unwrap();
        assert_eq!(a.iteration_time, b.iteration_time);
        // An explicit α still supersedes the tiers, as documented.
        let overridden =
            Estimator::builder(cluster.clone()).alpha(1.0).topology(cluster.topology(0.8)).build();
        assert_eq!(overridden.topology().tier(1).alpha, 1.0);
        // Heterogeneous tiers survive too: a rack spine declared at
        // α = 0.5 keeps its own value when no explicit α is set.
        let spine = vtrain_net::TierSpec::new(25e9, TimeNs::from_micros(35), 0.5);
        let racked = Estimator::builder(cluster.clone())
            .topology(cluster.topology(0.8).with_rack_tier(2, spine))
            .build();
        assert_eq!(racked.topology().tier(1).alpha, 0.8);
        assert_eq!(racked.topology().tier(2).alpha, 0.5);
    }

    #[test]
    fn topology_estimator_agrees_with_flat_on_spread_groups() {
        // t = 8 fills each node, so every DP group has one rank per node:
        // the selector degenerates to the flat ring and the topology-aware
        // estimate must be bit-identical to the legacy model.
        let cluster = ClusterSpec::aws_p4d(64);
        let flat = Estimator::builder(cluster.clone()).build();
        let aware = Estimator::builder(cluster.clone()).topology(cluster.topology(1.0)).build();
        assert!(aware.is_topology_aware() && !flat.is_topology_aware());
        let model = presets::megatron("18.4B");
        let p = plan(8, 8, 1, 2, 128);
        let a = flat.estimate(&model, &p).unwrap();
        let b = aware.estimate(&model, &p).unwrap();
        assert_eq!(a.iteration_time, b.iteration_time);
        assert_eq!(a.busy, b.busy);
        assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
    }

    #[test]
    fn topology_estimator_speeds_up_node_packed_gradients() {
        // t = 2 leaves 4 DP ranks per node: hierarchical gradient
        // All-Reduce sends only S/4 over InfiniBand, so the topology-aware
        // estimate must be at least as fast as the flat Equation (1).
        let cluster = ClusterSpec::aws_p4d(32);
        let flat = Estimator::builder(cluster.clone()).build();
        let aware = Estimator::builder(cluster.clone()).topology(cluster.topology(1.0)).build();
        let model = presets::megatron("1.7B");
        let p = plan(2, 16, 1, 1, 16);
        let a = flat.estimate(&model, &p).unwrap();
        let b = aware.estimate(&model, &p).unwrap();
        assert!(
            b.iteration_time <= a.iteration_time,
            "topology-aware {} vs flat {}",
            b.iteration_time,
            a.iteration_time
        );
    }

    #[test]
    fn rack_tier_slows_cross_rack_placements() {
        // Same plan, same cluster; adding a rack tier with a slower spine
        // can only lengthen communication.
        let cluster = ClusterSpec::aws_p4d(64);
        let two_tier = Estimator::builder(cluster.clone()).topology(cluster.topology(1.0)).build();
        let spine = vtrain_net::TierSpec::new(25e9, TimeNs::from_micros(35), 1.0);
        let racked = Estimator::builder(cluster.clone())
            .topology(cluster.topology(1.0).with_rack_tier(2, spine))
            .build();
        assert_eq!(racked.topology().num_tiers(), 3);
        let model = presets::megatron("1.7B");
        let p = plan(2, 16, 2, 1, 16); // 64 GPUs: spans all 4 racks of 16.
        let fast = two_tier.estimate(&model, &p).unwrap();
        let slow = racked.estimate(&model, &p).unwrap();
        assert!(
            slow.iteration_time >= fast.iteration_time,
            "racked {} vs two-tier {}",
            slow.iteration_time,
            fast.iteration_time
        );
    }

    #[test]
    fn fair_sharing_defaults_off_and_is_selectable() {
        let cluster = ClusterSpec::aws_p4d(8);
        let est = Estimator::builder(cluster.clone()).build();
        assert_eq!(est.network(), NetworkBackend::ClosedForm);
        let est = Estimator::builder(cluster).network(NetworkBackend::FairSharing).build();
        assert_eq!(est.network(), NetworkBackend::FairSharing);
    }

    #[test]
    fn fair_sharing_solo_flows_match_closed_form_exactly() {
        // p = 1 → one simulated device → the comm stream serialises its
        // transfers, so every flow drains alone. A solo drain is
        // bit-identical to the closed-form cost, and therefore so is the
        // whole iteration.
        let cluster = ClusterSpec::aws_p4d(16);
        let model = presets::megatron("1.7B");
        let p = plan(8, 2, 1, 1, 8);
        let closed = Estimator::builder(cluster.clone()).build().estimate(&model, &p).unwrap();
        let fair = Estimator::builder(cluster)
            .network(NetworkBackend::FairSharing)
            .build()
            .estimate(&model, &p)
            .unwrap();
        assert_eq!(closed.iteration_time, fair.iteration_time);
        assert_eq!(closed.busy, fair.busy);
        assert_eq!(closed.utilization.to_bits(), fair.utilization.to_bits());
    }

    #[test]
    fn fair_sharing_intra_node_plans_are_untouched() {
        // All communication on one node rides NVLink; nothing becomes a
        // flow, so the physical-time replay coincides with Algorithm 1.
        let cluster = ClusterSpec::aws_p4d(8);
        let model = presets::megatron("1.7B");
        let p = plan(8, 1, 1, 1, 8);
        let closed = Estimator::builder(cluster.clone()).build().estimate(&model, &p).unwrap();
        let fair = Estimator::builder(cluster)
            .network(NetworkBackend::FairSharing)
            .build()
            .estimate(&model, &p)
            .unwrap();
        assert_eq!(closed.iteration_time, fair.iteration_time);
        assert_eq!(closed.busy, fair.busy);
    }

    #[test]
    fn fair_sharing_contention_lengthens_overlapping_communication() {
        // p = 4 keeps several pipeline boundaries' inter-node transfers
        // and the stages' gradient All-Reduces in flight at once on the
        // shared inter-node tier. Under fair sharing the overlapping
        // transfers split the link, so the iteration must come out
        // strictly longer than the closed form, which prices every
        // transfer against the full link.
        let cluster = ClusterSpec::aws_p4d(32);
        let model = presets::megatron("1.7B");
        let p = plan(2, 4, 4, 1, 32);
        let closed = Estimator::builder(cluster.clone()).build().estimate(&model, &p).unwrap();
        let fair = Estimator::builder(cluster)
            .network(NetworkBackend::FairSharing)
            .build()
            .estimate(&model, &p)
            .unwrap();
        assert!(
            fair.iteration_time > closed.iteration_time,
            "fair sharing {} should exceed closed form {}",
            fair.iteration_time,
            closed.iteration_time
        );
    }

    #[test]
    fn fair_sharing_compact_path_delegates_to_the_full_replay() {
        // The sweep hot path has no fair-sharing fast lane: it must fall
        // back to the full lowering + physical replay and agree exactly.
        let cluster = ClusterSpec::aws_p4d(32);
        let model = presets::megatron("1.7B");
        let p = plan(2, 8, 2, 1, 16);
        let est = Estimator::builder(cluster).network(NetworkBackend::FairSharing).build();
        let composed = est.estimate(&model, &p).unwrap();
        let mut scratch = EstimatorScratch::default();
        let compact = est.estimate_validated_with(&model, &p, &mut scratch);
        assert_eq!(composed.iteration_time, compact.iteration_time);
        assert_eq!(composed.busy, compact.busy);
        assert_eq!(scratch.delta_counts(), (1, 0), "fair sharing always lowers fresh");
        let mut stages = StageNanos::default();
        let staged = est.estimate_staged(&model, &p, &mut stages).unwrap();
        assert_eq!(composed.iteration_time, staged.iteration_time);
        assert!(stages.simulate_ns > 0);
    }

    #[test]
    fn fair_sharing_timeline_carries_link_utilization_counters() {
        let cluster = ClusterSpec::aws_p4d(32);
        let model = presets::megatron("1.7B");
        let p = plan(2, 8, 2, 1, 16);
        let est = Estimator::builder(cluster.clone()).network(NetworkBackend::FairSharing).build();
        let timeline = est.timeline(&model, &p).unwrap();
        let estimate = est.estimate(&model, &p).unwrap();
        assert_eq!(
            timeline.recorder.max_end_ns(),
            estimate.iteration_time.as_nanos(),
            "traced replay is bit-identical to the untraced one"
        );
        assert_eq!(timeline.report.iteration_time, estimate.iteration_time);
        let counters = timeline.recorder.counters();
        assert!(!counters.is_empty(), "refills should leave utilization samples");
        assert!(counters.iter().all(|c| c.name == "net.link_utilization"));
        assert!(
            counters
                .iter()
                .flat_map(|c| &c.values)
                .any(|(series, pct)| series == "tier1_pct" && *pct > 0),
            "the inter-node tier should see traffic"
        );
        let json = timeline.recorder.to_chrome_trace();
        assert!(json.contains("\"ph\":\"C\""), "counters export as Chrome counter events");
    }

    #[test]
    fn stable_config_key_is_pinned() {
        // Regression pin: the measured-mode bias key must be identical
        // across Rust releases and platforms. If this value ever changes,
        // "measured" runs stop being reproducible — do not update the
        // constant without understanding why it moved.
        let model = presets::megatron("1.7B");
        let p = plan(4, 2, 2, 1, 8);
        assert_eq!(stable_config_key(&model, &p), 0x1b33_83be_ce30_35d7);
    }

    #[test]
    fn stable_config_key_separates_configurations() {
        // Every hashed field must flip the key on its own (keep this list
        // in sync with `stable_config_key`).
        let model = presets::megatron("1.7B");
        let base = stable_config_key(&model, &plan(4, 2, 2, 1, 8));
        // Plan fields.
        assert_ne!(base, stable_config_key(&model, &plan(2, 4, 2, 1, 8)), "tensor/data");
        assert_ne!(base, stable_config_key(&model, &plan(4, 2, 1, 1, 8)), "pipeline");
        assert_ne!(base, stable_config_key(&model, &plan(4, 2, 2, 2, 8)), "micro_batch");
        assert_ne!(base, stable_config_key(&model, &plan(4, 2, 2, 1, 16)), "global_batch");
        let gpipe = ParallelConfig::builder()
            .tensor(4)
            .data(2)
            .pipeline(2)
            .micro_batch(1)
            .global_batch(8)
            .schedule(PipelineSchedule::GPipe)
            .build()
            .unwrap();
        assert_ne!(base, stable_config_key(&model, &gpipe), "schedule");
        let unbucketed = ParallelConfig::builder()
            .tensor(4)
            .data(2)
            .pipeline(2)
            .micro_batch(1)
            .global_batch(8)
            .gradient_bucketing(false)
            .build()
            .unwrap();
        assert_ne!(base, stable_config_key(&model, &unbucketed), "bucketing");
        // Model fields: a different preset flips the numeric dims; a pure
        // rename flips only the name bytes.
        assert_ne!(base, stable_config_key(&presets::megatron("18.4B"), &plan(4, 2, 2, 1, 8)));
        let renamed = model.clone().with_name("renamed");
        assert_ne!(base, stable_config_key(&renamed, &plan(4, 2, 2, 1, 8)), "name");
    }
}
