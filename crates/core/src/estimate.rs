//! The end-to-end estimation pipeline: model + plan + cluster → iteration
//! time, utilization, and breakdown.

use std::fmt;

use serde::{Deserialize, Serialize};
use vtrain_gpu::NoiseModel;
use vtrain_graph::{build_op_graph, GraphOptions};
use vtrain_model::{ModelConfig, TimeNs};
use vtrain_parallel::{ClusterSpec, ParallelConfig, PlanError};
use vtrain_profile::{CommModel, Profiler};

use crate::sim::{simulate, BusyBreakdown, SimMode};
use crate::task_graph::TaskGraph;

/// Error produced by [`Estimator::estimate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EstimateError {
    /// The plan is malformed or infeasible on this cluster.
    InvalidPlan(PlanError),
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::InvalidPlan(e) => write!(f, "invalid training plan: {e}"),
        }
    }
}

impl std::error::Error for EstimateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EstimateError::InvalidPlan(e) => Some(e),
        }
    }
}

impl From<PlanError> for EstimateError {
    fn from(e: PlanError) -> Self {
        EstimateError::InvalidPlan(e)
    }
}

/// The simulator's verdict on one `(model, plan)` point.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct IterationEstimate {
    /// Single-iteration training time.
    pub iteration_time: TimeNs,
    /// Achieved FLOPS relative to peak across all `t·d·p` GPUs
    /// (the paper's GPU compute utilization, Fig. 1/10).
    pub utilization: f64,
    /// Busy time by category summed over simulated devices.
    pub busy: BusyBreakdown,
    /// Mean compute-stream occupancy (1 − bubble fraction).
    pub occupancy: f64,
    /// GPUs occupied by the plan.
    pub num_gpus: usize,
    /// Tokens consumed per iteration.
    pub tokens_per_iteration: u64,
}

/// The vTrain estimation front-end: profiles once per query, lowers the
/// operator graph, replays Algorithm 1.
#[derive(Clone, Debug)]
pub struct Estimator {
    cluster: ClusterSpec,
    comm: CommModel,
    graph_opts: GraphOptions,
}

impl Estimator {
    /// Creates an estimator for a cluster with `α = 1.0` (the value §IV
    /// found optimal on the paper's 512-GPU platform).
    pub fn new(cluster: ClusterSpec) -> Self {
        Estimator::with_alpha(cluster, 1.0)
    }

    /// Creates an estimator with an explicit bandwidth-effectiveness factor.
    pub fn with_alpha(cluster: ClusterSpec, alpha: f64) -> Self {
        let comm = CommModel::new(&cluster, alpha);
        let graph_opts =
            GraphOptions { gpus_per_node: cluster.gpus_per_node, ..GraphOptions::default() };
        Estimator { cluster, comm, graph_opts }
    }

    /// The cluster being modeled.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Builds and lowers the execution graph for a validated plan.
    fn lower(&self, model: &ModelConfig, plan: &ParallelConfig) -> TaskGraph {
        let graph = build_op_graph(model, plan, &self.graph_opts);
        let table = Profiler::new(self.cluster.gpu.clone()).profile(&graph.necessary_operators());
        TaskGraph::lower(&graph, &table, &self.comm)
            .expect("profiler covered all necessary operators")
    }

    fn report_to_estimate(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
        report: crate::sim::SimReport,
    ) -> IterationEstimate {
        let flops = model.flops_per_iteration(plan.global_batch(), self.graph_opts.recompute);
        let peak = self.cluster.gpu.peak_fp16_flops * plan.num_gpus() as f64;
        let utilization = (flops.as_f64() / (peak * report.iteration_time.as_secs_f64())).min(1.0);
        IterationEstimate {
            iteration_time: report.iteration_time,
            utilization,
            occupancy: report.mean_device_occupancy(),
            busy: report.busy,
            num_gpus: plan.num_gpus(),
            tokens_per_iteration: model.tokens_per_iteration(plan.global_batch()),
        }
    }

    /// vTrain's prediction for one design point.
    ///
    /// # Errors
    ///
    /// Returns [`EstimateError::InvalidPlan`] if the plan fails
    /// [`ParallelConfig::validate`] against the model and cluster.
    pub fn estimate(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
    ) -> Result<IterationEstimate, EstimateError> {
        plan.validate(model, &self.cluster)?;
        let tg = self.lower(model, plan);
        let report = simulate(&tg, SimMode::Predicted);
        Ok(self.report_to_estimate(model, plan, report))
    }

    /// Ground-truth emulated "measurement" of the same design point — the
    /// stand-in for the real training runs of the paper's validation
    /// (Fig. 9, Table II).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::estimate`].
    pub fn measure(
        &self,
        model: &ModelConfig,
        plan: &ParallelConfig,
        noise: &NoiseModel,
    ) -> Result<IterationEstimate, EstimateError> {
        plan.validate(model, &self.cluster)?;
        let tg = self.lower(model, plan);
        let nodes = plan.num_gpus().div_ceil(self.cluster.gpus_per_node);
        let mut report = simulate(&tg, SimMode::Measured { noise, nodes });
        // Configuration-level runtime bias a kernel replay cannot see
        // (framework effects); keyed deterministically on the config.
        let key = {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut h = DefaultHasher::new();
            model.hash(&mut h);
            plan.hash(&mut h);
            h.finish()
        };
        report.iteration_time = report.iteration_time.scale(noise.iteration_bias(key, nodes));
        Ok(self.report_to_estimate(model, plan, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_gpu::NoiseConfig;
    use vtrain_model::presets;

    fn plan(t: usize, d: usize, p: usize, m: usize, b: usize) -> ParallelConfig {
        ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(m)
            .global_batch(b)
            .build()
            .unwrap()
    }

    #[test]
    fn estimate_rejects_invalid_plans() {
        let est = Estimator::new(ClusterSpec::aws_p4d(8));
        let err = est.estimate(&presets::megatron("1.7B"), &plan(16, 1, 1, 1, 8)).unwrap_err();
        assert!(matches!(err, EstimateError::InvalidPlan(_)));
        assert!(err.to_string().contains("invalid training plan"));
    }

    #[test]
    fn utilization_in_plausible_band() {
        // A reasonable plan for 18.4B on 64 GPUs should land in the
        // 25–60 % utilization band the paper reports for A100 systems.
        let est = Estimator::new(ClusterSpec::aws_p4d(64));
        let e = est.estimate(&presets::megatron("18.4B"), &plan(8, 8, 1, 2, 128)).unwrap();
        assert!(e.utilization > 0.25 && e.utilization < 0.65, "utilization {:.3}", e.utilization);
    }

    #[test]
    fn tensor_parallel_beats_single_gpu_latency() {
        let est = Estimator::new(ClusterSpec::aws_p4d(8));
        let model = presets::megatron("1.7B");
        let t1 = est.estimate(&model, &plan(1, 1, 1, 1, 8)).unwrap();
        let t8 = est.estimate(&model, &plan(8, 1, 1, 1, 8)).unwrap();
        assert!(t8.iteration_time < t1.iteration_time);
        // ... at lower utilization (All-Reduce overhead + smaller GEMMs).
        assert!(t8.utilization < t1.utilization);
    }

    #[test]
    fn measured_is_slower_and_close() {
        let est = Estimator::new(ClusterSpec::aws_p4d(16));
        let model = presets::megatron("1.7B");
        let p = plan(4, 2, 2, 1, 8);
        let predicted = est.estimate(&model, &p).unwrap();
        let noise = NoiseModel::new(NoiseConfig::default());
        let measured = est.measure(&model, &p, &noise).unwrap();
        let ratio = measured.iteration_time.as_secs_f64() / predicted.iteration_time.as_secs_f64();
        assert!(ratio > 1.0 && ratio < 1.6, "measured/predicted ratio {ratio}");
    }

    #[test]
    fn data_parallel_scales_throughput() {
        let est = Estimator::new(ClusterSpec::aws_p4d(64));
        let model = presets::megatron("1.7B");
        // Same per-replica work, 8× replicas consume 8× tokens per
        // iteration in comparable time.
        let one = est.estimate(&model, &plan(2, 1, 1, 2, 16)).unwrap();
        let eight = est.estimate(&model, &plan(2, 8, 1, 2, 128)).unwrap();
        let slowdown = eight.iteration_time.as_secs_f64() / one.iteration_time.as_secs_f64();
        assert!(slowdown < 1.4, "DP iteration slowdown {slowdown}");
        assert_eq!(eight.tokens_per_iteration, 8 * one.tokens_per_iteration);
    }
}
