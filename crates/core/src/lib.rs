//! # vtrain-core
//!
//! The vTrain simulator proper (paper §III-D/E/F and §V-A).
//!
//! The estimation path is a staged pipeline ([`Estimator`]): **validate**
//! (cheap feasibility/memory checks, also the sweep's pruning predicate) →
//! **lower** (necessary-operator signatures resolved against a shared
//! concurrent profile cache, then graph construction fused with lowering
//! into a [`TaskGraph`]) → **simulate** ([`simulate`] replays **Algorithm
//! 1** — a FIFO ready-queue traversal over per-(GPU, stream) timelines
//! honoring dependencies and computation/communication overlap; stream-
//! chained graphs take a provably equivalent dataflow fast path) →
//! **summarize** (fold the replay into an [`IterationEstimate`]).
//! [`Estimator::estimate`] composes the stages; [`search`] sweeps the
//! `(t, d, p, m)` design space on a work-stealing executor that shares the
//! profile cache across workers (each unique operator signature is
//! profiled once per sweep, §III-C/F) and reports
//! [`SweepStats`](search::SweepStats); [`CostModel`] converts GPU-hours
//! to dollars.
//!
//! Two execution modes mirror the paper's validation methodology:
//! * **Predicted** — clean lookup-table replay (what vTrain reports);
//! * **Measured** — the same replay perturbed by the ground-truth
//!   [`NoiseModel`](vtrain_gpu::NoiseModel), standing in for the real
//!   GPU-cluster measurements of Fig. 9 / Table II.
//!
//! # Examples
//!
//! ```
//! use vtrain_core::Estimator;
//! use vtrain_model::presets;
//! use vtrain_parallel::{ClusterSpec, ParallelConfig};
//!
//! let cluster = ClusterSpec::aws_p4d(64);
//! let estimator = Estimator::builder(cluster).build();
//! let plan = ParallelConfig::builder()
//!     .tensor(8).data(4).pipeline(2).micro_batch(2).global_batch(64)
//!     .build()?;
//! let est = estimator.estimate(&presets::megatron("18.4B"), &plan)?;
//! assert!(est.iteration_time.as_secs_f64() > 0.0);
//! assert!(est.utilization > 0.0 && est.utilization <= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
mod compact;
mod cost;
mod estimate;
mod flow_replay;
pub mod search;
mod sim;
mod task_graph;

pub use cost::{CostModel, TrainingProjection};
pub use estimate::{
    EstimateError, Estimator, EstimatorBuilder, EstimatorScratch, IterationEstimate,
    IterationTimeline, StageNanos,
};
pub use sim::{
    simulate, simulate_into, simulate_into_traced, BusyBreakdown, SimMode, SimReport, SimScratch,
    TaskTrace,
};
pub use task_graph::{MissingProfile, Task, TaskGraph, TaskKind};
