//! Validation statistics (MAPE, R²) used by the Fig. 9 experiments.

/// Mean absolute percentage error of `(predicted, measured)` pairs.
///
/// # Panics
///
/// Panics if `pairs` is empty or any measured value is zero.
pub fn mape(pairs: &[(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty(), "MAPE of an empty sample");
    100.0
        * pairs
            .iter()
            .map(|&(p, m)| {
                assert!(m != 0.0, "measured value must be nonzero");
                ((p - m) / m).abs()
            })
            .sum::<f64>()
        / pairs.len() as f64
}

/// Coefficient of determination of predictions against measurements
/// (R² of the identity line, matching the paper's scatter plots).
///
/// # Panics
///
/// Panics if `pairs` is empty.
pub fn r_squared(pairs: &[(f64, f64)]) -> f64 {
    assert!(!pairs.is_empty(), "R² of an empty sample");
    let mean = pairs.iter().map(|&(_, m)| m).sum::<f64>() / pairs.len() as f64;
    let ss_res: f64 = pairs.iter().map(|&(p, m)| (m - p).powi(2)).sum();
    let ss_tot: f64 = pairs.iter().map(|&(_, m)| (m - mean).powi(2)).sum();
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let pairs = [(1.0, 1.0), (2.0, 2.0), (5.0, 5.0)];
        assert_eq!(mape(&pairs), 0.0);
        assert!((r_squared(&pairs) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ten_percent_bias_gives_ten_percent_mape() {
        let pairs = [(0.9, 1.0), (1.8, 2.0), (4.5, 5.0)];
        assert!((mape(&pairs) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn r_squared_degrades_with_noise() {
        let tight = [(1.0, 1.01), (2.0, 1.98), (3.0, 3.05), (4.0, 3.96)];
        let loose = [(1.0, 1.5), (2.0, 1.2), (3.0, 4.1), (4.0, 3.0)];
        assert!(r_squared(&tight) > r_squared(&loose));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = mape(&[]);
    }
}
