//! Figure 12: deadline satisfactory ratio of ElasticFlow-baseline vs
//! vTrain-informed scheduling over nine workload traces, at 64 and 128
//! jobs (paper: vTrain improves the ratio 1.09×/1.23× on average).
//!
//! Also prints Table III (the job model configurations) for reference.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin fig12_deadlines
//! ```

use serde::Serialize;
use vtrain_bench::report;
use vtrain_bench::sched::{table_iii_catalog, CLUSTER_GPUS};
use vtrain_cluster::{
    generate_trace, simulate_cluster, ProfilePolicy, SchedulerConfig, TraceConfig,
};
use vtrain_model::{presets, TimeNs};

#[derive(Serialize)]
struct Row {
    jobs: usize,
    trace: u64,
    elasticflow_ratio: f64,
    vtrain_ratio: f64,
}

fn main() {
    report::banner("Table III: job model configurations");
    println!(
        "{:<16} {:>8} {:>7} {:>7} {:>6} {:>6} {:>6}",
        "model", "params", "L", "h", "n", "s", "B"
    );
    for (model, batch) in presets::table_iii_models() {
        println!(
            "{:<16} {:>7.1}B {:>7} {:>7} {:>6} {:>6} {:>6}",
            model.name(),
            model.num_parameters_billion(),
            model.num_layers(),
            model.hidden_size(),
            model.num_heads(),
            model.seq_len(),
            batch
        );
    }

    let catalog = table_iii_catalog();
    report::banner("Figure 12: deadline satisfactory ratio (9 traces)");
    let mut rows = Vec::new();
    for &jobs in &[64usize, 128] {
        println!("\n--- {jobs} jobs ---");
        println!("{:>6} {:>14} {:>12} {:>9}", "trace", "ElasticFlow", "vTrain", "gain");
        let mut sums = (0.0, 0.0);
        for trace_id in 1..=9u64 {
            let trace = generate_trace(
                &TraceConfig {
                    num_jobs: jobs,
                    seed: trace_id,
                    arrival_window: TimeNs::from_secs(60 * 3600),
                    deadline_lambda: Some((0.5, 1.5)),
                    iterations: (800, 5000),
                },
                &catalog,
            );
            let base = simulate_cluster(
                &trace,
                &catalog,
                &SchedulerConfig::new(CLUSTER_GPUS, ProfilePolicy::DataParallelOnly),
            );
            let vt = simulate_cluster(
                &trace,
                &catalog,
                &SchedulerConfig::new(CLUSTER_GPUS, ProfilePolicy::VTrainOptimal),
            );
            let (b, v) = (base.deadline_satisfactory_ratio(), vt.deadline_satisfactory_ratio());
            sums.0 += b;
            sums.1 += v;
            println!("{trace_id:>6} {b:>14.3} {v:>12.3} {:>8.2}x", v / b.max(1e-9));
            rows.push(Row { jobs, trace: trace_id, elasticflow_ratio: b, vtrain_ratio: v });
        }
        println!(
            "{:>6} {:>14.3} {:>12.3} {:>8.2}x   (paper avg: {})",
            "avg",
            sums.0 / 9.0,
            sums.1 / 9.0,
            (sums.1 / sums.0.max(1e-9)),
            if jobs == 64 { "1.09x" } else { "1.23x" }
        );
    }
    report::dump_json("fig12_deadlines", &rows);
}
