//! Figure 1: wall-clock training time of GPT-3 (175B) on 1,024 A100 GPUs as
//! a function of GPU compute utilization, with AWS P4d cost.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin fig01_util_vs_days
//! ```

use serde::Serialize;
use vtrain_bench::report;
use vtrain_core::CostModel;
use vtrain_model::presets;

#[derive(Serialize)]
struct Row {
    utilization_pct: f64,
    training_days: f64,
    cost_million_usd: f64,
}

fn main() {
    report::banner("Figure 1: GPT-3 175B training time vs GPU compute utilization");
    let model = presets::gpt3_175b();
    let gpus = 1024usize;
    let tokens: u64 = 300_000_000_000;
    let peak = 312e12;
    let cost = CostModel::default();
    // Total FLOPs: the Megatron hardware-FLOPs accounting at the training
    // batch, scaled to the full token budget.
    let batch = 1536usize;
    let flops_per_iter = model.flops_per_iteration(batch, true).as_f64();
    let iters = tokens as f64 / model.tokens_per_iteration(batch) as f64;
    let total_flops = flops_per_iter * iters;

    println!("total training FLOPs: {total_flops:.3e}");
    println!("{:>12} {:>16} {:>12}", "util (%)", "days", "cost ($M)");
    let mut rows = Vec::new();
    let mut util = 30.0f64;
    while util <= 70.0 + 1e-9 {
        let seconds = total_flops / (gpus as f64 * peak * util / 100.0);
        let days = seconds / 86_400.0;
        let dollars = cost.dollars_per_hour(gpus) * seconds / 3600.0;
        println!("{:>12.0} {:>16.2} {:>12.2}", util, days, dollars / 1e6);
        rows.push(Row {
            utilization_pct: util,
            training_days: days,
            cost_million_usd: dollars / 1e6,
        });
        util += 5.0;
    }
    // The paper's headline: dropping from 50% to 40% utilization adds ~8
    // days and millions of dollars.
    let d40 = rows.iter().find(|r| r.utilization_pct == 40.0).unwrap().training_days;
    let d50 = rows.iter().find(|r| r.utilization_pct == 50.0).unwrap().training_days;
    println!("\n50% -> 40% utilization costs {:.1} extra days", d40 - d50);
    report::dump_json("fig01_util_vs_days", &rows);
}
