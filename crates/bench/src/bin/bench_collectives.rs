//! Topology smoke: prices a fixed matrix of collectives over two- and
//! three-tier topologies and runs a thin placement sweep, writing
//! `results/BENCH_collectives.json` for the CI perf-regression gate
//! (`check_bench` compares it against
//! `crates/bench/baselines/ci_baseline.json`).
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin bench_collectives
//! ```

use serde::Serialize;
use vtrain_bench::report;
use vtrain_core::search::{self, SearchLimits};
use vtrain_model::{presets, Bytes, TimeNs};
use vtrain_net::{collective, Algorithm, Collective, GroupPlacement, TierSpec, Topology};
use vtrain_parallel::{ClusterSpec, PipelineSchedule};

/// One priced collective scenario (deterministic: gated exactly).
#[derive(Serialize)]
struct CollectiveRow {
    label: String,
    total_ns: u64,
    phases: Vec<(usize, u64)>,
}

/// One placement variant of the mini sweep.
#[derive(Serialize)]
struct PlacementRow {
    label: String,
    feasible_points: usize,
    fastest_iteration_s: f64,
    points_per_sec: f64,
}

#[derive(Serialize)]
struct CollectivesBench {
    collectives: Vec<CollectiveRow>,
    placements: Vec<PlacementRow>,
}

fn price(
    rows: &mut Vec<CollectiveRow>,
    label: &str,
    topo: &Topology,
    placement: GroupPlacement,
    kind: Collective,
    algo: Algorithm,
    mib: u64,
) {
    let c = collective::cost(topo, placement, kind, algo, Bytes::from_mib(mib));
    rows.push(CollectiveRow {
        label: label.to_owned(),
        total_ns: c.total().as_nanos(),
        phases: c.phases.iter().map(|p| (p.tier, p.time.as_nanos())).collect(),
    });
}

fn main() {
    report::banner("Collective-algorithm & placement smoke (CI gate input)");
    let cluster = ClusterSpec::aws_p4d(64);
    let two_tier = cluster.topology(1.0);
    let spine = TierSpec::new(25e9, TimeNs::from_micros(35), 1.0);
    let three_tier = cluster.topology(1.0).with_rack_tier(4, spine);

    let packed = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 8, racks: 1 };
    let racked = GroupPlacement { ranks_per_node: 8, nodes_per_rack: 4, racks: 2 };
    let mut rows = Vec::new();
    for mib in [32, 512] {
        for (algo, name) in [
            (Algorithm::Ring, "ring"),
            (Algorithm::Tree, "tree"),
            (Algorithm::Hierarchical, "hier"),
        ] {
            price(
                &mut rows,
                &format!("allreduce/{name}/2tier/{mib}MiB"),
                &two_tier,
                packed,
                Collective::AllReduce,
                algo,
                mib,
            );
            price(
                &mut rows,
                &format!("allreduce/{name}/3tier/{mib}MiB"),
                &three_tier,
                racked,
                Collective::AllReduce,
                algo,
                mib,
            );
        }
    }
    for (kind, name) in [
        (Collective::AllGather, "allgather"),
        (Collective::ReduceScatter, "reducescatter"),
        (Collective::AllToAll, "alltoall"),
    ] {
        price(
            &mut rows,
            &format!("{name}/hier/2tier/128MiB"),
            &two_tier,
            packed,
            kind,
            Algorithm::Hierarchical,
            128,
        );
    }
    println!("{:<34} {:>12} {:>8}", "scenario", "total", "phases");
    for r in &rows {
        println!(
            "{:<34} {:>12} {:>8}",
            r.label,
            TimeNs::from_nanos(r.total_ns).to_string(),
            r.phases.len()
        );
    }

    // Thin placement sweep: the same candidate grid priced under three
    // interconnect shapes sharing one profile cache.
    let model = presets::megatron("1.7B");
    let limits = SearchLimits { max_tensor: 8, max_data: 8, max_pipeline: 2, max_micro_batch: 1 };
    let candidates =
        search::enumerate_candidates(&model, &cluster, 16, PipelineSchedule::OneFOneB, &limits);
    let topologies = vec![
        ("two-tier".to_owned(), two_tier),
        ("multi-rack/4".to_owned(), three_tier.clone()),
        (
            "multi-rack/2".to_owned(),
            cluster
                .topology(1.0)
                .with_rack_tier(2, TierSpec::new(25e9, TimeNs::from_micros(35), 1.0)),
        ),
    ];
    let sweeps = search::Sweep::over(&model, &cluster)
        .candidates(candidates)
        .placements(topologies)
        .threads(4)
        .run()
        .into_variants();
    println!("\n{:<14} {:>8} {:>12} {:>10}", "placement", "points", "fastest", "pts/s");
    let placements: Vec<PlacementRow> = sweeps
        .iter()
        .map(|s| {
            let fastest = s
                .outcome
                .points
                .iter()
                .map(|p| p.estimate.iteration_time)
                .min()
                .unwrap_or(TimeNs::ZERO);
            println!(
                "{:<14} {:>8} {:>12} {:>10.1}",
                s.label,
                s.outcome.points.len(),
                fastest.to_string(),
                s.outcome.stats.points_per_sec()
            );
            PlacementRow {
                label: s.label.clone(),
                feasible_points: s.outcome.points.len(),
                fastest_iteration_s: fastest.as_secs_f64(),
                points_per_sec: s.outcome.stats.points_per_sec(),
            }
        })
        .collect();

    report::dump_json("BENCH_collectives", &CollectivesBench { collectives: rows, placements });
}
