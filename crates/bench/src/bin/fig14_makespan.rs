//! Figure 14: makespan of batches of simultaneously-submitted jobs
//! (16–72 jobs, all arriving at t = 0), normalized to ElasticFlow
//! (paper: vTrain shortens makespan by up to 23.03%, with the smallest
//! gain at the lightest load).
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin fig14_makespan
//! ```

use serde::Serialize;
use vtrain_bench::report;
use vtrain_bench::sched::{table_iii_catalog, CLUSTER_GPUS};
use vtrain_cluster::{
    generate_trace, simulate_cluster, ProfilePolicy, SchedulerConfig, TraceConfig,
};
use vtrain_model::TimeNs;

#[derive(Serialize)]
struct Row {
    jobs: usize,
    elasticflow_makespan_s: f64,
    vtrain_makespan_s: f64,
    normalized: f64,
}

fn main() {
    let catalog = table_iii_catalog();
    report::banner("Figure 14: makespan, simultaneous submission");
    println!("{:>6} {:>16} {:>14} {:>12}", "jobs", "ElasticFlow (h)", "vTrain (h)", "normalized");
    let mut rows = Vec::new();
    for &jobs in &[16usize, 32, 48, 64, 72] {
        let trace = generate_trace(
            &TraceConfig {
                num_jobs: jobs,
                seed: 42,
                arrival_window: TimeNs::ZERO,
                deadline_lambda: None,
                iterations: (500, 4000),
            },
            &catalog,
        );
        let base = simulate_cluster(
            &trace,
            &catalog,
            &SchedulerConfig::new(CLUSTER_GPUS, ProfilePolicy::DataParallelOnly),
        );
        let vt = simulate_cluster(
            &trace,
            &catalog,
            &SchedulerConfig::new(CLUSTER_GPUS, ProfilePolicy::VTrainOptimal),
        );
        let (b, v) = (base.makespan.as_secs_f64(), vt.makespan.as_secs_f64());
        let norm = v / b;
        println!("{jobs:>6} {:>16.2} {:>14.2} {norm:>12.3}", b / 3600.0, v / 3600.0);
        rows.push(Row { jobs, elasticflow_makespan_s: b, vtrain_makespan_s: v, normalized: norm });
    }
    println!("(paper: gains grow with load, up to −23.03%)");
    report::dump_json("fig14_makespan", &rows);
}
