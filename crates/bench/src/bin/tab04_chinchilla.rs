//! Table IV: compute-optimal Chinchilla points under a 3,360-GPU / 30-day
//! budget. The naive 100%-utility sizing picks 145.6B parameters (needing
//! 85 days in reality); simulating effective utilization yields a ~76B
//! model that genuinely finishes in 30 days.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin tab04_chinchilla
//! ```

use serde::Serialize;
use vtrain_bench::{report, threads};
use vtrain_core::search::SearchLimits;
use vtrain_core::Estimator;
use vtrain_parallel::ClusterSpec;
use vtrain_scaling::{compute_optimal_search, table_iv_candidates, ChinchillaLaw};

#[derive(Serialize)]
struct Row {
    hidden: usize,
    layers: usize,
    params_billion: f64,
    tokens_billion: f64,
    optimal_plan: String,
    utilization_pct: f64,
    training_days: f64,
}

fn main() {
    report::banner("Table IV: compute-optimal Chinchilla points (3,360 GPUs, 30 days)");
    let gpus = 3360;
    let days_budget = 30.0;
    let cluster = ClusterSpec::dgx_a100_80gb(gpus);
    let law = ChinchillaLaw::default();

    let naive_c = ChinchillaLaw::gpu_budget(gpus, days_budget, cluster.gpu.peak_fp16_flops);
    let naive = law.optimal_point(naive_c);
    println!(
        "naive (100% utility): C = {:.2e} FLOPs -> N = {:.2}B, T = {:.0}B tokens",
        naive.compute,
        naive.params / 1e9,
        naive.tokens / 1e9
    );

    let estimator = Estimator::builder(cluster).build();
    let limits = SearchLimits { max_tensor: 8, max_data: 96, max_pipeline: 20, max_micro_batch: 2 };
    let (outcomes, best) = compute_optimal_search(
        &estimator,
        &law,
        &table_iv_candidates(),
        1920,
        days_budget,
        &limits,
        threads(),
    );

    println!(
        "\n{:>7} {:>4} {:>9} {:>9} {:>18} {:>7} {:>7}",
        "h", "L", "params", "tokens", "optimal (t,d,p)", "util %", "days"
    );
    let mut rows = Vec::new();
    for o in &outcomes {
        let plan = format!(
            "({}, {}, {})",
            o.best_plan.tensor(),
            o.best_plan.data(),
            o.best_plan.pipeline()
        );
        println!(
            "{:>7} {:>4} {:>8.2}B {:>8.0}B {:>18} {:>7.1} {:>7.0}",
            o.spec.hidden,
            o.spec.layers,
            o.params / 1e9,
            o.tokens / 1e9,
            plan,
            o.utilization * 100.0,
            o.training_days
        );
        rows.push(Row {
            hidden: o.spec.hidden,
            layers: o.spec.layers,
            params_billion: o.params / 1e9,
            tokens_billion: o.tokens / 1e9,
            optimal_plan: plan,
            utilization_pct: o.utilization * 100.0,
            training_days: o.training_days,
        });
    }
    match &best {
        Some(b) => println!(
            "\nrealistic compute-optimal pick: {:.2}B parameters ({:.0}B tokens) — \
             {:.0}% smaller than the naive {:.2}B (paper: 76.04B, 48% smaller)",
            b.params / 1e9,
            b.tokens / 1e9,
            100.0 * (1.0 - b.params / naive.params),
            naive.params / 1e9
        ),
        None => println!("\nno candidate fits the budget"),
    }
    report::dump_json("tab04_chinchilla", &rows);
}
