//! Ablations of the design choices DESIGN.md calls out: gradient bucketing
//! (Fig. 5), pipeline schedule (Fig. 7), micro-batch size, and the
//! bandwidth-effectiveness factor α — quantifying each mechanism's
//! contribution to predicted iteration time.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin abl_design_choices
//! ```

use serde::Serialize;
use vtrain_bench::report;
use vtrain_core::Estimator;
use vtrain_model::presets;
use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule};

#[derive(Serialize)]
struct Abl {
    study: &'static str,
    variant: String,
    iteration_s: f64,
    delta_pct: f64,
}

fn main() {
    let cluster = ClusterSpec::aws_p4d(256);
    let estimator = Estimator::builder(cluster.clone()).build();
    let model = presets::megatron("18.4B");
    let mut rows: Vec<Abl> = Vec::new();

    let time = |plan: &ParallelConfig, est: &Estimator| {
        est.estimate(&model, plan).expect("ablation plans feasible").iteration_time.as_secs_f64()
    };

    // --- gradient bucketing (DP All-Reduce overlap, Fig. 5).
    report::banner("Ablation: gradient bucketing (d = 16)");
    let base_plan = |bucketing: bool, sched: PipelineSchedule, m: usize| {
        ParallelConfig::builder()
            .tensor(8)
            .data(16)
            .pipeline(2)
            .micro_batch(m)
            .global_batch(256)
            .schedule(sched)
            .gradient_bucketing(bucketing)
            .build()
            .unwrap()
    };
    let with = time(&base_plan(true, PipelineSchedule::OneFOneB, 1), &estimator);
    let without = time(&base_plan(false, PipelineSchedule::OneFOneB, 1), &estimator);
    println!("bucketed   {with:.3}s");
    println!("unbucketed {without:.3}s  (+{:.1}%)", 100.0 * (without / with - 1.0));
    rows.push(Abl { study: "bucketing", variant: "on".into(), iteration_s: with, delta_pct: 0.0 });
    rows.push(Abl {
        study: "bucketing",
        variant: "off".into(),
        iteration_s: without,
        delta_pct: 100.0 * (without / with - 1.0),
    });

    // --- pipeline schedule (GPipe vs 1F1B have equal bubbles in the clean
    // model; 1F1B's advantage is the memory bound it lifts).
    report::banner("Ablation: pipeline schedule (p = 8)");
    let pipe_plan = |sched: PipelineSchedule| {
        ParallelConfig::builder()
            .tensor(8)
            .data(2)
            .pipeline(8)
            .micro_batch(1)
            .global_batch(64)
            .schedule(sched)
            .build()
            .unwrap()
    };
    for sched in [PipelineSchedule::GPipe, PipelineSchedule::OneFOneB] {
        let plan = pipe_plan(sched);
        let t = time(&plan, &estimator);
        let in_flight = plan.max_in_flight_micro_batches();
        println!("{sched:?}: {t:.3}s, peak in-flight micro-batches {in_flight}");
        rows.push(Abl {
            study: "schedule",
            variant: format!("{sched:?}"),
            iteration_s: t,
            delta_pct: 0.0,
        });
    }

    // --- micro-batch size (bubble vs per-kernel efficiency trade-off).
    report::banner("Ablation: micro-batch size (p = 8, d = 2)");
    let mut first = None;
    for m in [1usize, 2, 4, 8] {
        let plan = ParallelConfig::builder()
            .tensor(8)
            .data(2)
            .pipeline(8)
            .micro_batch(m)
            .global_batch(128)
            .build()
            .unwrap();
        if estimator.estimate(&model, &plan).is_err() {
            continue;
        }
        let t = time(&plan, &estimator);
        let base = *first.get_or_insert(t);
        println!("m = {m}: {t:.3}s ({:+.1}%)", 100.0 * (t / base - 1.0));
        rows.push(Abl {
            study: "micro_batch",
            variant: format!("m{m}"),
            iteration_s: t,
            delta_pct: 100.0 * (t / base - 1.0),
        });
    }

    // --- α sensitivity of an inter-node-DP-heavy plan.
    report::banner("Ablation: bandwidth-effectiveness factor α (exposed DP)");
    let exposed = ParallelConfig::builder()
        .tensor(8)
        .data(32)
        .pipeline(1)
        .micro_batch(1)
        .global_batch(256)
        .gradient_bucketing(false)
        .build()
        .unwrap();
    let mut base = None;
    // One shared profile cache across the α-sweep estimators: α only
    // affects the communication model, never the kernel profiles.
    let shared = std::sync::Arc::clone(estimator.cache());
    for alpha in [1.0, 0.8, 0.6, 0.4, 0.2] {
        let est = Estimator::builder(cluster.clone())
            .alpha(alpha)
            .cache(std::sync::Arc::clone(&shared))
            .build();
        let t = time(&exposed, &est);
        let b = *base.get_or_insert(t);
        println!("α = {alpha:.1}: {t:.3}s ({:+.1}%)", 100.0 * (t / b - 1.0));
        rows.push(Abl {
            study: "alpha",
            variant: format!("{alpha:.1}"),
            iteration_s: t,
            delta_pct: 100.0 * (t / b - 1.0),
        });
    }

    report::dump_json("abl_design_choices", &rows);
}
