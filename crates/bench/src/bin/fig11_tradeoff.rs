//! Figure 11: iteration time vs GPU compute utilization for the 8-way
//! tensor-parallel slice of the MT-NLG design space, highlighting the three
//! published MT-NLG plans and the three vTrain-uncovered plans.
//!
//! Pass `--goal {exhaustive|front|best}` to bound-prune the background
//! cloud (the highlighted Table I plans are always estimated in full);
//! the default stays exhaustive and byte-identical.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin fig11_tradeoff
//! ```

use serde::Serialize;
use vtrain_bench::{mtnlg_workload, report, sweep_goal, table_i_plans, threads};
use vtrain_core::search::{self, SearchLimits};
use vtrain_core::Estimator;
use vtrain_parallel::{ClusterSpec, PipelineSchedule};

#[derive(Serialize)]
struct Point {
    label: String,
    iteration_s: f64,
    utilization_pct: f64,
    gpus: usize,
    highlighted: bool,
}

fn main() {
    report::banner("Figure 11: iteration time vs utilization (t = 8 slice)");
    let (model, global_batch, _) = mtnlg_workload();
    let cluster = ClusterSpec::dgx_a100_80gb(8 * 32 * 105);
    let estimator = Estimator::builder(cluster.clone()).build();

    // Background cloud: the t = 8 slice.
    let limits =
        SearchLimits { max_tensor: 8, max_data: 24, max_pipeline: 105, max_micro_batch: 1 };
    let mut candidates = search::enumerate_candidates(
        &model,
        &cluster,
        global_batch,
        PipelineSchedule::OneFOneB,
        &limits,
    );
    candidates.retain(|c| c.tensor() == 8 && c.data() >= 4);
    let cloud = search::Sweep::on(&estimator, &model)
        .candidates(candidates)
        .threads(threads())
        .goal(sweep_goal())
        .run()
        .into_outcome();

    let mut points: Vec<Point> = cloud
        .points
        .iter()
        .map(|p| Point {
            label: p.plan.to_string(),
            iteration_s: p.estimate.iteration_time.as_secs_f64(),
            utilization_pct: p.estimate.utilization * 100.0,
            gpus: p.estimate.num_gpus,
            highlighted: false,
        })
        .collect();

    // Highlighted MT-NLG baselines and vTrain findings (Table I plans).
    println!("{:<20} {:>10} {:>8} {:>7}", "plan", "iter (s)", "util %", "GPUs");
    for (label, plan) in table_i_plans() {
        let est = estimator.estimate(&model, &plan).expect("Table I plans feasible");
        println!(
            "{label:<20} {:>10.2} {:>8.1} {:>7}",
            est.iteration_time.as_secs_f64(),
            est.utilization * 100.0,
            est.num_gpus
        );
        points.push(Point {
            label: label.to_owned(),
            iteration_s: est.iteration_time.as_secs_f64(),
            utilization_pct: est.utilization * 100.0,
            gpus: est.num_gpus,
            highlighted: true,
        });
    }
    println!(
        "\nbackground cloud points: {} ({:.0} points/s, cache hit-rate {:.1}%)",
        cloud.points.len(),
        cloud.stats.points_per_sec(),
        cloud.stats.cache_hit_rate() * 100.0
    );
    report::dump_json("fig11_tradeoff", &points);
}
