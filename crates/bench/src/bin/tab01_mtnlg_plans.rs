//! Table I: baseline MT-NLG training plans vs the vTrain-uncovered,
//! more cost-effective plans — iteration time, total training time, GPU
//! utilization, GPU count, and dollars.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin tab01_mtnlg_plans
//! ```

use serde::Serialize;
use vtrain_bench::{mtnlg_workload, report, table_i_plans};
use vtrain_core::{CostModel, Estimator, TrainingProjection};
use vtrain_parallel::ClusterSpec;

#[derive(Serialize)]
struct Row {
    plan: String,
    iteration_s: f64,
    training_days: f64,
    utilization_pct: f64,
    gpus: usize,
    dollars_per_hour: f64,
    total_million_usd: f64,
}

fn main() {
    report::banner("Table I: MT-NLG baseline plans vs vTrain findings");
    let (model, _, total_tokens) = mtnlg_workload();
    let cluster = ClusterSpec::dgx_a100_80gb(3360);
    let estimator = Estimator::builder(cluster).build();
    let cost = CostModel::default();

    println!(
        "{:<20} {:>9} {:>8} {:>7} {:>7} {:>8} {:>9}",
        "plan", "iter (s)", "days", "util %", "GPUs", "$/hour", "$ total M"
    );
    let mut rows = Vec::new();
    for (label, plan) in table_i_plans() {
        let est = estimator.estimate(&model, &plan).expect("Table I plans are feasible");
        let proj = TrainingProjection::project(
            est.iteration_time,
            est.tokens_per_iteration,
            total_tokens,
            est.num_gpus,
            &cost,
        );
        println!(
            "{label:<20} {:>9.2} {:>8.2} {:>7.2} {:>7} {:>8.0} {:>9.2}",
            est.iteration_time.as_secs_f64(),
            proj.days(),
            est.utilization * 100.0,
            est.num_gpus,
            proj.dollars_per_hour,
            proj.total_dollars / 1e6
        );
        rows.push(Row {
            plan: label.to_owned(),
            iteration_s: est.iteration_time.as_secs_f64(),
            training_days: proj.days(),
            utilization_pct: est.utilization * 100.0,
            gpus: est.num_gpus,
            dollars_per_hour: proj.dollars_per_hour,
            total_million_usd: proj.total_dollars / 1e6,
        });
    }

    // The paper's headline comparison: row 0 (MT-NLG 2,240 GPUs) vs row 3
    // (ours, 2,016 GPUs) — fewer GPUs, slightly longer, cheaper in total.
    let (base, ours) = (&rows[0], &rows[3]);
    println!(
        "\nheadline: ours uses {:.0}% fewer GPUs and saves ${:.2}M ({:.1}% cheaper), \
         {:+.1}% training time",
        100.0 * (1.0 - ours.gpus as f64 / base.gpus as f64),
        base.total_million_usd - ours.total_million_usd,
        100.0 * (1.0 - ours.total_million_usd / base.total_million_usd),
        100.0 * (ours.training_days / base.training_days - 1.0),
    );
    report::dump_json("tab01_mtnlg_plans", &rows);
}
