//! Figure 10: full design-space exploration of MT-NLG 530B — single-
//! iteration training time (a) and GPU compute utilization (b) over the
//! `(t, d, p)` grid.
//!
//! The default grid covers the paper's axes at a coarser density to finish
//! in minutes; pass `--full` for the complete `t ≤ 16, d ≤ 32, p ≤ 105`
//! sweep, or `--smoke` for the CI throughput probe (a thin grid that still
//! exercises the staged pipeline and the shared profile cache). Pass
//! `--topology` to additionally sweep the same grid over interconnect
//! placements (two-tier vs multi-rack, writing `fig10_topology.json`) —
//! the axis the flat communication model could not express. Pass
//! `--goal {exhaustive|front|best}` to let the bound-guided executor skip
//! points whose analytic floor already loses to an incumbent: `front`
//! returns exactly the Pareto frontier, `best` exactly the fastest point
//! (both provably identical to the exhaustive winners); the default
//! exhaustive mode computes no bounds and its grid JSON stays
//! byte-identical by construction.
//!
//! Every run also writes `results/BENCH_sweep.json` with the sweep's
//! throughput report (wall time, points/s, cache hit-rate) so the perf
//! trajectory is tracked across PRs.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin fig10_design_space [-- --full | --smoke]
//! ```

use serde::Serialize;
use vtrain_bench::{full_mode, mtnlg_workload, report, sweep_goal, threads};
use vtrain_core::search::{self, SearchLimits, StageProfile, SweepGoal, SweepStats};
use vtrain_core::Estimator;
use vtrain_model::TimeNs;
use vtrain_net::TierSpec;
use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule};

#[derive(Serialize)]
struct Row {
    tensor: usize,
    data: usize,
    pipeline: usize,
    micro_batch: usize,
    gpus: usize,
    iteration_s: f64,
    utilization_pct: f64,
}

/// The sweep-throughput record of `results/BENCH_sweep.json`.
#[derive(Serialize)]
struct SweepBench {
    grid: &'static str,
    goal: String,
    stats: SweepStats,
    points_per_sec: f64,
    cache_hit_rate: f64,
    /// Warm-cache re-run (best of 3) with observability disabled — the
    /// baseline of the instrumentation-overhead A/B (absent under
    /// `--full`).
    points_per_sec_obs_off: Option<f64>,
    /// The same warm-cache re-run with the metrics registry and spans
    /// enabled; `check_bench` gates `obs_on / obs_off` at the
    /// baseline's `max_obs_on_regression_pct`.
    points_per_sec_obs_on: Option<f64>,
    /// Warm-cache re-run on every available core; `check_bench` gates
    /// parallel efficiency (`≥ 0.6·N×` single-thread) when `threads_mt
    /// > 1`.
    points_per_sec_mt: Option<f64>,
    /// Thread count of the multi-thread re-run.
    threads_mt: Option<usize>,
    /// Warm-cache re-run with delta-lowering disabled — every point
    /// lowered from scratch.
    points_per_sec_delta_off: Option<f64>,
    /// Whether the delta-off re-run reproduced the delta-on points
    /// exactly (same plans, same predicted iteration times);
    /// `check_bench` requires `true` when present.
    delta_equivalent: Option<bool>,
    /// Per-stage CPU-time attribution of a stage-profiled re-run
    /// (absent under `--full`).
    stage_profile: Option<StageProfile>,
    /// The same attribution under a bound-guided `best` goal: floor
    /// pricing shows up as nonzero `bound_ns` (the attribution bucket a
    /// pre-fix regression silently folded into lowering), observable in
    /// the benchmark record regardless of the CLI goal.
    stage_profile_goal: Option<StageProfile>,
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

fn topology_mode() -> bool {
    std::env::args().any(|a| a == "--topology")
}

/// The placement axis: the same candidate plans priced under two-tier and
/// multi-rack interconnects (one shared profile cache across variants).
fn sweep_placements(
    cluster: &ClusterSpec,
    model: &vtrain_model::ModelConfig,
    candidates: std::sync::Arc<[ParallelConfig]>,
    goal: SweepGoal,
) {
    #[derive(Serialize)]
    struct TopoRow {
        placement: String,
        tensor: usize,
        data: usize,
        pipeline: usize,
        iteration_s: f64,
    }
    let spine = TierSpec::new(25e9, TimeNs::from_micros(35), 1.0);
    let topologies = vec![
        ("two-tier".to_owned(), cluster.topology(1.0)),
        ("multi-rack/8".to_owned(), cluster.topology(1.0).with_rack_tier(8, spine)),
        ("multi-rack/4".to_owned(), cluster.topology(1.0).with_rack_tier(4, spine)),
    ];
    let sweeps = search::Sweep::over(model, cluster)
        .candidates(candidates)
        .placements(topologies)
        .threads(threads())
        .goal(goal)
        .run()
        .into_variants();
    println!("\nplacement sweep (same grid, different interconnects):");
    println!("{:<14} {:>8} {:>14} {:>10}", "placement", "points", "fastest (s)", "pts/s");
    let mut rows = Vec::new();
    for s in &sweeps {
        let fastest = s.outcome.points.iter().min_by_key(|p| p.estimate.iteration_time);
        if let Some(best) = fastest {
            println!(
                "{:<14} {:>8} {:>14.2} {:>10.1}",
                s.label,
                s.outcome.points.len(),
                best.estimate.iteration_time.as_secs_f64(),
                s.outcome.stats.points_per_sec()
            );
        }
        rows.extend(s.outcome.points.iter().map(|p| TopoRow {
            placement: s.label.clone(),
            tensor: p.plan.tensor(),
            data: p.plan.data(),
            pipeline: p.plan.pipeline(),
            iteration_s: p.estimate.iteration_time.as_secs_f64(),
        }));
    }
    report::dump_json("fig10_topology", &rows);
}

fn main() {
    report::banner("Figure 10: MT-NLG (t, d, p) design-space exploration");
    let (model, global_batch, _) = mtnlg_workload();
    // MT-NLG trained on A100-80GB DGX nodes; allow the paper's full grid.
    let cluster = ClusterSpec::dgx_a100_80gb(16 * 32 * 105);
    let estimator = Estimator::builder(cluster.clone()).build();

    let (grid, limits) = if full_mode() {
        (
            "full",
            SearchLimits { max_tensor: 16, max_data: 32, max_pipeline: 105, max_micro_batch: 2 },
        )
    } else if smoke_mode() {
        (
            "smoke",
            SearchLimits { max_tensor: 16, max_data: 24, max_pipeline: 21, max_micro_batch: 1 },
        )
    } else {
        (
            "coarse",
            SearchLimits { max_tensor: 16, max_data: 24, max_pipeline: 35, max_micro_batch: 1 },
        )
    };
    let mut candidates = search::enumerate_candidates(
        &model,
        &cluster,
        global_batch,
        PipelineSchedule::OneFOneB,
        &limits,
    );
    if !full_mode() {
        // Thin the micro-batch-heavy low-d corner that dominates runtime.
        let min_d = if smoke_mode() { 8 } else { 4 };
        candidates.retain(|c: &ParallelConfig| c.data() >= min_d || c.pipeline() >= 15);
    }
    let goal = sweep_goal();
    println!("candidates: {} (goal {goal:?})", candidates.len());
    // One Arc-shared grid across the main sweep and the placement axis.
    let candidates: std::sync::Arc<[ParallelConfig]> = candidates.into();
    let outcome = search::Sweep::on(&estimator, &model)
        .candidates(std::sync::Arc::clone(&candidates))
        .threads(threads())
        .goal(goal)
        .run()
        .into_outcome();
    let stats = outcome.stats;
    println!(
        "feasible points: {} (swept in {:.1}s — the paper reports <200s for the full space)",
        outcome.points.len(),
        stats.wall_s
    );
    println!(
        "sweep: {} pruned pre-lowering, {} bound-pruned, {:.1} points/s, profile-cache \
         hit-rate {:.1}% ({} hits / {} misses), {} threads",
        stats.pruned,
        stats.bound_pruned,
        stats.points_per_sec(),
        stats.cache_hit_rate() * 100.0,
        stats.cache_hits,
        stats.cache_misses,
        stats.threads
    );

    let rows: Vec<Row> = outcome
        .points
        .iter()
        .map(|p| Row {
            tensor: p.plan.tensor(),
            data: p.plan.data(),
            pipeline: p.plan.pipeline(),
            micro_batch: p.plan.micro_batch(),
            gpus: p.estimate.num_gpus,
            iteration_s: p.estimate.iteration_time.as_secs_f64(),
            utilization_pct: p.estimate.utilization * 100.0,
        })
        .collect();

    // Print the t = 8 slice the paper's heat map highlights.
    println!("\nslice t = 8 (iteration seconds):");
    println!("{:>6} {:>6} {:>6} {:>10} {:>8}", "d", "p", "GPUs", "iter (s)", "util %");
    let mut slice: Vec<&Row> = rows.iter().filter(|r| r.tensor == 8).collect();
    slice.sort_by_key(|r| (r.pipeline, r.data));
    for r in slice.iter().take(40) {
        println!(
            "{:>6} {:>6} {:>6} {:>10.2} {:>8.1}",
            r.data, r.pipeline, r.gpus, r.iteration_s, r.utilization_pct
        );
    }

    // Headline observations of §V-A.
    if let Some(fastest) = rows.iter().min_by(|a, b| a.iteration_s.total_cmp(&b.iteration_s)) {
        println!(
            "\nfastest point: (t={}, d={}, p={}) {:.2}s at {:.1}% utilization on {} GPUs",
            fastest.tensor,
            fastest.data,
            fastest.pipeline,
            fastest.iteration_s,
            fastest.utilization_pct,
            fastest.gpus
        );
        println!("(the paper's (16,16,105) analogue is fast but wasteful: ~17% utilization)");
    }
    if topology_mode() {
        sweep_placements(&cluster, &model, candidates.clone(), goal);
    }
    report::dump_json("fig10_design_space", &rows);

    // Instrumentation-overhead A/B plus stage attribution, all on the
    // now-warm cache so the re-runs are apples-to-apples. Skipped under
    // `--full` (each re-run is a full-grid sweep).
    let (obs_off, obs_on, mt, delta_off, stage_profile, goal_profile) = if full_mode() {
        (None, None, None, None, None, None)
    } else {
        let rerun = |obs: bool, profile: bool, goal: SweepGoal, threads: usize, delta: bool| {
            vtrain_obs::set_enabled(obs);
            let outcome = search::Sweep::on(&estimator, &model)
                .candidates(std::sync::Arc::clone(&candidates))
                .threads(threads)
                .goal(goal)
                .stage_profile(profile)
                .delta_lowering(delta)
                .run()
                .into_outcome();
            vtrain_obs::set_enabled(false);
            outcome
        };
        // Warm-up: the first re-run after the report dump still pays
        // page-cache and allocator transients; burn them here so the
        // measured A/B passes see identical conditions.
        let _ = rerun(false, false, goal, threads(), true);
        // Every throughput arm is best-of-3: a single ~0.06 s smoke
        // re-run can lose >10% to one scheduler hiccup on the 1-core CI
        // host, and noise only ever subtracts, so the max is the
        // low-variance estimator the ratio gates need.
        let measure = |obs: bool, threads: usize, delta: bool| {
            let mut best = rerun(obs, false, goal, threads, delta);
            for _ in 0..2 {
                let outcome = rerun(obs, false, goal, threads, delta);
                if outcome.stats.points_per_sec() > best.stats.points_per_sec() {
                    best = outcome;
                }
            }
            best
        };
        let off_outcome = measure(false, threads(), true);
        let off = off_outcome.stats.points_per_sec();
        let on = measure(true, threads(), true).stats.points_per_sec();
        let profiled = rerun(false, true, goal, threads(), true);
        // Bound-guided attribution: floor pricing must show up as
        // `bound_ns`, whatever goal the CLI ran with.
        let goal_profiled = rerun(false, true, SweepGoal::Best, threads(), true);
        let threads_mt =
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).max(threads());
        let mt = measure(false, threads_mt, true).stats.points_per_sec();
        let delta_off_outcome = measure(false, threads(), false);
        let key = |p: &search::DesignPoint| {
            (
                p.plan.tensor(),
                p.plan.data(),
                p.plan.pipeline(),
                p.plan.micro_batch(),
                p.estimate.iteration_time,
            )
        };
        let delta_equivalent = off_outcome.points.len() == delta_off_outcome.points.len()
            && off_outcome
                .points
                .iter()
                .zip(&delta_off_outcome.points)
                .all(|(a, b)| key(a) == key(b));
        assert!(delta_equivalent, "delta-lowered sweep must reproduce from-scratch lowering");
        println!(
            "\ninstrumentation A/B (warm cache): {off:.1} points/s off, {on:.1} points/s on \
             ({:+.1}%)",
            (on / off - 1.0) * 100.0
        );
        println!(
            "parallel / delta A/B (warm cache): {mt:.1} points/s on {threads_mt} threads, \
             {:.1} points/s delta-off (equivalent: {delta_equivalent})",
            delta_off_outcome.stats.points_per_sec()
        );
        report::dump_raw("metrics", &vtrain_obs::global().to_json());
        (
            Some(off),
            Some(on),
            Some((mt, threads_mt)),
            Some((delta_off_outcome.stats.points_per_sec(), delta_equivalent)),
            profiled.stage_profile,
            goal_profiled.stage_profile,
        )
    };
    if let Some(profile) = &stage_profile {
        println!(
            "stage attribution: order {:.1}ms | validate {:.1}ms | bound {:.1}ms | lower {:.1}ms \
             | simulate {:.1}ms | summarize {:.1}ms ({:.1}% of {} threads x {:.2}s)",
            profile.order_ns as f64 / 1e6,
            profile.stages.validate_ns as f64 / 1e6,
            profile.bound_ns as f64 / 1e6,
            profile.stages.lower_ns as f64 / 1e6,
            profile.stages.simulate_ns as f64 / 1e6,
            profile.stages.summarize_ns as f64 / 1e6,
            profile.attributed_fraction() * 100.0,
            profile.threads,
            profile.wall_ns as f64 / 1e9
        );
    }
    report::dump_json(
        "BENCH_sweep",
        &SweepBench {
            grid,
            goal: format!("{goal:?}").to_lowercase(),
            stats,
            points_per_sec: stats.points_per_sec(),
            cache_hit_rate: stats.cache_hit_rate(),
            points_per_sec_obs_off: obs_off,
            points_per_sec_obs_on: obs_on,
            points_per_sec_mt: mt.map(|(pps, _)| pps),
            threads_mt: mt.map(|(_, n)| n),
            points_per_sec_delta_off: delta_off.map(|(pps, _)| pps),
            delta_equivalent: delta_off.map(|(_, eq)| eq),
            stage_profile,
            stage_profile_goal: goal_profile,
        },
    );
}
