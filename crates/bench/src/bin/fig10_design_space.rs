//! Figure 10: full design-space exploration of MT-NLG 530B — single-
//! iteration training time (a) and GPU compute utilization (b) over the
//! `(t, d, p)` grid.
//!
//! The default grid covers the paper's axes at a coarser density to finish
//! in minutes; pass `--full` for the complete `t ≤ 16, d ≤ 32, p ≤ 105`
//! sweep.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin fig10_design_space [-- --full]
//! ```

use serde::Serialize;
use vtrain_bench::{full_mode, mtnlg_workload, report, threads};
use vtrain_core::search::{self, SearchLimits};
use vtrain_core::Estimator;
use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule};

#[derive(Serialize)]
struct Row {
    tensor: usize,
    data: usize,
    pipeline: usize,
    micro_batch: usize,
    gpus: usize,
    iteration_s: f64,
    utilization_pct: f64,
}

fn main() {
    report::banner("Figure 10: MT-NLG (t, d, p) design-space exploration");
    let (model, global_batch, _) = mtnlg_workload();
    // MT-NLG trained on A100-80GB DGX nodes; allow the paper's full grid.
    let cluster = ClusterSpec::dgx_a100_80gb(16 * 32 * 105);
    let estimator = Estimator::new(cluster.clone());

    let limits = if full_mode() {
        SearchLimits { max_tensor: 16, max_data: 32, max_pipeline: 105, max_micro_batch: 2 }
    } else {
        SearchLimits { max_tensor: 16, max_data: 24, max_pipeline: 35, max_micro_batch: 1 }
    };
    let mut candidates = search::enumerate_candidates(
        &model,
        &cluster,
        global_batch,
        PipelineSchedule::OneFOneB,
        &limits,
    );
    if !full_mode() {
        // Thin the micro-batch-heavy low-d corner that dominates runtime.
        candidates.retain(|c: &ParallelConfig| c.data() >= 4 || c.pipeline() >= 15);
    }
    println!("candidates: {}", candidates.len());
    let started = std::time::Instant::now();
    let points = search::sweep(&estimator, &model, &candidates, threads());
    println!(
        "feasible points: {} (swept in {:.0}s — the paper reports <200s for the full space)",
        points.len(),
        started.elapsed().as_secs_f64()
    );

    let rows: Vec<Row> = points
        .iter()
        .map(|p| Row {
            tensor: p.plan.tensor(),
            data: p.plan.data(),
            pipeline: p.plan.pipeline(),
            micro_batch: p.plan.micro_batch(),
            gpus: p.estimate.num_gpus,
            iteration_s: p.estimate.iteration_time.as_secs_f64(),
            utilization_pct: p.estimate.utilization * 100.0,
        })
        .collect();

    // Print the t = 8 slice the paper's heat map highlights.
    println!("\nslice t = 8 (iteration seconds):");
    println!("{:>6} {:>6} {:>6} {:>10} {:>8}", "d", "p", "GPUs", "iter (s)", "util %");
    let mut slice: Vec<&Row> = rows.iter().filter(|r| r.tensor == 8).collect();
    slice.sort_by_key(|r| (r.pipeline, r.data));
    for r in slice.iter().take(40) {
        println!(
            "{:>6} {:>6} {:>6} {:>10.2} {:>8.1}",
            r.data, r.pipeline, r.gpus, r.iteration_s, r.utilization_pct
        );
    }

    // Headline observations of §V-A.
    if let Some(fastest) = rows.iter().min_by(|a, b| a.iteration_s.total_cmp(&b.iteration_s)) {
        println!(
            "\nfastest point: (t={}, d={}, p={}) {:.2}s at {:.1}% utilization on {} GPUs",
            fastest.tensor,
            fastest.data,
            fastest.pipeline,
            fastest.iteration_s,
            fastest.utilization_pct,
            fastest.gpus
        );
        println!("(the paper's (16,16,105) analogue is fast but wasteful: ~17% utilization)");
    }
    report::dump_json("fig10_design_space", &rows);
}
