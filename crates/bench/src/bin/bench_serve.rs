//! Serving-path smoke: boots an in-process `vtrain serve` daemon on an
//! ephemeral port, drives it with concurrent wire-frame clients, and
//! writes `results/BENCH_serve.json` (request throughput, latency
//! percentiles, cross-request cache hit-rate, degraded-mode throughput,
//! snapshot warm-restart hit-rate) for the CI perf gate.
//!
//! Four phases over the same scenario: a cold round that populates the
//! shared profile cache; warm rounds (best of 3) that are the headline
//! number — the daemon's whole value is that repeat traffic runs out of
//! cache; a degraded round against a `--degrade bound-only` daemon
//! forced to answer every sweep from the analytic floor (the
//! load-shedding fallback must itself be fast); and a snapshot
//! kill-and-restart measuring how much of the first batch a
//! warm-restored cache absorbs.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin bench_serve
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::Instant;

use serde::Serialize;
use vtrain::api::{Outcome, Report, Request, RequestKind, Response, ServerStats};
use vtrain::prelude::*;
use vtrain::serve::{DegradeMode, Server, ServerConfig};
use vtrain_bench::report;

/// The same small megatron-1.7B sweep the serve e2e tests use: big
/// enough to exercise lowering and profiling, small enough that a round
/// of requests finishes in seconds.
const SCENARIO: &str = r#"{
    "model": { "preset": "megatron-1.7B" },
    "cluster": { "preset": "aws-p4d", "total_gpus": 16 },
    "sweep": { "global_batch": 16,
               "limits": { "max_tensor": 2, "max_data": 2,
                           "max_pipeline": 2, "max_micro_batch": 1 } }
}"#;

const CLIENTS: usize = 4;
const WARM_REQUESTS_PER_CLIENT: usize = 4;

#[derive(Serialize)]
struct ServeBench {
    requests: u64,
    concurrent_clients: u64,
    workers: u64,
    requests_per_sec: f64,
    latency_p50_ms: u64,
    latency_p95_ms: u64,
    latency_p99_ms: u64,
    cache_hit_rate: f64,
    degraded_requests_per_sec: f64,
    snapshot_warm_hit_rate: f64,
}

/// Sends one request frame and blocks for its response.
fn round_trip(addr: SocketAddr, request: &Request) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.write_all(request.to_frame().as_bytes()).expect("write frame");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read response");
    serde_json::from_str(&line).expect("response parses")
}

fn sweep_request(id: String) -> Request {
    let scenario = Scenario::from_json(SCENARIO).expect("fixture parses");
    Request::new(id, RequestKind::Sweep, scenario)
}

fn stats(addr: SocketAddr) -> ServerStats {
    let frame = r#"{"v":1,"id":"stats","kind":"Stats"}"#;
    let mut stream = TcpStream::connect(addr).expect("connect to daemon");
    stream.write_all(frame.as_bytes()).expect("write frame");
    stream.write_all(b"\n").expect("write newline");
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).expect("read response");
    let response: Response = serde_json::from_str(&line).expect("stats parses");
    match response.outcome {
        Outcome::Ok(Report::Stats(s)) => s,
        other => panic!("expected stats, got {other:?}"),
    }
}

fn shutdown(addr: SocketAddr) {
    let bye = Request {
        v: vtrain::api::WIRE_VERSION,
        id: "bye".to_owned(),
        kind: RequestKind::Shutdown,
        scenario: None,
        budget: None,
        attempt: 0,
    };
    let ack = round_trip(addr, &bye);
    assert!(matches!(ack.outcome, Outcome::Ok(Report::Shutdown(_))), "shutdown acks");
}

/// One round: every client sends `per_client` sweeps concurrently.
fn round(addr: SocketAddr, per_client: usize, tag: &str) {
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let tag = tag.to_owned();
            thread::spawn(move || {
                for r in 0..per_client {
                    let response = round_trip(addr, &sweep_request(format!("{tag}-{c}-{r}")));
                    assert!(
                        matches!(response.outcome, Outcome::Ok(Report::Sweep(_))),
                        "bench sweep must succeed: {response:?}"
                    );
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
}

fn spawn(config: ServerConfig) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(ServerConfig { addr: "127.0.0.1:0".to_owned(), ..config })
        .expect("ephemeral bind succeeds");
    let addr = server.local_addr();
    (addr, thread::spawn(move || server.run().expect("serve loop")))
}

/// Phase 3: every sweep answered from the analytic floor (`--degrade
/// bound-only` with a 0 high-water mark), best-of-3 rounds.
fn degraded_phase(workers: usize) -> f64 {
    let (addr, daemon) = spawn(ServerConfig {
        workers,
        threads: Some(1),
        degrade: Some(DegradeMode::BoundOnly),
        degrade_high_water: Some(0),
        ..ServerConfig::default()
    });
    let total = CLIENTS * WARM_REQUESTS_PER_CLIENT;
    let mut best_rps = 0.0f64;
    for arm in 0..3 {
        let start = Instant::now();
        round(addr, WARM_REQUESTS_PER_CLIENT, &format!("deg{arm}"));
        let wall = start.elapsed().as_secs_f64();
        best_rps = best_rps.max(total as f64 / wall.max(1e-9));
    }
    let after = stats(addr);
    assert_eq!(
        after.degraded_responses,
        3 * total as u64,
        "a 0 high-water mark degrades every sweep"
    );
    shutdown(addr);
    daemon.join().expect("degraded daemon thread");
    best_rps
}

/// Phase 4: populate a snapshotting daemon, drain it (which persists),
/// then measure what fraction of a fresh daemon's first batch the
/// warm-restored cache absorbs.
fn snapshot_phase(workers: usize) -> f64 {
    let path = std::env::temp_dir().join(format!("vtrain-bench-snapshot-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let snapshotting = || ServerConfig {
        workers,
        threads: Some(1),
        snapshot: Some(path.clone()),
        ..ServerConfig::default()
    };
    let (addr, daemon) = spawn(snapshotting());
    round(addr, 1, "snap-populate");
    shutdown(addr);
    daemon.join().expect("snapshot daemon thread");

    let (addr, daemon) = spawn(snapshotting());
    let before = stats(addr);
    assert_eq!(before.snapshot_loads, 1, "restart warm-restores the snapshot");
    round(addr, 1, "snap-warm");
    let after = stats(addr);
    shutdown(addr);
    daemon.join().expect("restarted daemon thread");
    let _ = std::fs::remove_file(&path);

    let hits = after.cache_hits - before.cache_hits;
    let misses = after.cache_misses - before.cache_misses;
    hits as f64 / (hits + misses).max(1) as f64
}

fn main() {
    report::banner("Serving-path smoke (CI gate input)");
    let workers = vtrain_bench::threads().clamp(2, 4);
    // One estimator thread per request: concurrency comes from the
    // worker pool, so per-request fan-out would only oversubscribe.
    let (addr, daemon) =
        spawn(ServerConfig { workers, threads: Some(1), ..ServerConfig::default() });

    // Cold round: populate the shared profile cache.
    round(addr, 1, "cold");
    let after_cold = stats(addr);

    // Warm rounds: the headline. Identical scenarios must run almost
    // entirely out of cache, so this measures the serving overhead —
    // framing, admission, scheduling — not profiling. Best-of-3 damps
    // scheduler noise, as elsewhere in the bench suite.
    let warm_total = CLIENTS * WARM_REQUESTS_PER_CLIENT;
    let mut best_rps = 0.0f64;
    for arm in 0..3 {
        let start = Instant::now();
        round(addr, WARM_REQUESTS_PER_CLIENT, &format!("warm{arm}"));
        let wall = start.elapsed().as_secs_f64();
        best_rps = best_rps.max(warm_total as f64 / wall.max(1e-9));
    }
    let after_warm = stats(addr);
    shutdown(addr);
    daemon.join().expect("daemon thread");

    let degraded_rps = degraded_phase(workers);
    let snapshot_hit_rate = snapshot_phase(workers);

    let hits = after_warm.cache_hits - after_cold.cache_hits;
    let misses = after_warm.cache_misses - after_cold.cache_misses;
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let record = ServeBench {
        requests: warm_total as u64,
        concurrent_clients: CLIENTS as u64,
        workers: workers as u64,
        requests_per_sec: best_rps,
        latency_p50_ms: after_warm.latency_p50_ms,
        latency_p95_ms: after_warm.latency_p95_ms,
        latency_p99_ms: after_warm.latency_p99_ms,
        cache_hit_rate: hit_rate,
        degraded_requests_per_sec: degraded_rps,
        snapshot_warm_hit_rate: snapshot_hit_rate,
    };

    println!(
        "{} warm requests over {} clients / {} workers: {:.1} req/s, \
         p50 {} ms p95 {} ms p99 {} ms, warm hit-rate {:.4}, \
         degraded {:.1} req/s, snapshot warm hit-rate {:.4}",
        record.requests,
        record.concurrent_clients,
        record.workers,
        record.requests_per_sec,
        record.latency_p50_ms,
        record.latency_p95_ms,
        record.latency_p99_ms,
        record.cache_hit_rate,
        record.degraded_requests_per_sec,
        record.snapshot_warm_hit_rate
    );
    report::dump_json("BENCH_serve", &record);
}
