//! CI perf-regression gate.
//!
//! Compares the freshly generated `results/BENCH_sweep.json` (sweep
//! throughput), `results/BENCH_sim.json` (replay hot-loop throughput),
//! and `results/BENCH_collectives.json` (deterministic collective costs)
//! against the committed baseline
//! `crates/bench/baselines/ci_baseline.json` and exits non-zero on:
//!
//! * sweep `points_per_sec` more than `max_throughput_regression_pct`
//!   (25 %) below the baseline — a perf regression (the sweep must also
//!   be an *exhaustive*-goal run: bound-pruned sweeps are not throughput
//!   comparable);
//! * replay `tasks_per_sec` more than `max_sim_regression_pct` (30 %)
//!   below the baseline — a regression in the simulate stage alone;
//! * any collective cost drifting more than `collective_tolerance_rel`
//!   (1 ppm) from the baseline — these are deterministic model outputs,
//!   so any drift is an unintended semantic change (golden gate);
//! * the sweep record's warm-cache obs-on re-run more than
//!   `max_obs_on_regression_pct` (8 % in the committed baseline; both
//!   arms are best-of-3) slower than its obs-off twin —
//!   observability must stay near-free when enabled and exactly free
//!   when disabled (records without the A/B fields skip this gate);
//! * the every-core re-run below `min_parallel_efficiency` (0.6) of
//!   linear scaling over its warm single-thread twin — the two-level
//!   executor must not waste its thread budget (reduces to a sanity
//!   bound on single-core hosts);
//! * `delta_equivalent == false` — the delta-lowered sweep must
//!   reproduce from-scratch lowering bit for bit (records without the
//!   delta A/B fields skip both gates);
//! * serve-daemon regressions, when `results/BENCH_serve.json` exists
//!   (`bench_serve` ran): warm-traffic `requests_per_sec` more than
//!   `max_serve_regression_pct` (30 %) below the baseline's
//!   `serve_requests_per_sec`, or a warm cross-request `cache_hit_rate`
//!   below `min_serve_hit_rate` (0.96) — the shared profile cache is
//!   the daemon's reason to exist. Absent record or baseline field
//!   skips the throughput gate. Records carrying the fault-tolerance
//!   fields additionally gate degraded-mode throughput
//!   (`degraded_requests_per_sec` against the baseline's
//!   `serve_degraded_requests_per_sec`, same regression budget — the
//!   load-shedding fallback must stay cheap) and the snapshot
//!   warm-restart hit-rate (`snapshot_warm_hit_rate` at least
//!   `min_snapshot_warm_hit_rate`, 0.9) — a restarted daemon must
//!   answer its first batch from the restored cache. Absent fields
//!   skip; `--write-baseline` carries old values forward.
//! * fair-sharing network-model regressions, when
//!   `results/BENCH_flow.json` exists (`bench_flow` ran):
//!   `single_flow_ppm` above 1 ppm — the contention replay must
//!   reproduce the closed form exactly when only one flow is in flight;
//!   the overlap plan's `overlap_closed_form_ns` /
//!   `overlap_fair_sharing_ns` drifting more than
//!   `collective_tolerance_rel` from the baseline's golden values
//!   (deterministic model outputs, like the collective costs), or fair
//!   sharing not pricing the overlap plan strictly above the closed
//!   form; and `flow_events_per_sec` more than
//!   `max_flow_regression_pct` (40 %) below the baseline — a perf
//!   regression in the flow kernel itself. Absent record or baseline
//!   fields skip; `--write-baseline` carries old values forward.
//!
//! Run the three producers first (`fig10_design_space --smoke`,
//! `bench_sim`, `bench_collectives`; optionally `bench_serve` and
//! `bench_flow` for their gates). Pass `--write-baseline` to
//! regenerate the baseline from the current results after an intentional
//! change (and say why in `crates/bench/BASELINES.md`).
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin check_bench [-- --write-baseline]
//! ```

use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use serde::Value;
use vtrain_bench::report::results_dir;

fn baseline_path() -> PathBuf {
    let dir = std::env::var("VTRAIN_BASELINE_DIR")
        .unwrap_or_else(|_| "crates/bench/baselines".to_owned());
    PathBuf::from(dir).join("ci_baseline.json")
}

fn load(path: &PathBuf) -> Value {
    let text = fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("cannot read {} ({e}); run the producers first", path.display())
    });
    serde_json::value_from_str(&text)
        .unwrap_or_else(|e| panic!("cannot parse {}: {e:?}", path.display()))
}

fn points_per_sec(sweep: &Value) -> f64 {
    sweep.get("points_per_sec").and_then(Value::as_f64).expect("BENCH_sweep.points_per_sec")
}

/// The grid tag (`"smoke"` / `"coarse"` / `"full"`) a sweep record was
/// produced with. Throughput is only comparable within one grid, so the
/// gate (and the baseline writer) refuse to mix them.
fn sweep_grid(sweep: &Value) -> String {
    match sweep.get("grid") {
        Some(Value::String(g)) => g.clone(),
        other => panic!("BENCH_sweep.grid: {other:?}"),
    }
}

/// The goal tag of a sweep record. Records predating the `goal` field
/// were always exhaustive.
fn sweep_goal(sweep: &Value) -> String {
    match sweep.get("goal") {
        Some(Value::String(g)) => g.clone(),
        None => "exhaustive".to_owned(),
        other => panic!("BENCH_sweep.goal: {other:?}"),
    }
}

fn sim_tasks_per_sec(sim: &Value) -> f64 {
    sim.get("tasks_per_sec").and_then(Value::as_f64).expect("BENCH_sim.tasks_per_sec")
}

/// `(label, total_ns)` rows of `BENCH_collectives.json`.
fn collective_rows(bench: &Value) -> Vec<(String, u64)> {
    let Some(Value::Array(rows)) = bench.get("collectives") else {
        panic!("BENCH_collectives.collectives missing");
    };
    rows.iter()
        .map(|r| {
            let label = match r.get("label") {
                Some(Value::String(s)) => s.clone(),
                other => panic!("collective row label: {other:?}"),
            };
            let total = r.get("total_ns").and_then(Value::as_u64).expect("total_ns");
            (label, total)
        })
        .collect()
}

fn write_baseline(
    grid: &str,
    pps: f64,
    sim_tps: f64,
    serve_rps: Option<f64>,
    degraded_rps: Option<f64>,
    flow: Option<(f64, u64, u64)>,
    rows: &[(String, u64)],
) {
    // Carry tuned thresholds forward from the committed baseline; fall
    // back to the defaults only when no baseline exists yet.
    let (max_reg, max_sim_reg, max_obs_reg, min_eff, tol, max_serve_reg, min_hit, min_snap_hit) =
        match fs::read_to_string(baseline_path()) {
            Ok(text) => {
                let old = serde_json::value_from_str(&text).expect("existing baseline parses");
                (
                    old.get("max_throughput_regression_pct")
                        .and_then(Value::as_f64)
                        .unwrap_or(25.0),
                    old.get("max_sim_regression_pct").and_then(Value::as_f64).unwrap_or(30.0),
                    old.get("max_obs_on_regression_pct").and_then(Value::as_f64).unwrap_or(5.0),
                    old.get("min_parallel_efficiency").and_then(Value::as_f64).unwrap_or(0.6),
                    old.get("collective_tolerance_rel").and_then(Value::as_f64).unwrap_or(1e-6),
                    old.get("max_serve_regression_pct").and_then(Value::as_f64).unwrap_or(30.0),
                    old.get("min_serve_hit_rate").and_then(Value::as_f64).unwrap_or(0.96),
                    old.get("min_snapshot_warm_hit_rate").and_then(Value::as_f64).unwrap_or(0.9),
                )
            }
            Err(_) => (25.0, 30.0, 5.0, 0.6, 1e-6, 30.0, 0.96, 0.9),
        };
    let max_flow_reg = fs::read_to_string(baseline_path())
        .ok()
        .and_then(|text| {
            serde_json::value_from_str(&text)
                .ok()?
                .get("max_flow_regression_pct")
                .and_then(Value::as_f64)
        })
        .unwrap_or(40.0);
    // A baseline refresh without a fresh serve (or flow) record keeps
    // the old numbers instead of silently dropping those gates.
    let old_serve_field = |field: &'static str| {
        fs::read_to_string(baseline_path()).ok().and_then(|text| {
            serde_json::value_from_str(&text).ok()?.get(field).and_then(Value::as_f64)
        })
    };
    let old_u64_field = |field: &'static str| {
        fs::read_to_string(baseline_path()).ok().and_then(|text| {
            serde_json::value_from_str(&text).ok()?.get(field).and_then(Value::as_u64)
        })
    };
    let serve_rps = serve_rps.or_else(|| old_serve_field("serve_requests_per_sec"));
    let degraded_rps = degraded_rps.or_else(|| old_serve_field("serve_degraded_requests_per_sec"));
    let flow_eps = flow.map(|f| f.0).or_else(|| old_serve_field("flow_events_per_sec"));
    let flow_closed = flow.map(|f| f.1).or_else(|| old_u64_field("flow_overlap_closed_form_ns"));
    let flow_fair = flow.map(|f| f.2).or_else(|| old_u64_field("flow_overlap_fair_sharing_ns"));
    // Hand-rolled JSON keeps the committed baseline diff-stable
    // (one collective per line, fixed field order).
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"max_throughput_regression_pct\": {max_reg},\n"));
    out.push_str(&format!("  \"max_sim_regression_pct\": {max_sim_reg},\n"));
    out.push_str(&format!("  \"max_obs_on_regression_pct\": {max_obs_reg},\n"));
    out.push_str(&format!("  \"min_parallel_efficiency\": {min_eff},\n"));
    out.push_str(&format!("  \"collective_tolerance_rel\": {tol:e},\n"));
    out.push_str(&format!("  \"max_serve_regression_pct\": {max_serve_reg},\n"));
    out.push_str(&format!("  \"min_serve_hit_rate\": {min_hit},\n"));
    out.push_str(&format!("  \"min_snapshot_warm_hit_rate\": {min_snap_hit},\n"));
    out.push_str(&format!("  \"max_flow_regression_pct\": {max_flow_reg},\n"));
    out.push_str(&format!("  \"sweep_grid\": \"{grid}\",\n"));
    out.push_str(&format!("  \"sweep_points_per_sec\": {pps:.1},\n"));
    out.push_str(&format!("  \"sim_tasks_per_sec\": {sim_tps:.0},\n"));
    if let Some(rps) = serve_rps {
        out.push_str(&format!("  \"serve_requests_per_sec\": {rps:.1},\n"));
    }
    if let Some(rps) = degraded_rps {
        out.push_str(&format!("  \"serve_degraded_requests_per_sec\": {rps:.1},\n"));
    }
    if let Some(eps) = flow_eps {
        out.push_str(&format!("  \"flow_events_per_sec\": {eps:.0},\n"));
    }
    if let Some(ns) = flow_closed {
        out.push_str(&format!("  \"flow_overlap_closed_form_ns\": {ns},\n"));
    }
    if let Some(ns) = flow_fair {
        out.push_str(&format!("  \"flow_overlap_fair_sharing_ns\": {ns},\n"));
    }
    out.push_str("  \"collectives\": [\n");
    for (i, (label, total)) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!("    [\"{label}\", {total}]{comma}\n"));
    }
    out.push_str("  ]\n}\n");
    let path = baseline_path();
    fs::create_dir_all(path.parent().expect("baseline dir")).expect("baseline dir creatable");
    fs::write(&path, out).expect("baseline writable");
    println!("wrote {}", path.display());
}

fn main() -> ExitCode {
    let sweep = load(&results_dir().join("BENCH_sweep.json"));
    let sim = load(&results_dir().join("BENCH_sim.json"));
    let bench = load(&results_dir().join("BENCH_collectives.json"));
    // The serve record is optional: bench_serve is a separate producer
    // and older pipelines never ran it.
    let serve = fs::read_to_string(results_dir().join("BENCH_serve.json"))
        .ok()
        .map(|text| serde_json::value_from_str(&text).expect("BENCH_serve.json parses"));
    // The flow record is likewise optional: bench_flow is a separate
    // producer and older pipelines never ran it.
    let flow = fs::read_to_string(results_dir().join("BENCH_flow.json"))
        .ok()
        .map(|text| serde_json::value_from_str(&text).expect("BENCH_flow.json parses"));
    let pps = points_per_sec(&sweep);
    let grid = sweep_grid(&sweep);
    let goal = sweep_goal(&sweep);
    let sim_tps = sim_tasks_per_sec(&sim);
    let rows = collective_rows(&bench);

    if goal != "exhaustive" {
        eprintln!(
            "perf gate FAILURE: BENCH_sweep.json came from a `{goal}`-goal sweep — bound \
             pruning skips evaluations, so its throughput is not comparable to the exhaustive \
             baseline. Re-run `fig10_design_space -- --smoke` without `--goal` before gating."
        );
        return ExitCode::FAILURE;
    }

    if std::env::args().any(|a| a == "--write-baseline") {
        let serve_rps =
            serve.as_ref().and_then(|s| s.get("requests_per_sec").and_then(Value::as_f64));
        let degraded_rps =
            serve.as_ref().and_then(|s| s.get("degraded_requests_per_sec").and_then(Value::as_f64));
        let flow_triple = flow.as_ref().and_then(|f| {
            Some((
                f.get("flow_events_per_sec").and_then(Value::as_f64)?,
                f.get("overlap_closed_form_ns").and_then(Value::as_u64)?,
                f.get("overlap_fair_sharing_ns").and_then(Value::as_u64)?,
            ))
        });
        write_baseline(&grid, pps, sim_tps, serve_rps, degraded_rps, flow_triple, &rows);
        return ExitCode::SUCCESS;
    }

    let baseline = load(&baseline_path());
    let base_grid = match baseline.get("sweep_grid") {
        Some(Value::String(g)) => g.clone(),
        other => panic!("baseline.sweep_grid: {other:?}"),
    };
    if grid != base_grid {
        eprintln!(
            "perf gate FAILURE: BENCH_sweep.json came from the `{grid}` grid but the baseline \
             records `{base_grid}` — throughput is only comparable within one grid. Re-run \
             `fig10_design_space -- --{base_grid}` before gating."
        );
        return ExitCode::FAILURE;
    }
    let max_reg_pct = baseline
        .get("max_throughput_regression_pct")
        .and_then(Value::as_f64)
        .expect("baseline.max_throughput_regression_pct");
    let tol = baseline
        .get("collective_tolerance_rel")
        .and_then(Value::as_f64)
        .expect("baseline.collective_tolerance_rel");
    let base_pps = baseline
        .get("sweep_points_per_sec")
        .and_then(Value::as_f64)
        .expect("baseline.sweep_points_per_sec");

    let mut failures = Vec::new();

    let floor = base_pps * (1.0 - max_reg_pct / 100.0);
    println!(
        "sweep throughput: {pps:.1} points/s (baseline {base_pps:.1}, floor {floor:.1} at \
         -{max_reg_pct:.0}%)"
    );
    if pps < floor {
        failures.push(format!(
            "sweep throughput regressed: {pps:.1} points/s < floor {floor:.1} \
             ({:.1}% below the {base_pps:.1} baseline)",
            (1.0 - pps / base_pps) * 100.0
        ));
    }

    // Replay hot-loop gate (absent from pre-PR-4 baselines: then skipped
    // with a warning so `--write-baseline` can bootstrap the field).
    match baseline.get("sim_tasks_per_sec").and_then(Value::as_f64) {
        None => println!("replay throughput: {sim_tps:.0} tasks/s (no baseline yet — not gated)"),
        Some(base_sim) => {
            let max_sim_reg =
                baseline.get("max_sim_regression_pct").and_then(Value::as_f64).unwrap_or(30.0);
            let sim_floor = base_sim * (1.0 - max_sim_reg / 100.0);
            println!(
                "replay throughput: {:.2} Mtasks/s (baseline {:.2}, floor {:.2} at -{:.0}%)",
                sim_tps / 1e6,
                base_sim / 1e6,
                sim_floor / 1e6,
                max_sim_reg
            );
            if sim_tps < sim_floor {
                failures.push(format!(
                    "replay throughput regressed: {:.2} Mtasks/s < floor {:.2} \
                     ({:.1}% below the {:.2} Mtasks/s baseline)",
                    sim_tps / 1e6,
                    sim_floor / 1e6,
                    (1.0 - sim_tps / base_sim) * 100.0,
                    base_sim / 1e6
                ));
            }
        }
    }

    // Instrumentation-overhead gate: the warm-cache obs-on re-run must
    // stay within `max_obs_on_regression_pct` of its obs-off twin. Both
    // fields come from the same BENCH_sweep.json record, so the pair is
    // always apples-to-apples; `--full` runs (and pre-obs producers)
    // omit them and skip the gate.
    let obs_pair = sweep
        .get("points_per_sec_obs_off")
        .and_then(Value::as_f64)
        .zip(sweep.get("points_per_sec_obs_on").and_then(Value::as_f64));
    match obs_pair {
        None => println!("instrumentation overhead: not recorded in BENCH_sweep.json — not gated"),
        Some((obs_off, obs_on)) => {
            let max_obs_reg =
                baseline.get("max_obs_on_regression_pct").and_then(Value::as_f64).unwrap_or(5.0);
            let obs_floor = obs_off * (1.0 - max_obs_reg / 100.0);
            println!(
                "instrumentation overhead: {obs_on:.1} points/s with obs on vs {obs_off:.1} off \
                 (floor {obs_floor:.1} at -{max_obs_reg:.0}%)"
            );
            if obs_on < obs_floor {
                failures.push(format!(
                    "instrumentation overhead too high: {obs_on:.1} points/s with obs on < floor \
                     {obs_floor:.1} ({:.1}% below the {obs_off:.1} points/s obs-off twin)",
                    (1.0 - obs_on / obs_off) * 100.0
                ));
            }
        }
    }

    // Parallel-efficiency gate: the every-core re-run must deliver at
    // least `min_parallel_efficiency` (0.6) of linear scaling over its
    // warm single-thread twin. On a single-core host (`threads_mt == 1`)
    // this reduces to a same-conditions sanity bound; records without
    // the fields (old producers, `--full` runs) skip the gate.
    let mt_pair = sweep
        .get("points_per_sec_mt")
        .and_then(Value::as_f64)
        .zip(sweep.get("threads_mt").and_then(Value::as_u64));
    match mt_pair {
        None => println!("parallel efficiency: not recorded in BENCH_sweep.json — not gated"),
        Some((pps_mt, threads_mt)) => {
            // The warm obs-off re-run is the apples-to-apples
            // single-thread comparator; fall back to the cold headline
            // number for records without the A/B fields.
            let pps_1t = sweep.get("points_per_sec_obs_off").and_then(Value::as_f64).unwrap_or(pps);
            let min_eff =
                baseline.get("min_parallel_efficiency").and_then(Value::as_f64).unwrap_or(0.6);
            let mt_floor = pps_1t * threads_mt as f64 * min_eff;
            println!(
                "parallel efficiency: {pps_mt:.1} points/s on {threads_mt} thread(s) vs \
                 {pps_1t:.1} on one (floor {mt_floor:.1} at {min_eff}x linear)"
            );
            if pps_mt < mt_floor {
                failures.push(format!(
                    "parallel efficiency too low: {pps_mt:.1} points/s on {threads_mt} thread(s) \
                     < floor {mt_floor:.1} ({min_eff}x linear over the {pps_1t:.1} points/s \
                     single-thread twin)"
                ));
            }
        }
    }

    // Delta-equivalence gate: when the producer ran the delta-off A/B,
    // the delta-lowered sweep must have reproduced the from-scratch
    // points exactly — a `false` here means the patching invariant broke.
    match sweep.get("delta_equivalent") {
        None => println!("delta equivalence: not recorded in BENCH_sweep.json — not gated"),
        Some(Value::Bool(true)) => {
            let delta_pps =
                sweep.get("points_per_sec_delta_off").and_then(Value::as_f64).unwrap_or(f64::NAN);
            println!(
                "delta equivalence: delta-on points match from-scratch lowering \
                 (delta-off twin ran at {delta_pps:.1} points/s)"
            );
        }
        Some(other) => failures.push(format!(
            "delta-lowered sweep diverged from from-scratch lowering \
             (BENCH_sweep.delta_equivalent = {other:?})"
        )),
    }

    // Serve-daemon gate: only when bench_serve produced a record. The
    // hit-rate bound is unconditional (warm traffic over an identical
    // scenario is deterministic up to scheduling); the throughput floor
    // additionally needs a baseline field, which `--write-baseline`
    // bootstraps.
    match &serve {
        None => println!("serve throughput: BENCH_serve.json not present — not gated"),
        Some(record) => {
            let rps =
                record.get("requests_per_sec").and_then(Value::as_f64).expect("serve rps recorded");
            let hit_rate =
                record.get("cache_hit_rate").and_then(Value::as_f64).expect("serve hit rate");
            let min_hit =
                baseline.get("min_serve_hit_rate").and_then(Value::as_f64).unwrap_or(0.96);
            if hit_rate < min_hit {
                failures.push(format!(
                    "serve warm hit-rate too low: {hit_rate:.4} < {min_hit} — repeat traffic is \
                     not being answered from the shared profile cache"
                ));
            }
            match baseline.get("serve_requests_per_sec").and_then(Value::as_f64) {
                None => println!(
                    "serve throughput: {rps:.1} req/s, warm hit-rate {hit_rate:.4} \
                     (no baseline yet — throughput not gated)"
                ),
                Some(base_rps) => {
                    let max_serve_reg = baseline
                        .get("max_serve_regression_pct")
                        .and_then(Value::as_f64)
                        .unwrap_or(30.0);
                    let serve_floor = base_rps * (1.0 - max_serve_reg / 100.0);
                    println!(
                        "serve throughput: {rps:.1} req/s, warm hit-rate {hit_rate:.4} \
                         (baseline {base_rps:.1}, floor {serve_floor:.1} at -{max_serve_reg:.0}%)"
                    );
                    if rps < serve_floor {
                        failures.push(format!(
                            "serve throughput regressed: {rps:.1} req/s < floor {serve_floor:.1} \
                             ({:.1}% below the {base_rps:.1} baseline)",
                            (1.0 - rps / base_rps) * 100.0
                        ));
                    }
                }
            }

            // Degraded-mode throughput: the bound-only fallback is what a
            // saturated daemon answers with, so it regressing defeats the
            // point of degrading instead of shedding. Same regression
            // budget as the healthy path; absent fields (older producers
            // or baselines) skip.
            let degraded_pair = record
                .get("degraded_requests_per_sec")
                .and_then(Value::as_f64)
                .zip(baseline.get("serve_degraded_requests_per_sec").and_then(Value::as_f64));
            match degraded_pair {
                None => println!(
                    "serve degraded throughput: record or baseline field absent — not gated"
                ),
                Some((deg_rps, base_deg)) => {
                    let max_serve_reg = baseline
                        .get("max_serve_regression_pct")
                        .and_then(Value::as_f64)
                        .unwrap_or(30.0);
                    let deg_floor = base_deg * (1.0 - max_serve_reg / 100.0);
                    println!(
                        "serve degraded throughput: {deg_rps:.1} req/s (baseline {base_deg:.1}, \
                         floor {deg_floor:.1} at -{max_serve_reg:.0}%)"
                    );
                    if deg_rps < deg_floor {
                        failures.push(format!(
                            "degraded-mode throughput regressed: {deg_rps:.1} req/s < floor \
                             {deg_floor:.1} ({:.1}% below the {base_deg:.1} baseline)",
                            (1.0 - deg_rps / base_deg) * 100.0
                        ));
                    }
                }
            }

            // Snapshot warm-restart hit-rate: like the warm-cache bound,
            // this is deterministic up to scheduling, so it gates
            // unconditionally whenever the producer recorded it.
            match record.get("snapshot_warm_hit_rate").and_then(Value::as_f64) {
                None => println!("snapshot warm hit-rate: not recorded — not gated"),
                Some(snap_hit) => {
                    let min_snap_hit = baseline
                        .get("min_snapshot_warm_hit_rate")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.9);
                    println!("snapshot warm hit-rate: {snap_hit:.4} (floor {min_snap_hit})");
                    if snap_hit < min_snap_hit {
                        failures.push(format!(
                            "snapshot warm-restart hit-rate too low: {snap_hit:.4} < \
                             {min_snap_hit} — a restarted daemon is not answering its first \
                             batch from the restored cache"
                        ));
                    }
                }
            }
        }
    }

    // Flow-model gate: only when bench_flow produced a record. The
    // equivalence anchor and the fair-above-closed ordering are
    // deterministic model outputs and gate unconditionally; the overlap
    // costs are golden-gated against the baseline like the collectives,
    // and the kernel throughput floor needs a baseline field, which
    // `--write-baseline` bootstraps.
    match &flow {
        None => println!("flow model: BENCH_flow.json not present — not gated"),
        Some(record) => {
            let ppm = record
                .get("single_flow_ppm")
                .and_then(Value::as_f64)
                .expect("single-flow ppm recorded");
            println!("flow single-flow anchor: {ppm:.3} ppm vs closed form (bound 1 ppm)");
            if ppm > 1.0 {
                failures.push(format!(
                    "fair sharing diverges from the closed form on a single flow: {ppm:.3} ppm \
                     > 1 ppm — the progressive-filling drain no longer matches the analytic cost"
                ));
            }

            let closed = record
                .get("overlap_closed_form_ns")
                .and_then(Value::as_u64)
                .expect("overlap closed-form cost recorded");
            let fair = record
                .get("overlap_fair_sharing_ns")
                .and_then(Value::as_u64)
                .expect("overlap fair-sharing cost recorded");
            if fair <= closed {
                failures.push(format!(
                    "fair sharing no longer prices contention: overlap plan {fair} ns <= \
                     closed-form {closed} ns"
                ));
            }
            let golden = [
                ("closed-form", closed, "flow_overlap_closed_form_ns"),
                ("fair-sharing", fair, "flow_overlap_fair_sharing_ns"),
            ];
            for (label, got, field) in golden {
                match baseline.get(field).and_then(Value::as_u64) {
                    None => println!(
                        "flow overlap ({label}): {got} ns (no baseline yet — drift not gated)"
                    ),
                    Some(want) => {
                        let rel = (got as f64 - want as f64).abs() / (want as f64).max(1.0);
                        println!(
                            "flow overlap ({label}): {got} ns (baseline {want} ns, drift {rel:.2e})"
                        );
                        if rel > tol {
                            failures.push(format!(
                                "flow overlap cost ({label}) drifted: {got} ns vs baseline \
                                 {want} ns (rel {rel:.2e} > {tol:.0e})"
                            ));
                        }
                    }
                }
            }

            let eps = record
                .get("flow_events_per_sec")
                .and_then(Value::as_f64)
                .expect("flow kernel throughput recorded");
            match baseline.get("flow_events_per_sec").and_then(Value::as_f64) {
                None => println!(
                    "flow kernel: {:.2} Mevents/s (no baseline yet — throughput not gated)",
                    eps / 1e6
                ),
                Some(base_eps) => {
                    let max_flow_reg = baseline
                        .get("max_flow_regression_pct")
                        .and_then(Value::as_f64)
                        .unwrap_or(40.0);
                    let flow_floor = base_eps * (1.0 - max_flow_reg / 100.0);
                    println!(
                        "flow kernel: {:.2} Mevents/s (baseline {:.2}, floor {:.2} at \
                         -{max_flow_reg:.0}%)",
                        eps / 1e6,
                        base_eps / 1e6,
                        flow_floor / 1e6
                    );
                    if eps < flow_floor {
                        failures.push(format!(
                            "flow kernel throughput regressed: {:.2} Mevents/s < floor {:.2} \
                             ({:.1}% below the {:.2} Mevents/s baseline)",
                            eps / 1e6,
                            flow_floor / 1e6,
                            (1.0 - eps / base_eps) * 100.0,
                            base_eps / 1e6
                        ));
                    }
                }
            }
        }
    }

    let Some(Value::Array(base_rows)) = baseline.get("collectives") else {
        panic!("baseline.collectives missing");
    };
    let lookup = |label: &str| -> Option<u64> {
        base_rows.iter().find_map(|pair| match pair {
            Value::Array(kv) if kv.len() == 2 => match (&kv[0], kv[1].as_u64()) {
                (Value::String(l), Some(t)) if l == label => Some(t),
                _ => None,
            },
            _ => None,
        })
    };
    for (label, got) in &rows {
        match lookup(label) {
            None => failures.push(format!("collective `{label}` missing from the baseline")),
            Some(want) => {
                let rel = (*got as f64 - want as f64).abs() / (want as f64).max(1.0);
                if rel > tol {
                    failures.push(format!(
                        "collective `{label}` drifted: {got} ns vs baseline {want} ns \
                         (rel {rel:.2e} > {tol:.0e})"
                    ));
                }
            }
        }
    }
    // Symmetric check: a scenario silently dropped from the producer is
    // a gating hole, not a pass.
    for pair in base_rows {
        if let Value::Array(kv) = pair {
            if let Value::String(label) = &kv[0] {
                if !rows.iter().any(|(l, _)| l == label) {
                    failures.push(format!(
                        "baseline collective `{label}` is no longer produced by bench_collectives"
                    ));
                }
            }
        }
    }
    println!("collective costs: {} scenarios checked against the baseline", rows.len());

    if failures.is_empty() {
        println!("perf gate: PASS");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("perf gate FAILURE: {f}");
        }
        eprintln!(
            "perf gate: FAIL ({} issue(s)). If intentional, regenerate with \
             `check_bench -- --write-baseline` and document it in crates/bench/BASELINES.md.",
            failures.len()
        );
        ExitCode::FAILURE
    }
}
