//! Table II: predicted vs measured single-iteration training time for the
//! scaled-down Megatron models (3.6B / 18.4B / 39.1B on 64 / 256 / 512
//! GPUs), comparing the published \[40\] plans against vTrain's uncovered
//! plans on BOTH timelines.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin tab02_scaledown_validation
//! ```

use serde::Serialize;
use vtrain_bench::{plan, report, table_ii_rows};
use vtrain_core::Estimator;
use vtrain_gpu::{NoiseConfig, NoiseModel};
use vtrain_model::presets;
use vtrain_parallel::ClusterSpec;

#[derive(Serialize)]
struct Row {
    model: String,
    gpus: usize,
    plan: String,
    source: &'static str,
    predicted_s: f64,
    measured_s: f64,
}

fn main() {
    report::banner("Table II: scale-down validation of uncovered plans");
    // Table II's measured values average many iterations of the same
    // job, cancelling per-configuration runtime variability; the
    // systematic effects (contention, launches, stragglers) remain.
    let noise =
        NoiseModel::new(NoiseConfig { iteration_bias_sigma: 0.0, ..NoiseConfig::default() });
    // Batch sizes follow [40]'s weak-scaling setup per model size.
    let batches = [512usize, 1024, 1536];

    println!(
        "{:<7} {:>5} {:<18} {:>12} {:>12}",
        "params", "GPUs", "(t, d, p, m)", "predicted", "measured"
    );
    let mut rows = Vec::new();
    // The per-row estimators model different cluster sizes of the same
    // GPU, so one shared profile cache serves all of them.
    let cache = std::sync::Arc::new(vtrain_profile::ProfileCache::new());
    for ((label, gpus, published, ours), batch) in table_ii_rows().into_iter().zip(batches) {
        let model = presets::megatron(&format!("{label}B"));
        // [40]'s runs were on Selene-class DGX A100-80GB nodes; the
        // (8, 32, 1)-style plans need the 80 GB capacity.
        let estimator = Estimator::builder(ClusterSpec::dgx_a100_80gb(gpus))
            .cache(std::sync::Arc::clone(&cache))
            .build();
        let mut row_pair = Vec::new();
        for (source, tdpm) in [("[40]", published), ("Ours", ours)] {
            let p = plan(tdpm, batch);
            let pred = estimator.estimate(&model, &p).expect("published plan feasible");
            let meas = estimator.measure_with(&model, &p, &noise).expect("plan feasible");
            println!(
                "{:<7} {:>5} {:<18} {:>11.3}s {:>11.3}s   ({source})",
                label,
                gpus,
                format!("({}, {}, {}, {})", tdpm.0, tdpm.1, tdpm.2, tdpm.3),
                pred.iteration_time.as_secs_f64(),
                meas.iteration_time.as_secs_f64()
            );
            row_pair.push(Row {
                model: model.name().to_owned(),
                gpus,
                plan: format!("({}, {}, {}, {})", tdpm.0, tdpm.1, tdpm.2, tdpm.3),
                source,
                predicted_s: pred.iteration_time.as_secs_f64(),
                measured_s: meas.iteration_time.as_secs_f64(),
            });
        }
        let [published_row, ours_row] = &row_pair[..] else { unreachable!() };
        println!(
            "        -> ours vs [40]: predicted {:+.1}%, measured {:+.1}%",
            100.0 * (ours_row.predicted_s / published_row.predicted_s - 1.0),
            100.0 * (ours_row.measured_s / published_row.measured_s - 1.0)
        );
        rows.extend(row_pair);
    }
    report::dump_json("tab02_scaledown_validation", &rows);
}
