//! Fair-sharing network-model bench: writes `results/BENCH_flow.json`
//! for the CI perf-regression gate (`check_bench` compares it against
//! `crates/bench/baselines/ci_baseline.json`).
//!
//! Three measurements:
//!
//! * **Equivalence anchor** — a serial-communication plan priced under
//!   both backends; `single_flow_ppm` is the relative deviation in parts
//!   per million (gated at ≤ 1 ppm; in practice the drain is bit-exact).
//! * **Contention cost** — a pipeline-heavy overlap plan priced under
//!   both backends; the two iteration times are deterministic model
//!   outputs, golden-gated like the collective costs, and the producer
//!   itself asserts fair sharing is strictly slower on this plan.
//! * **Flow-kernel throughput** — a [`FlowSim`] microbench: a bounded
//!   window of concurrent inter-node flows joining and draining;
//!   `flow_events_per_sec` is refills per wall-second, best of 3.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin bench_flow
//! ```

use std::time::Instant;

use serde::Serialize;
use vtrain_bench::report;
use vtrain_core::Estimator;
use vtrain_model::presets;
use vtrain_net::flow::{FlowPhase, FlowProgram, FlowSim};
use vtrain_net::NetworkBackend;
use vtrain_parallel::{ClusterSpec, ParallelConfig};

#[derive(Serialize)]
struct FlowBench {
    /// FlowSim refills per wall-second (best of 3).
    flow_events_per_sec: f64,
    /// Relative closed-form/fair-sharing deviation on a serial plan, ppm.
    single_flow_ppm: f64,
    /// Deterministic overlap-plan iteration time, closed form.
    overlap_closed_form_ns: u64,
    /// Deterministic overlap-plan iteration time, fair sharing.
    overlap_fair_sharing_ns: u64,
}

fn plan(t: usize, d: usize, p: usize, m: usize, b: usize) -> ParallelConfig {
    ParallelConfig::builder()
        .tensor(t)
        .data(d)
        .pipeline(p)
        .micro_batch(m)
        .global_batch(b)
        .build()
        .unwrap()
}

/// Iteration time of `plan` on `gpus` A100s under `backend`, ns.
fn price(gpus: usize, plan: &ParallelConfig, backend: NetworkBackend) -> u64 {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(gpus)).network(backend).build();
    let model = presets::megatron("1.7B");
    estimator.estimate(&model, plan).unwrap().iteration_time.as_nanos()
}

/// One pass of the flow-kernel microbench: `total` single-phase
/// inter-node flows pushed through a window of at most `flight`
/// concurrent flows. Returns `(refills, wall seconds)`.
fn flow_kernel_pass(total: usize, flight: usize) -> (u64, f64) {
    let topo = ClusterSpec::aws_p4d(64).topology(1.0);
    let program = FlowProgram {
        phases: vec![FlowPhase { tier: 1, work: 64.0 * 1024.0 * 1024.0, latency_rounds: 1 }],
    };
    let mut sim = FlowSim::new(&topo);
    let start = Instant::now();
    for _ in 0..total {
        while sim.active() >= flight {
            let at = sim.next_event().expect("active flows have a next boundary");
            sim.advance(at);
        }
        let now = sim.now();
        sim.start(now, program.clone());
    }
    sim.drain_all();
    (sim.refills(), start.elapsed().as_secs_f64())
}

fn main() {
    report::banner("Fair-sharing network model (CI gate input)");

    // A serial-communication plan: one simulated comm stream, so flows
    // never overlap and the two backends must agree.
    let serial = plan(8, 2, 1, 1, 8);
    let closed = price(16, &serial, NetworkBackend::ClosedForm);
    let fair = price(16, &serial, NetworkBackend::FairSharing);
    let single_flow_ppm = (fair as f64 - closed as f64).abs() / closed as f64 * 1e6;
    println!("single-flow anchor: closed {closed} ns, fair {fair} ns ({single_flow_ppm:.3} ppm)");

    // A pipeline-heavy plan whose boundary transfers and gradient
    // all-reduces overlap on the inter-node tier: contention must cost.
    let overlap = plan(2, 4, 4, 1, 32);
    let overlap_closed = price(32, &overlap, NetworkBackend::ClosedForm);
    let overlap_fair = price(32, &overlap, NetworkBackend::FairSharing);
    println!("overlap plan: closed {overlap_closed} ns, fair {overlap_fair} ns");
    assert!(
        overlap_fair > overlap_closed,
        "fair sharing must price overlap-heavy communication above the closed form"
    );

    let mut flow_events_per_sec = 0.0f64;
    for _ in 0..3 {
        let (events, secs) = flow_kernel_pass(50_000, 64);
        flow_events_per_sec = flow_events_per_sec.max(events as f64 / secs);
    }
    println!("flow kernel: {:.2} Mevents/s (best of 3)", flow_events_per_sec / 1e6);

    report::dump_json(
        "BENCH_flow",
        &FlowBench {
            flow_events_per_sec,
            single_flow_ppm,
            overlap_closed_form_ns: overlap_closed,
            overlap_fair_sharing_ns: overlap_fair,
        },
    );
}
