//! Figure 13: average job completion time under a deadline-free setting —
//! nine 32-job traces, normalized to ElasticFlow (paper: vTrain reduces
//! JCT by 15.21% on average and never loses).
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin fig13_jct
//! ```

use serde::Serialize;
use vtrain_bench::report;
use vtrain_bench::sched::{table_iii_catalog, CLUSTER_GPUS};
use vtrain_cluster::{
    generate_trace, simulate_cluster, ProfilePolicy, SchedulerConfig, TraceConfig,
};
use vtrain_model::TimeNs;

#[derive(Serialize)]
struct Row {
    trace: u64,
    elasticflow_jct_s: f64,
    vtrain_jct_s: f64,
    normalized: f64,
}

fn main() {
    let catalog = table_iii_catalog();
    report::banner("Figure 13: average JCT, deadline-free, 32-job traces");
    println!("{:>6} {:>16} {:>14} {:>12}", "trace", "ElasticFlow (h)", "vTrain (h)", "normalized");
    let mut rows = Vec::new();
    let mut sum_norm = 0.0;
    for trace_id in 1..=9u64 {
        let trace = generate_trace(
            &TraceConfig {
                num_jobs: 32,
                seed: 100 + trace_id,
                arrival_window: TimeNs::from_secs(100 * 3600),
                deadline_lambda: None,
                iterations: (500, 4000),
            },
            &catalog,
        );
        let base = simulate_cluster(
            &trace,
            &catalog,
            &SchedulerConfig::new(CLUSTER_GPUS, ProfilePolicy::DataParallelOnly),
        );
        let vt = simulate_cluster(
            &trace,
            &catalog,
            &SchedulerConfig::new(CLUSTER_GPUS, ProfilePolicy::VTrainOptimal),
        );
        let b = base.average_jct(&trace).expect("all jobs finish").as_secs_f64();
        let v = vt.average_jct(&trace).expect("all jobs finish").as_secs_f64();
        let norm = v / b;
        sum_norm += norm;
        println!("{trace_id:>6} {:>16.2} {:>14.2} {norm:>12.3}", b / 3600.0, v / 3600.0);
        rows.push(Row { trace: trace_id, elasticflow_jct_s: b, vtrain_jct_s: v, normalized: norm });
    }
    println!(
        "{:>6} {:>16} {:>14} {:>12.3}   (paper avg: 0.848, i.e. −15.21%)",
        "avg",
        "",
        "",
        sum_norm / 9.0
    );
    report::dump_json("fig13_jct", &rows);
}
