//! Figure 9: validation of vTrain-predicted vs measured single-iteration
//! training time — (a) single-node (paper: 1,440 points, MAPE 8.37%,
//! R² 0.9896) and (b) multi-node (paper: 116 points, MAPE 14.73%,
//! R² 0.9887). Also reproduces the §IV α-calibration sweep.
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin fig09_validation
//! ```

use serde::Serialize;
use vtrain_bench::{points, report, stats, threads};
use vtrain_core::Estimator;
use vtrain_gpu::{NoiseConfig, NoiseModel};
use vtrain_model::ModelConfig;
use vtrain_parallel::{ClusterSpec, ParallelConfig};

#[derive(Serialize)]
struct Scatter {
    label: String,
    predicted_s: f64,
    measured_s: f64,
}

#[derive(Serialize)]
struct Summary {
    points: usize,
    mape_pct: f64,
    r_squared: f64,
    paper_mape_pct: f64,
    paper_r_squared: f64,
}

fn run(
    name: &str,
    cluster: ClusterSpec,
    pts: &[(ModelConfig, ParallelConfig)],
    paper: (f64, f64),
) -> Vec<(f64, f64)> {
    let estimator = Estimator::builder(cluster).build();
    let noise = NoiseModel::new(NoiseConfig::default());
    // Fan the points out across threads (each is independent).
    let chunked: Vec<Vec<(usize, f64, f64)>> = std::thread::scope(|scope| {
        let n = threads();
        let mut handles = Vec::new();
        for w in 0..n {
            let estimator = &estimator;
            let noise = &noise;
            handles.push(scope.spawn(move || {
                let mut out = Vec::new();
                for (i, (model, plan)) in pts.iter().enumerate() {
                    if i % n != w {
                        continue;
                    }
                    let (Ok(pred), Ok(meas)) = (
                        estimator.estimate(model, plan),
                        estimator.measure_with(model, plan, noise),
                    ) else {
                        continue;
                    };
                    out.push((
                        i,
                        pred.iteration_time.as_secs_f64(),
                        meas.iteration_time.as_secs_f64(),
                    ));
                }
                out
            }));
        }
        handles.into_iter().map(|h| h.join().expect("validation worker")).collect()
    });
    let mut indexed: Vec<(usize, f64, f64)> = chunked.into_iter().flatten().collect();
    indexed.sort_by_key(|&(i, _, _)| i);
    let pairs: Vec<(f64, f64)> = indexed.iter().map(|&(_, p, m)| (p, m)).collect();

    let (mape, r2) = (stats::mape(&pairs), stats::r_squared(&pairs));
    report::banner(&format!("Figure 9{name}"));
    println!("points: {}", pairs.len());
    println!("MAPE:   {mape:.2}%   (paper: {:.2}%)", paper.0);
    println!("R²:     {r2:.4}  (paper: {:.4})", paper.1);

    let scatter: Vec<Scatter> = indexed
        .iter()
        .map(|&(i, p, m)| Scatter {
            label: format!("{} {}", pts[i].0.name(), pts[i].1),
            predicted_s: p,
            measured_s: m,
        })
        .collect();
    report::dump_json(&format!("fig09{name}_scatter"), &scatter);
    report::dump_json(
        &format!("fig09{name}_summary"),
        &Summary {
            points: pairs.len(),
            mape_pct: mape,
            r_squared: r2,
            paper_mape_pct: paper.0,
            paper_r_squared: paper.1,
        },
    );
    pairs
}

fn alpha_sweep() {
    report::banner("§IV: bandwidth-effectiveness (α) calibration sweep");
    // Calibrate α the way practitioners do (nccl-tests style): compare the
    // Equation (1) analytical prediction against measured inter-node
    // All-Reduce latencies across payload sizes and node counts, and pick
    // the α minimizing the error.
    use vtrain_gpu::comm::InterNodeModel;
    use vtrain_model::{Bytes, TimeNs};
    let cluster = ClusterSpec::aws_p4d(512);
    let noise = NoiseModel::new(NoiseConfig::default());
    let reference =
        InterNodeModel::new(cluster.internode_bandwidth, 1.0, cluster.internode_latency);

    // "Measured" collectives: the emulated fat-tree delivers the full link
    // rate, perturbed by launch jitter and straggler pacing.
    let mut measured = Vec::new();
    let mut id = 0u64;
    for nodes in [2usize, 4, 8, 16, 32, 64] {
        for mib in [1u64, 8, 64, 256, 1024] {
            let clean = reference.all_reduce(Bytes::from_mib(mib), nodes);
            let t = noise.comm_time(id, clean, false, 1).scale(noise.sync_straggler_factor(nodes));
            measured.push((nodes, mib, t));
            id += 1;
        }
    }

    println!("{:>6} {:>10}", "alpha", "MAPE (%)");
    let mut best = (f64::MAX, 0.0);
    for alpha10 in 1..=10 {
        let alpha = alpha10 as f64 / 10.0;
        let model =
            InterNodeModel::new(cluster.internode_bandwidth, alpha, cluster.internode_latency);
        let pairs: Vec<(f64, f64)> = measured
            .iter()
            .map(|&(nodes, mib, t)| {
                let pred = model.all_reduce(Bytes::from_mib(mib), nodes);
                (pred.as_secs_f64(), t.as_secs_f64())
            })
            .collect();
        let mape = stats::mape(&pairs);
        println!("{alpha:>6.1} {mape:>10.2}");
        if mape < best.0 {
            best = (mape, alpha);
        }
    }
    println!("error minimized at α = {:.1} (paper: 1.0)", best.1);
    let _ = TimeNs::ZERO;
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let single = args.iter().any(|a| a == "--single-node");
    let multi = args.iter().any(|a| a == "--multi-node");
    let all = !(single || multi);

    if single || all {
        let pts = points::single_node_points();
        run("a_single_node", ClusterSpec::aws_p4d(8), &pts, (8.37, 0.9896));
    }
    if multi || all {
        let pts = points::multi_node_points();
        run("b_multi_node", ClusterSpec::aws_p4d(512), &pts, (14.73, 0.9887));
        alpha_sweep();
    }
}
