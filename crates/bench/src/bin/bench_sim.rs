//! Replay-hot-loop smoke: times the Algorithm 1 dataflow replay over a
//! fixed pre-lowered task graph and writes `results/BENCH_sim.json` for
//! the CI perf-regression gate (`check_bench` compares its
//! `tasks_per_sec` against `crates/bench/baselines/ci_baseline.json`,
//! alongside the sweep-throughput and collective-cost gates).
//!
//! The workload is the replay alone — lowering runs once up front — so
//! the gate isolates regressions in the simulate stage from the rest of
//! the sweep pipeline (`BENCH_sweep.json` covers the end-to-end path).
//!
//! ```sh
//! cargo run --release -p vtrain-bench --bin bench_sim
//! ```

use std::time::Instant;

use serde::Serialize;
use vtrain_bench::report;
use vtrain_core::{simulate_into, Estimator, SimMode, SimReport, SimScratch, StageNanos};
use vtrain_model::presets;
use vtrain_parallel::{ClusterSpec, ParallelConfig};

#[derive(Serialize)]
struct SimBench {
    workload: String,
    tasks: usize,
    replays: usize,
    /// Median across timed replays (robust to CI noise).
    tasks_per_sec: f64,
    ns_per_task: f64,
    /// Mean per-estimate stage attribution of the unfused staged
    /// pipeline on the same workload (validate/lower/simulate/summarize).
    stage_profile: StageNanos,
}

fn main() {
    report::banner("Replay hot-loop smoke (CI gate input)");
    // Mid-size reference point: large enough that per-replay overhead
    // vanishes, small enough to finish in well under a second per replay
    // on the CI container.
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(512)).build();
    let model = presets::megatron("18.4B");
    let plan = ParallelConfig::builder()
        .tensor(8)
        .data(4)
        .pipeline(4)
        .micro_batch(1)
        .global_batch(128)
        .build()
        .expect("reference plan is arithmetically valid");
    estimator.validate(&model, &plan).expect("reference plan feasible");
    let graph = estimator.lower(&model, &plan);

    let mut scratch = SimScratch::default();
    let mut sim_report = SimReport::default();
    // Warm-up: grow the scratch buffers and fault the graph in.
    for _ in 0..2 {
        simulate_into(&graph, SimMode::Predicted, &mut scratch, &mut sim_report);
    }

    let replays = 30;
    let mut rates: Vec<f64> = (0..replays)
        .map(|_| {
            let started = Instant::now();
            simulate_into(&graph, SimMode::Predicted, &mut scratch, &mut sim_report);
            graph.len() as f64 / started.elapsed().as_secs_f64()
        })
        .collect();
    rates.sort_by(f64::total_cmp);
    let tasks_per_sec = rates[replays / 2];

    // Stage attribution of the end-to-end staged pipeline on the same
    // workload: where one estimate's time goes, as a per-estimate mean.
    let staged_reps = 5u64;
    let mut stages = StageNanos::default();
    for _ in 0..staged_reps {
        estimator.estimate_staged(&model, &plan, &mut stages).expect("reference plan feasible");
    }
    let stage_profile = StageNanos {
        validate_ns: stages.validate_ns / staged_reps,
        lower_ns: stages.lower_ns / staged_reps,
        simulate_ns: stages.simulate_ns / staged_reps,
        summarize_ns: stages.summarize_ns / staged_reps,
    };

    let bench = SimBench {
        workload: format!("megatron-18.4B {plan}"),
        tasks: graph.len(),
        replays,
        tasks_per_sec,
        ns_per_task: 1e9 / tasks_per_sec,
        stage_profile,
    };
    println!(
        "replay: {} tasks, median {:.2} Mtasks/s ({:.1} ns/task) over {} replays",
        bench.tasks,
        bench.tasks_per_sec / 1e6,
        bench.ns_per_task,
        bench.replays
    );
    println!(
        "staged estimate (mean of {staged_reps}): validate {:.2}ms | lower {:.2}ms | simulate \
         {:.2}ms | summarize {:.3}ms",
        stage_profile.validate_ns as f64 / 1e6,
        stage_profile.lower_ns as f64 / 1e6,
        stage_profile.simulate_ns as f64 / 1e6,
        stage_profile.summarize_ns as f64 / 1e6
    );
    assert_eq!(sim_report.tasks_executed, graph.len(), "replay must execute the whole graph");
    report::dump_json("BENCH_sim", &bench);
}
