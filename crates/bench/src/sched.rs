//! Shared setup for the multi-tenant scheduling experiments (Figs. 12–14).

use std::fs;

use vtrain_cluster::{build_catalog, ModelCatalog};
use vtrain_core::search::SearchLimits;
use vtrain_core::Estimator;
use vtrain_model::presets;
use vtrain_parallel::ClusterSpec;

use crate::{report, threads};

/// GPUs in the shared cluster (§V-B: 128 nodes × 8 A100s).
pub const CLUSTER_GPUS: usize = 1024;

/// Builds (or loads from `results/catalog_table_iii.json`) the Table III
/// model catalog with both baseline and vTrain throughput profiles on the
/// 1,024-GPU cluster.
///
/// Profiling all three models over the full plan ladder takes a couple of
/// minutes; the JSON cache makes the three figure binaries instant after
/// the first run.
pub fn table_iii_catalog() -> ModelCatalog {
    let cache = report::results_dir().join("catalog_table_iii.json");
    if let Ok(text) = fs::read_to_string(&cache) {
        if let Ok(catalog) = serde_json::from_str::<ModelCatalog>(&text) {
            if catalog.len() == 3 {
                eprintln!("[catalog] loaded {}", cache.display());
                return catalog;
            }
        }
    }
    eprintln!("[catalog] profiling Table III models (cached after first run)...");
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(CLUSTER_GPUS)).build();
    let models = presets::table_iii_models();
    let limits = SearchLimits { max_tensor: 8, max_data: 64, max_pipeline: 16, max_micro_batch: 4 };
    let catalog = build_catalog(&estimator, &models, &limits, threads());
    assert_eq!(catalog.len(), 3, "all Table III models must profile");
    fs::write(&cache, serde_json::to_string(&catalog).expect("catalog serializes"))
        .expect("catalog cache writable");
    catalog
}
