//! # vtrain-bench
//!
//! Shared infrastructure for the experiment binaries that regenerate every
//! table and figure of the vTrain paper (see `DESIGN.md` §4 for the full
//! experiment index) and for the Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod points;
pub mod report;
pub mod sched;
pub mod stats;

use vtrain_model::{presets, ModelConfig};
use vtrain_parallel::ParallelConfig;

/// The MT-NLG 530B case-study workload (§V-A): model, global batch
/// (1,920 sequences × 2,048 tokens), and total training tokens (270 B).
pub fn mtnlg_workload() -> (ModelConfig, usize, u64) {
    (presets::mt_nlg_530b(), 1920, 270_000_000_000)
}

/// The six Table I plans: three published MT-NLG baselines and the three
/// vTrain-uncovered alternatives, as `(label, plan)` pairs.
pub fn table_i_plans() -> Vec<(&'static str, ParallelConfig)> {
    let plan = |t: usize, d: usize, p: usize| {
        ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(1)
            .global_batch(1920)
            .build()
            .expect("Table I plans are arithmetically valid")
    };
    vec![
        ("MT-NLG (8, 8,35)", plan(8, 8, 35)),
        ("MT-NLG (8,10,35)", plan(8, 10, 35)),
        ("MT-NLG (8,12,35)", plan(8, 12, 35)),
        ("Ours   (8,12,21)", plan(8, 12, 21)),
        ("Ours   (8,16,21)", plan(8, 16, 21)),
        ("Ours   (8,20,21)", plan(8, 20, 21)),
    ]
}

/// A `(t, d, p, m)` plan shorthand.
pub type Tdpm = (usize, usize, usize, usize);

/// The Table II scale-down study: `(params-label, gpus, [40]-plan,
/// vTrain-plan)` with plans given as `(t, d, p, m)`.
pub fn table_ii_rows() -> Vec<(&'static str, usize, Tdpm, Tdpm)> {
    vec![
        ("3.6", 64, (2, 32, 1, 16), (1, 64, 1, 8)),
        ("18.4", 256, (8, 32, 1, 4), (8, 32, 1, 8)),
        ("39.1", 512, (8, 32, 2, 4), (4, 32, 4, 2)),
    ]
}

/// Builds a `(t, d, p, m)` plan at a given global batch.
pub fn plan(tdpm: Tdpm, global_batch: usize) -> ParallelConfig {
    ParallelConfig::builder()
        .tensor(tdpm.0)
        .data(tdpm.1)
        .pipeline(tdpm.2)
        .micro_batch(tdpm.3)
        .global_batch(global_batch)
        .build()
        .expect("experiment plans are arithmetically valid")
}

/// True if `--full` was passed (run the complete, slower experiment).
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// The sweep goal selected by `--goal {exhaustive|front|best}` (also
/// accepted as `--goal=<value>`). Defaults to an exhaustive sweep, which
/// keeps every figure byte-identical to the pre-flag binaries.
///
/// # Panics
///
/// Panics on an unknown goal value, so CI catches typos instead of
/// silently sweeping the wrong mode.
pub fn sweep_goal() -> vtrain_core::search::SweepGoal {
    use vtrain_core::search::SweepGoal;
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let value = match a.strip_prefix("--goal=") {
            Some(v) => v.to_owned(),
            None if a == "--goal" => args.next().unwrap_or_default(),
            None => continue,
        };
        return match value.as_str() {
            "exhaustive" => SweepGoal::Exhaustive,
            "front" => SweepGoal::Front,
            "best" => SweepGoal::Best,
            other => panic!("unknown --goal `{other}` (expected exhaustive|front|best)"),
        };
    }
    SweepGoal::Exhaustive
}

/// Worker threads for sweeps.
pub fn threads() -> usize {
    std::thread::available_parallelism().map(Into::into).unwrap_or(8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_plans_match_published_gpu_counts() {
        let plans = table_i_plans();
        let gpus: Vec<usize> = plans.iter().map(|(_, p)| p.num_gpus()).collect();
        assert_eq!(gpus, vec![2240, 2800, 3360, 2016, 2688, 3360]);
    }

    #[test]
    fn mtnlg_workload_token_arithmetic() {
        let (model, batch, tokens) = mtnlg_workload();
        let per_iter = model.tokens_per_iteration(batch);
        assert_eq!(per_iter, 1920 * 2048);
        // ~68k iterations (§V-A).
        assert!((tokens.div_ceil(per_iter) as f64 - 68_000.0).abs() < 1_000.0);
    }
}
