//! Experiment output: human-readable tables plus machine-readable JSON
//! dumps under `results/` (consumed by `EXPERIMENTS.md`).

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// The directory experiment artifacts are written to (`results/` at the
/// workspace root), created on first use.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("VTRAIN_RESULTS_DIR").unwrap_or_else(|_| "results".to_owned());
    let path = PathBuf::from(dir);
    fs::create_dir_all(&path).expect("results directory must be creatable");
    path
}

/// Serializes `value` to `results/<name>.json`.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("experiment results serialize");
    fs::write(&path, json).expect("results file must be writable");
    eprintln!("[results] wrote {}", path.display());
}

/// Writes pre-serialized JSON to `results/<name>.json` (for producers
/// that already emit JSON text, e.g. the metrics-registry snapshot).
pub fn dump_raw(name: &str, json: &str) {
    let path = results_dir().join(format!("{name}.json"));
    fs::write(&path, json).expect("results file must be writable");
    eprintln!("[results] wrote {}", path.display());
}

/// Prints a banner for an experiment section.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_json_round_trips() {
        std::env::set_var("VTRAIN_RESULTS_DIR", std::env::temp_dir().join("vtrain-test-results"));
        dump_json("unit-test", &vec![1, 2, 3]);
        let path = results_dir().join("unit-test.json");
        let back: Vec<i32> = serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        std::env::remove_var("VTRAIN_RESULTS_DIR");
    }
}
