//! Validation-point generators for the Fig. 9 studies.

use vtrain_model::{presets, ModelConfig};
use vtrain_parallel::{ClusterSpec, ParallelConfig};

/// Generates the single-node validation sweep (Fig. 9a): every feasible
/// `(t, d, p, m)` combination within one 8-GPU node across the small-model
/// family — ~1,400 points, matching the paper's 1,440.
pub fn single_node_points() -> Vec<(ModelConfig, ParallelConfig)> {
    let cluster = ClusterSpec::aws_p4d(8);
    let mut out = Vec::new();
    for model in presets::single_node_family() {
        for t in [1usize, 2, 4, 8] {
            for d in [1usize, 2, 4, 8] {
                for p in [1usize, 2, 4] {
                    if t * d * p > 8 || !model.num_layers().is_multiple_of(p) {
                        continue;
                    }
                    for m in [1usize, 2] {
                        let global_batch = 16;
                        if global_batch % (d * m) != 0 {
                            continue;
                        }
                        let Ok(plan) = ParallelConfig::builder()
                            .tensor(t)
                            .data(d)
                            .pipeline(p)
                            .micro_batch(m)
                            .global_batch(global_batch)
                            .build()
                        else {
                            continue;
                        };
                        if plan.validate(&model, &cluster).is_ok() {
                            out.push((model.clone(), plan));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Generates the multi-node validation set (Fig. 9b): Megatron-family
/// models on 16–512 GPUs with practitioner-style plans — ~116 points like
/// the paper's industrial dataset.
pub fn multi_node_points() -> Vec<(ModelConfig, ParallelConfig)> {
    let cluster = ClusterSpec::aws_p4d(512);
    let mut out = Vec::new();
    let family = ["1.7B", "3.6B", "7.5B", "18.4B", "39.1B"];
    for size in family {
        let model = presets::megatron(size);
        for t in [2usize, 4, 8] {
            for d in [2usize, 4, 8, 16, 32] {
                for p in [1usize, 2, 4, 8] {
                    let gpus = t * d * p;
                    if !(16..=512).contains(&gpus) || !model.num_layers().is_multiple_of(p) {
                        continue;
                    }
                    for m in [1usize, 2, 4] {
                        let global_batch = 256;
                        if global_batch % (d * m) != 0 {
                            continue;
                        }
                        let Ok(plan) = ParallelConfig::builder()
                            .tensor(t)
                            .data(d)
                            .pipeline(p)
                            .micro_batch(m)
                            .global_batch(global_batch)
                            .build()
                        else {
                            continue;
                        };
                        if plan.validate(&model, &cluster).is_ok() {
                            out.push((model.clone(), plan));
                        }
                        // One point per (model, t, d, p): the paper's
                        // dataset fixes m per configuration.
                        break;
                    }
                }
            }
        }
    }
    // Trim deterministically to ~116 points like the paper.
    if out.len() > 116 {
        let stride = out.len() as f64 / 116.0;
        out = (0..116).map(|i| out[(i as f64 * stride) as usize].clone()).collect();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_sweep_is_large_and_feasible() {
        let pts = single_node_points();
        assert!((1_000..2_000).contains(&pts.len()), "expected ~1,440 points, got {}", pts.len());
        assert!(pts.iter().all(|(_, p)| p.num_gpus() <= 8));
    }

    #[test]
    fn multi_node_set_matches_paper_size() {
        let pts = multi_node_points();
        assert_eq!(pts.len(), 116);
        assert!(pts.iter().all(|(_, p)| (16..=512).contains(&p.num_gpus())));
    }
}
