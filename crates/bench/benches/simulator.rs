//! Criterion benchmarks of the simulator core: graph construction,
//! profiling, lowering, and the Algorithm 1 replay — substantiating the
//! paper's §III-F claim that a single simulation completes in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtrain_core::{simulate, Estimator, SimMode, TaskGraph};
use vtrain_graph::{build_op_graph, GraphOptions};
use vtrain_model::presets;
use vtrain_parallel::{ClusterSpec, GpuSpec, ParallelConfig};
use vtrain_profile::{CommModel, Profiler};

fn plan(t: usize, d: usize, p: usize, m: usize, b: usize) -> ParallelConfig {
    ParallelConfig::builder()
        .tensor(t)
        .data(d)
        .pipeline(p)
        .micro_batch(m)
        .global_batch(b)
        .build()
        .unwrap()
}

fn bench_graph_build(c: &mut Criterion) {
    let model = presets::megatron("18.4B");
    let mut group = c.benchmark_group("op_graph_build");
    for (label, cfg) in [("p8_mb32", plan(8, 2, 8, 1, 64)), ("p8_mb128", plan(8, 2, 8, 1, 256))] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
            b.iter(|| build_op_graph(&model, cfg, &GraphOptions::default()));
        });
    }
    group.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let model = presets::megatron("18.4B");
    let graph = build_op_graph(&model, &plan(8, 2, 8, 1, 64), &GraphOptions::default());
    let sigs = graph.necessary_operators();
    c.bench_function("profile_necessary_operators", |b| {
        let profiler = Profiler::new(GpuSpec::a100_40gb());
        b.iter(|| profiler.profile(&sigs));
    });
}

fn bench_replay(c: &mut Criterion) {
    let model = presets::megatron("18.4B");
    let cluster = ClusterSpec::aws_p4d(512);
    let cfg = plan(8, 4, 8, 1, 128);
    let graph =
        build_op_graph(&model, &cfg, &GraphOptions { gpus_per_node: 8, ..GraphOptions::default() });
    let table = Profiler::new(cluster.gpu.clone()).profile(&graph.necessary_operators());
    let comm = CommModel::new(&cluster, 1.0);
    let tg = TaskGraph::lower(&graph, &table, &comm).unwrap();
    c.bench_function("algorithm1_replay", |b| {
        b.iter(|| simulate(&tg, SimMode::Predicted));
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    // The §III-F headline: one full estimate (graph + profile + lower +
    // replay) runs in single-digit seconds even for MT-NLG-scale inputs.
    let estimator = Estimator::builder(ClusterSpec::dgx_a100_80gb(2240)).build();
    let model = presets::mt_nlg_530b();
    let cfg = plan(8, 8, 35, 1, 1920);
    let mut group = c.benchmark_group("single_iteration_estimate");
    group.sample_size(10);
    group.bench_function("mtnlg_8_8_35", |b| {
        b.iter(|| estimator.estimate(&model, &cfg).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_graph_build, bench_profiler, bench_replay, bench_end_to_end);
criterion_main!(benches);
