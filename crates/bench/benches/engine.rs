//! Criterion benchmarks of the vtrain-engine kernel itself: event-queue
//! scheduling/popping throughput and full dispatch through a handler.
//!
//! These establish the baseline for future performance PRs (sharded
//! queues, batched dispatch): see `crates/bench/BASELINES.md`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtrain_engine::{EventQueue, Handler, Simulation};
use vtrain_model::TimeNs;

/// Pushes `n` events at pseudo-random times, then drains the queue.
fn queue_round_trip(n: u64) -> u64 {
    let mut q = EventQueue::with_capacity(n as usize);
    let mut t = 0x9E37_79B9u64;
    for i in 0..n {
        // Cheap LCG spread of timestamps; ~12% duplicates exercise the
        // sequence tie-break path.
        t = t.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        q.push(TimeNs::from_nanos(t % (n / 8 + 1)), i);
    }
    let mut checksum = 0u64;
    while let Some(entry) = q.pop() {
        checksum = checksum.wrapping_add(entry.event);
    }
    checksum
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_event_queue");
    for n in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| queue_round_trip(n));
        });
    }
    group.finish();
}

enum Ev {
    Hop(u32),
}

struct Hopper;

impl Handler<Ev> for Hopper {
    fn handle(&mut self, Ev::Hop(budget): Ev, sim: &mut Simulation<Ev>) {
        if budget > 0 {
            sim.schedule_after(TimeNs::from_nanos(100), Ev::Hop(budget - 1));
        }
    }
}

fn bench_dispatch(c: &mut Criterion) {
    // A self-rescheduling event chain: measures the full step() path
    // (pop, clock update, stats, handler call, push).
    c.bench_function("engine_dispatch_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.schedule(TimeNs::ZERO, Ev::Hop(100_000));
            let mut handler = Hopper;
            sim.run(&mut handler)
        });
    });
}

criterion_group!(benches, bench_event_queue, bench_dispatch);
criterion_main!(benches);
