//! Criterion benchmark of the parallel design-space sweep (§III-F: "design
//! space exploration ... takes only tens of minutes over a single CPU
//! server"; each point is independent and parallelizes over cores).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtrain_core::search::{self, SearchLimits, Sweep};
use vtrain_core::Estimator;
use vtrain_model::presets;
use vtrain_parallel::{ClusterSpec, PipelineSchedule};

fn bench_sweep(c: &mut Criterion) {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(256)).build();
    let model = presets::megatron("3.6B");
    let limits = SearchLimits { max_tensor: 8, max_data: 16, max_pipeline: 6, max_micro_batch: 2 };
    let candidates = search::enumerate_candidates(
        &model,
        estimator.cluster(),
        256,
        PipelineSchedule::OneFOneB,
        &limits,
    );
    let mut group = c.benchmark_group("design_space_sweep");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &threads| {
            // Configure once; the per-iteration clone is O(1) (the grid
            // is Arc-shared), so the loop times the sweep itself.
            let sweep =
                Sweep::on(&estimator, &model).candidates(candidates.clone()).threads(threads);
            b.iter(|| sweep.clone().run());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
