//! Criterion benchmark of the multi-tenant cluster discrete-event
//! simulation (the substrate of Figs. 12–14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtrain_cluster::{
    generate_trace, simulate_cluster, CatalogEntry, ModelCatalog, ProfilePolicy, SchedulerConfig,
    ThroughputProfile, TraceConfig,
};
use vtrain_model::TimeNs;

fn synthetic_catalog() -> ModelCatalog {
    let mut catalog = ModelCatalog::new();
    for (name, base_iter) in [("small", 2.0f64), ("medium", 6.0), ("large", 15.0)] {
        let rungs: Vec<(usize, TimeNs)> = (0..7)
            .map(|i| {
                let gpus = 8usize << i;
                (gpus, TimeNs::from_secs_f64(base_iter / (1.6f64).powi(i)))
            })
            .collect();
        let baseline = ThroughputProfile::new(rungs.clone());
        let vtrain =
            ThroughputProfile::new(rungs.iter().map(|&(g, t)| (g, t.scale(0.8))).collect());
        catalog.insert(CatalogEntry {
            name: name.to_owned(),
            global_batch: 1024,
            baseline,
            vtrain,
        });
    }
    catalog
}

fn bench_cluster_sim(c: &mut Criterion) {
    let catalog = synthetic_catalog();
    let mut group = c.benchmark_group("cluster_simulation");
    for jobs in [32usize, 128, 512] {
        let trace = generate_trace(
            &TraceConfig {
                num_jobs: jobs,
                seed: 7,
                arrival_window: TimeNs::from_secs(100 * 3600),
                deadline_lambda: Some((0.5, 1.5)),
                iterations: (500, 4000),
            },
            &catalog,
        );
        group.bench_with_input(BenchmarkId::new("jobs", jobs), &trace, |b, trace| {
            b.iter(|| {
                simulate_cluster(
                    trace,
                    &catalog,
                    &SchedulerConfig::new(1024, ProfilePolicy::VTrainOptimal),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_sim);
criterion_main!(benches);
