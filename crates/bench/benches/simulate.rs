//! Criterion benchmarks of the replay hot loop in isolation: the
//! allocating `simulate` entry point vs the scratch-reusing
//! `simulate_into` the sweep workers drive, across graph sizes — the
//! micro-level companion to the `bench_sim` CI gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vtrain_core::{simulate, simulate_into, Estimator, SimMode, SimReport, SimScratch, TaskGraph};
use vtrain_model::presets;
use vtrain_parallel::{ClusterSpec, ParallelConfig};

fn lower(t: usize, d: usize, p: usize, b: usize) -> TaskGraph {
    let estimator = Estimator::builder(ClusterSpec::aws_p4d(512)).build();
    let model = presets::megatron("18.4B");
    let plan = ParallelConfig::builder()
        .tensor(t)
        .data(d)
        .pipeline(p)
        .micro_batch(1)
        .global_batch(b)
        .build()
        .unwrap();
    estimator.lower(&model, &plan)
}

fn bench_replay_alloc_vs_scratch(c: &mut Criterion) {
    let graphs = [
        ("p2_small", lower(8, 4, 2, 32)),
        ("p4_mid", lower(8, 4, 4, 128)),
        ("p8_deep", lower(4, 4, 8, 256)),
    ];
    let mut group = c.benchmark_group("simulate_replay");
    for (label, graph) in &graphs {
        group.bench_with_input(BenchmarkId::new("alloc", label), graph, |b, g| {
            b.iter(|| simulate(g, SimMode::Predicted));
        });
        group.bench_with_input(BenchmarkId::new("scratch", label), graph, |b, g| {
            let mut scratch = SimScratch::default();
            let mut report = SimReport::default();
            b.iter(|| simulate_into(g, SimMode::Predicted, &mut scratch, &mut report));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replay_alloc_vs_scratch);
criterion_main!(benches);
