//! The `(t, d, p)`-way 3D-parallelism plan and its feasibility validation.

use std::fmt;

use serde::{Deserialize, Serialize};
use vtrain_model::{ActivationStrategy, Bytes, ModelConfig};

use crate::{ClusterSpec, PipelineSchedule};

/// A complete parallelization plan for one training job.
///
/// Combines the 3D-parallel degrees with the batching parameters: the
/// global batch is split `d` ways across data-parallel replicas, and each
/// replica processes its share as `global_batch / (d·m)` micro-batches of
/// `m` sequences.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelConfig {
    tensor: usize,
    data: usize,
    pipeline: usize,
    micro_batch: usize,
    global_batch: usize,
    schedule: PipelineSchedule,
    gradient_bucketing: bool,
}

/// Why a plan is malformed or infeasible (paper §II-B memory wall, §V-A
/// search-space constraints).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanError {
    /// A degree or batch parameter that must be positive was zero.
    ZeroField(&'static str),
    /// `global_batch` is not divisible by `data * micro_batch`.
    BatchNotDivisible {
        /// Configured global batch (sequences per iteration).
        global_batch: usize,
        /// `data * micro_batch`.
        divisor: usize,
    },
    /// Tensor parallelism must stay inside one node (NVLink domain).
    TensorExceedsNode {
        /// Requested tensor-parallel degree.
        tensor: usize,
        /// GPUs available per node.
        gpus_per_node: usize,
    },
    /// Pipeline depth exceeds the number of decoder layers.
    PipelineTooDeep {
        /// Requested pipeline depth.
        pipeline: usize,
        /// Model decoder-layer count.
        num_layers: usize,
    },
    /// The plan needs more GPUs than the cluster offers.
    NotEnoughGpus {
        /// GPUs required (`t·d·p`).
        required: usize,
        /// GPUs available.
        available: usize,
    },
    /// The per-GPU memory footprint exceeds HBM capacity.
    OutOfMemory {
        /// Estimated bytes on the most loaded GPU.
        required: Bytes,
        /// HBM capacity.
        capacity: Bytes,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ZeroField(field) => write!(f, "plan field `{field}` must be positive"),
            PlanError::BatchNotDivisible { global_batch, divisor } => write!(
                f,
                "global batch {global_batch} is not divisible by data*micro_batch = {divisor}"
            ),
            PlanError::TensorExceedsNode { tensor, gpus_per_node } => write!(
                f,
                "tensor parallelism {tensor} exceeds the {gpus_per_node}-GPU NVLink domain"
            ),
            PlanError::PipelineTooDeep { pipeline, num_layers } => {
                write!(f, "pipeline depth {pipeline} exceeds {num_layers} decoder layers")
            }
            PlanError::NotEnoughGpus { required, available } => {
                write!(f, "plan requires {required} GPUs but only {available} are available")
            }
            PlanError::OutOfMemory { required, capacity } => {
                write!(f, "plan needs {required} per GPU but HBM holds {capacity}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

impl ParallelConfig {
    /// Starts building a plan. Defaults: all degrees 1, `micro_batch = 1`,
    /// `global_batch = 1`, 1F1B schedule, gradient bucketing enabled.
    pub fn builder() -> ParallelConfigBuilder {
        ParallelConfigBuilder::default()
    }

    /// Tensor-parallel degree `t`.
    pub fn tensor(&self) -> usize {
        self.tensor
    }

    /// Data-parallel degree `d`.
    pub fn data(&self) -> usize {
        self.data
    }

    /// Pipeline-parallel degree `p`.
    pub fn pipeline(&self) -> usize {
        self.pipeline
    }

    /// Micro-batch size `m` (sequences).
    pub fn micro_batch(&self) -> usize {
        self.micro_batch
    }

    /// Global batch size (sequences consumed per iteration across all
    /// replicas).
    pub fn global_batch(&self) -> usize {
        self.global_batch
    }

    /// Pipeline scheduling policy.
    pub fn schedule(&self) -> PipelineSchedule {
        self.schedule
    }

    /// Whether DP gradient bucketing (overlap of gradient All-Reduce with
    /// backward compute, paper Fig. 5) is enabled.
    pub fn gradient_bucketing(&self) -> bool {
        self.gradient_bucketing
    }

    /// Total GPUs the plan occupies: `t · d · p`.
    pub fn num_gpus(&self) -> usize {
        self.tensor * self.data * self.pipeline
    }

    /// Micro-batches per pipeline replica per iteration:
    /// `global_batch / (d · m)`.
    pub fn num_micro_batches(&self) -> usize {
        self.global_batch / (self.data * self.micro_batch)
    }

    /// Peak in-flight micro-batches under this plan's schedule.
    pub fn max_in_flight_micro_batches(&self) -> usize {
        self.schedule.max_in_flight(self.pipeline, self.num_micro_batches())
    }

    /// Checks the plan against a model and cluster.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint among: tensor parallelism must
    /// fit the NVLink domain, pipeline depth must not exceed layer count,
    /// `t·d·p` must fit the cluster, and the per-GPU footprint (full
    /// activation recomputation assumed) must fit HBM.
    pub fn validate(&self, model: &ModelConfig, cluster: &ClusterSpec) -> Result<(), PlanError> {
        if self.tensor > cluster.gpus_per_node {
            return Err(PlanError::TensorExceedsNode {
                tensor: self.tensor,
                gpus_per_node: cluster.gpus_per_node,
            });
        }
        if self.pipeline > model.num_layers() {
            return Err(PlanError::PipelineTooDeep {
                pipeline: self.pipeline,
                num_layers: model.num_layers(),
            });
        }
        if self.num_gpus() > cluster.total_gpus {
            return Err(PlanError::NotEnoughGpus {
                required: self.num_gpus(),
                available: cluster.total_gpus,
            });
        }
        let footprint = model
            .memory_per_gpu(
                self.tensor,
                self.pipeline,
                self.micro_batch,
                self.max_in_flight_micro_batches(),
                ActivationStrategy::FullRecompute,
            )
            .total();
        if footprint > cluster.gpu.memory {
            return Err(PlanError::OutOfMemory {
                required: footprint,
                capacity: cluster.gpu.memory,
            });
        }
        Ok(())
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({}, {}, {})-way, m={}, B={}, {:?}",
            self.tensor,
            self.data,
            self.pipeline,
            self.micro_batch,
            self.global_batch,
            self.schedule
        )
    }
}

/// Incremental builder for [`ParallelConfig`].
#[derive(Clone, Debug)]
pub struct ParallelConfigBuilder {
    tensor: usize,
    data: usize,
    pipeline: usize,
    micro_batch: usize,
    global_batch: usize,
    schedule: PipelineSchedule,
    gradient_bucketing: bool,
}

impl Default for ParallelConfigBuilder {
    fn default() -> Self {
        ParallelConfigBuilder {
            tensor: 1,
            data: 1,
            pipeline: 1,
            micro_batch: 1,
            global_batch: 1,
            schedule: PipelineSchedule::OneFOneB,
            gradient_bucketing: true,
        }
    }
}

impl ParallelConfigBuilder {
    /// Sets the tensor-parallel degree `t`.
    pub fn tensor(mut self, t: usize) -> Self {
        self.tensor = t;
        self
    }

    /// Sets the data-parallel degree `d`.
    pub fn data(mut self, d: usize) -> Self {
        self.data = d;
        self
    }

    /// Sets the pipeline-parallel degree `p`.
    pub fn pipeline(mut self, p: usize) -> Self {
        self.pipeline = p;
        self
    }

    /// Sets the micro-batch size `m`.
    pub fn micro_batch(mut self, m: usize) -> Self {
        self.micro_batch = m;
        self
    }

    /// Sets the global batch size (sequences).
    pub fn global_batch(mut self, b: usize) -> Self {
        self.global_batch = b;
        self
    }

    /// Sets the pipeline schedule.
    pub fn schedule(mut self, s: PipelineSchedule) -> Self {
        self.schedule = s;
        self
    }

    /// Enables or disables DP gradient bucketing.
    pub fn gradient_bucketing(mut self, enabled: bool) -> Self {
        self.gradient_bucketing = enabled;
        self
    }

    /// Validates the arithmetic constraints and produces the plan.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::ZeroField`] for zero parameters and
    /// [`PlanError::BatchNotDivisible`] when the global batch cannot be
    /// split into whole micro-batches.
    pub fn build(self) -> Result<ParallelConfig, PlanError> {
        for (value, field) in [
            (self.tensor, "tensor"),
            (self.data, "data"),
            (self.pipeline, "pipeline"),
            (self.micro_batch, "micro_batch"),
            (self.global_batch, "global_batch"),
        ] {
            if value == 0 {
                return Err(PlanError::ZeroField(field));
            }
        }
        let divisor = self.data * self.micro_batch;
        if !self.global_batch.is_multiple_of(divisor) {
            return Err(PlanError::BatchNotDivisible { global_batch: self.global_batch, divisor });
        }
        Ok(ParallelConfig {
            tensor: self.tensor,
            data: self.data,
            pipeline: self.pipeline,
            micro_batch: self.micro_batch,
            global_batch: self.global_batch,
            schedule: self.schedule,
            gradient_bucketing: self.gradient_bucketing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vtrain_model::presets;

    fn plan(t: usize, d: usize, p: usize, m: usize, b: usize) -> ParallelConfig {
        ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(m)
            .global_batch(b)
            .build()
            .unwrap()
    }

    #[test]
    fn mt_nlg_published_plan_arithmetic() {
        // (8, 12, 35) with B = 1,920 sequences and m = 1.
        let p = plan(8, 12, 35, 1, 1920);
        assert_eq!(p.num_gpus(), 3360);
        assert_eq!(p.num_micro_batches(), 160);
    }

    #[test]
    fn zero_fields_rejected() {
        let err = ParallelConfig::builder().tensor(0).build().unwrap_err();
        assert_eq!(err, PlanError::ZeroField("tensor"));
    }

    #[test]
    fn indivisible_batch_rejected() {
        let err =
            ParallelConfig::builder().data(3).micro_batch(2).global_batch(16).build().unwrap_err();
        assert!(matches!(err, PlanError::BatchNotDivisible { divisor: 6, .. }));
    }

    #[test]
    fn validate_rejects_tensor_over_node() {
        let cluster = ClusterSpec::aws_p4d(64);
        let model = presets::megatron("1.7B");
        let err = plan(16, 1, 1, 1, 16).validate(&model, &cluster).unwrap_err();
        assert!(matches!(err, PlanError::TensorExceedsNode { .. }));
    }

    #[test]
    fn validate_rejects_deep_pipeline() {
        let cluster = ClusterSpec::aws_p4d(1024);
        let model = presets::megatron("1.7B"); // 24 layers
        let err = plan(1, 1, 32, 1, 32).validate(&model, &cluster).unwrap_err();
        assert!(matches!(err, PlanError::PipelineTooDeep { .. }));
    }

    #[test]
    fn validate_rejects_cluster_overflow() {
        let cluster = ClusterSpec::aws_p4d(8);
        let model = presets::megatron("1.7B");
        let err = plan(8, 2, 1, 1, 16).validate(&model, &cluster).unwrap_err();
        assert!(matches!(err, PlanError::NotEnoughGpus { required: 16, available: 8 }));
    }

    #[test]
    fn validate_rejects_oom() {
        let cluster = ClusterSpec::aws_p4d(8);
        let model = presets::megatron("39.1B");
        let err = plan(8, 1, 1, 1, 8).validate(&model, &cluster).unwrap_err();
        assert!(matches!(err, PlanError::OutOfMemory { .. }));
    }

    #[test]
    fn validate_accepts_feasible_plan() {
        let cluster = ClusterSpec::aws_p4d(512);
        let model = presets::megatron("18.4B");
        plan(8, 8, 8, 2, 512).validate(&model, &cluster).unwrap();
    }

    #[test]
    fn error_messages_are_informative() {
        let err =
            PlanError::OutOfMemory { required: Bytes::from_gib(50), capacity: Bytes::from_gib(40) };
        assert!(err.to_string().contains("50.00GiB"));
    }

    proptest! {
        #[test]
        fn gpus_and_micro_batches_are_consistent(
            t in 1usize..16,
            d in 1usize..32,
            p in 1usize..16,
            m in 1usize..8,
            k in 1usize..16,
        ) {
            let b = d * m * k;
            let cfg = plan(t, d, p, m, b);
            prop_assert_eq!(cfg.num_gpus(), t * d * p);
            prop_assert_eq!(cfg.num_micro_batches(), k);
            prop_assert_eq!(cfg.num_micro_batches() * d * m, b);
            prop_assert!(cfg.max_in_flight_micro_batches() <= k.max(p));
        }
    }
}
