//! # vtrain-parallel
//!
//! 3D-parallelism training plans, GPU cluster topology descriptions, and
//! pipeline schedules (GPipe / 1F1B) for the vTrain simulation framework.
//!
//! A `(t, d, p)`-way 3D-parallel plan (paper §II-B, Fig. 3) combines
//! `t`-way tensor parallelism (intra-node, over NVLink), `d`-way data
//! parallelism, and `p`-way pipeline parallelism, with each pipeline replica
//! processing the global batch as a sequence of micro-batches.
//!
//! # Examples
//!
//! ```
//! use vtrain_model::presets;
//! use vtrain_parallel::{ClusterSpec, ParallelConfig, PipelineSchedule};
//!
//! let cluster = ClusterSpec::aws_p4d(512);
//! let plan = ParallelConfig::builder()
//!     .tensor(8)
//!     .data(4)
//!     .pipeline(8)
//!     .micro_batch(2)
//!     .global_batch(512)
//!     .schedule(PipelineSchedule::OneFOneB)
//!     .build()?;
//! assert_eq!(plan.num_gpus(), 256);
//! assert_eq!(plan.num_micro_batches(), 64);
//! plan.validate(&presets::megatron("18.4B"), &cluster)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod placement;
mod schedule;

pub use cluster::{ClusterSpec, GpuSpec};
pub use config::{ParallelConfig, ParallelConfigBuilder, PlanError};
pub use placement::ProcessGroups;
pub use schedule::{layer_partition, Pass, PipelineSchedule, StageSlot};
