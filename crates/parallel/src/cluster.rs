//! GPU and cluster hardware descriptions.

use serde::{Deserialize, Serialize};
use vtrain_model::{Bytes, TimeNs};

/// Performance envelope of one GPU.
///
/// The defaults model the NVIDIA A100 the paper validates against.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"A100-SXM4-40GB"`.
    pub name: String,
    /// Peak dense FP16 tensor-core throughput, FLOP/s (A100: 312e12).
    pub peak_fp16_flops: f64,
    /// HBM bandwidth, bytes/s (A100-40GB: 1.555e12).
    pub memory_bandwidth: f64,
    /// HBM capacity.
    pub memory: Bytes,
    /// Number of streaming multiprocessors (A100: 108).
    pub sm_count: usize,
    /// Fixed host-side launch overhead added per CUDA kernel by the
    /// ground-truth emulator (not by the clean vTrain prediction).
    pub kernel_launch_overhead: TimeNs,
}

impl GpuSpec {
    /// NVIDIA A100 SXM4 40 GB (AWS p4d.24xlarge GPUs).
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "A100-SXM4-40GB".to_owned(),
            peak_fp16_flops: 312e12,
            memory_bandwidth: 1.555e12,
            memory: Bytes::from_gib(40),
            sm_count: 108,
            kernel_launch_overhead: TimeNs::from_micros(4),
        }
    }

    /// NVIDIA A100 SXM4 80 GB (DGX A100 640GB nodes; MT-NLG hardware).
    pub fn a100_80gb() -> Self {
        GpuSpec {
            name: "A100-SXM4-80GB".to_owned(),
            peak_fp16_flops: 312e12,
            memory_bandwidth: 2.039e12,
            memory: Bytes::from_gib(80),
            ..GpuSpec::a100_40gb()
        }
    }
}

/// A homogeneous multi-node GPU cluster (paper §IV).
///
/// Nodes hold `gpus_per_node` GPUs connected by NVLink/NVSwitch; nodes are
/// connected by InfiniBand in a two-level non-blocking fat tree.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Per-GPU hardware description.
    pub gpu: GpuSpec,
    /// GPUs per server node (8 for DGX/p4d).
    pub gpus_per_node: usize,
    /// Total GPUs available.
    pub total_gpus: usize,
    /// Per-GPU NVLink/NVSwitch collective bus bandwidth, bytes/s
    /// (A100 NVSwitch: ~235 GB/s effective All-Reduce bus bandwidth).
    pub nvlink_bus_bandwidth: f64,
    /// Aggregate inter-node bandwidth per node, bytes/s
    /// (4 × 200 Gb/s HDR InfiniBand = 100 GB/s).
    pub internode_bandwidth: f64,
    /// Base latency of an intra-node NCCL collective launch.
    pub nvlink_latency: TimeNs,
    /// Base latency of an inter-node message (switch + HCA traversal).
    pub internode_latency: TimeNs,
}

impl ClusterSpec {
    /// AWS EC2 p4d-style cluster: nodes of 8× A100-40GB, NVSwitch intra-node,
    /// 4× 200 Gb/s HDR InfiniBand inter-node (the paper's validation
    /// platform).
    pub fn aws_p4d(total_gpus: usize) -> Self {
        ClusterSpec {
            gpu: GpuSpec::a100_40gb(),
            gpus_per_node: 8,
            total_gpus,
            nvlink_bus_bandwidth: 235e9,
            internode_bandwidth: 100e9,
            nvlink_latency: TimeNs::from_micros(8),
            internode_latency: TimeNs::from_micros(20),
        }
    }

    /// DGX A100-80GB cluster (560-node MT-NLG-style installation).
    pub fn dgx_a100_80gb(total_gpus: usize) -> Self {
        ClusterSpec { gpu: GpuSpec::a100_80gb(), ..ClusterSpec::aws_p4d(total_gpus) }
    }

    /// Number of server nodes (`ceil(total_gpus / gpus_per_node)`).
    pub fn num_nodes(&self) -> usize {
        self.total_gpus.div_ceil(self.gpus_per_node)
    }

    /// The cluster's two-tier interconnect topology: NVLink/NVSwitch
    /// inside nodes, InfiniBand between them with bandwidth-effectiveness
    /// `alpha` (paper §IV). Extend with
    /// [`Topology::with_rack_tier`](vtrain_net::Topology::with_rack_tier)
    /// for multi-rack studies.
    pub fn topology(&self, alpha: f64) -> vtrain_net::Topology {
        vtrain_net::Topology::two_tier(
            self.gpus_per_node,
            vtrain_net::TierSpec::new(self.nvlink_bus_bandwidth, self.nvlink_latency, 1.0),
            vtrain_net::TierSpec::new(self.internode_bandwidth, self.internode_latency, alpha),
        )
    }

    /// Returns a copy resized to `total_gpus` GPUs.
    pub fn with_total_gpus(mut self, total_gpus: usize) -> Self {
        self.total_gpus = total_gpus;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p4d_matches_paper_platform() {
        let c = ClusterSpec::aws_p4d(512);
        assert_eq!(c.gpus_per_node, 8);
        assert_eq!(c.num_nodes(), 64);
        assert!((c.internode_bandwidth - 100e9).abs() < 1.0);
        assert_eq!(c.gpu.memory, Bytes::from_gib(40));
    }

    #[test]
    fn node_count_rounds_up() {
        assert_eq!(ClusterSpec::aws_p4d(9).num_nodes(), 2);
        assert_eq!(ClusterSpec::aws_p4d(8).num_nodes(), 1);
    }

    #[test]
    fn with_total_gpus_resizes() {
        let c = ClusterSpec::aws_p4d(8).with_total_gpus(1024);
        assert_eq!(c.total_gpus, 1024);
        assert_eq!(c.num_nodes(), 128);
    }

    #[test]
    fn topology_mirrors_the_cluster_tiers() {
        let c = ClusterSpec::aws_p4d(64);
        let topo = c.topology(0.7);
        assert_eq!(topo.num_tiers(), 2);
        assert_eq!(topo.gpus_per_node(), 8);
        assert_eq!(topo.tier(0).bandwidth, c.nvlink_bus_bandwidth);
        assert_eq!(topo.tier(1).bandwidth, c.internode_bandwidth);
        assert_eq!(topo.tier(1).alpha, 0.7);
        assert!((topo.tier(1).effective_bandwidth() - 70e9).abs() < 1.0);
    }

    #[test]
    fn a100_80gb_differs_only_in_memory_and_bandwidth() {
        let a = GpuSpec::a100_40gb();
        let b = GpuSpec::a100_80gb();
        assert_eq!(a.peak_fp16_flops, b.peak_fp16_flops);
        assert!(b.memory > a.memory);
        assert!(b.memory_bandwidth > a.memory_bandwidth);
    }
}
