//! Pipeline-parallel schedules: GPipe and 1F1B (paper Fig. 7).
//!
//! A schedule determines, for each pipeline stage, the order in which
//! forward and backward passes of micro-batches execute on that stage's
//! GPUs, and therefore both the pipeline-bubble overhead and the peak number
//! of in-flight micro-batches (activation memory pressure).

use std::ops::Range;

use serde::{Deserialize, Serialize};

/// Direction of a pass through one pipeline stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pass {
    /// Forward pass of a micro-batch.
    Forward,
    /// Backward pass of a micro-batch.
    Backward,
}

/// One entry of a stage's execution program: which micro-batch, which pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StageSlot {
    /// Micro-batch index, `0..num_micro_batches`.
    pub micro_batch: usize,
    /// Forward or backward.
    pub pass: Pass,
}

impl StageSlot {
    fn fwd(micro_batch: usize) -> Self {
        StageSlot { micro_batch, pass: Pass::Forward }
    }
    fn bwd(micro_batch: usize) -> Self {
        StageSlot { micro_batch, pass: Pass::Backward }
    }
}

/// The pipeline scheduling policy (paper Fig. 7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineSchedule {
    /// GPipe: all forwards, then all backwards (in reverse micro-batch
    /// order). Activations of every micro-batch are simultaneously live.
    GPipe,
    /// One-forward-one-backward (PipeDream-flush): warm up, then alternate,
    /// bounding in-flight micro-batches by the pipeline depth.
    #[default]
    OneFOneB,
}

impl PipelineSchedule {
    /// The per-stage execution program for `stage` (0-indexed from the
    /// input side) of a `pipeline_depth`-stage pipeline processing
    /// `num_micro_batches` micro-batches.
    ///
    /// The returned slots are the *intra-GPU* order the paper's operator
    /// graph enforces (Fig. 7); cross-stage precedence is added separately
    /// when the execution graph is built.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= pipeline_depth` or either count is zero.
    pub fn stage_program(
        self,
        stage: usize,
        pipeline_depth: usize,
        num_micro_batches: usize,
    ) -> Vec<StageSlot> {
        assert!(pipeline_depth > 0 && num_micro_batches > 0, "counts must be positive");
        assert!(stage < pipeline_depth, "stage {stage} out of range {pipeline_depth}");
        let n = num_micro_batches;
        let mut program = Vec::with_capacity(2 * n);
        match self {
            PipelineSchedule::GPipe => {
                program.extend((0..n).map(StageSlot::fwd));
                program.extend((0..n).rev().map(StageSlot::bwd));
            }
            PipelineSchedule::OneFOneB => {
                let warmup = (pipeline_depth - 1 - stage).min(n);
                let mut next_fwd = 0;
                let mut next_bwd = 0;
                for _ in 0..warmup {
                    program.push(StageSlot::fwd(next_fwd));
                    next_fwd += 1;
                }
                while next_fwd < n {
                    program.push(StageSlot::fwd(next_fwd));
                    next_fwd += 1;
                    program.push(StageSlot::bwd(next_bwd));
                    next_bwd += 1;
                }
                while next_bwd < n {
                    program.push(StageSlot::bwd(next_bwd));
                    next_bwd += 1;
                }
            }
        }
        program
    }

    /// Peak number of micro-batches whose forward activations are live
    /// simultaneously on the most loaded stage (stage 0).
    ///
    /// GPipe keeps all of them; 1F1B bounds this by the pipeline depth —
    /// the memory-footprint advantage PipeDream is cited for (§II-B).
    pub fn max_in_flight(self, pipeline_depth: usize, num_micro_batches: usize) -> usize {
        match self {
            PipelineSchedule::GPipe => num_micro_batches,
            PipelineSchedule::OneFOneB => pipeline_depth.min(num_micro_batches),
        }
    }
}

/// Splits `num_layers` decoder layers into `pipeline_depth` contiguous
/// stages as evenly as possible (earlier stages take the remainder).
///
/// # Panics
///
/// Panics if `pipeline_depth == 0` or exceeds `num_layers`.
pub fn layer_partition(num_layers: usize, pipeline_depth: usize) -> Vec<Range<usize>> {
    assert!(pipeline_depth > 0, "pipeline depth must be positive");
    assert!(
        pipeline_depth <= num_layers,
        "cannot split {num_layers} layers into {pipeline_depth} stages"
    );
    let base = num_layers / pipeline_depth;
    let extra = num_layers % pipeline_depth;
    let mut ranges = Vec::with_capacity(pipeline_depth);
    let mut start = 0;
    for stage in 0..pipeline_depth {
        let len = base + usize::from(stage < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Validates the fundamental schedule invariants for any stage program.
    fn check_program(program: &[StageSlot], n: usize) {
        let mut fwd_seen = vec![false; n];
        let mut bwd_seen = vec![false; n];
        for slot in program {
            match slot.pass {
                Pass::Forward => {
                    assert!(!fwd_seen[slot.micro_batch], "duplicate forward");
                    fwd_seen[slot.micro_batch] = true;
                }
                Pass::Backward => {
                    assert!(fwd_seen[slot.micro_batch], "backward before forward");
                    assert!(!bwd_seen[slot.micro_batch], "duplicate backward");
                    bwd_seen[slot.micro_batch] = true;
                }
            }
        }
        assert!(fwd_seen.iter().all(|&x| x) && bwd_seen.iter().all(|&x| x));
        assert_eq!(program.len(), 2 * n);
    }

    #[test]
    fn one_f_one_b_matches_figure_7b() {
        // 2-way pipeline, 4 micro-batches; GPU 1 (last stage) strictly
        // alternates F0 B0 F1 B1 ...
        let last = PipelineSchedule::OneFOneB.stage_program(1, 2, 4);
        assert_eq!(
            last,
            vec![
                StageSlot::fwd(0),
                StageSlot::bwd(0),
                StageSlot::fwd(1),
                StageSlot::bwd(1),
                StageSlot::fwd(2),
                StageSlot::bwd(2),
                StageSlot::fwd(3),
                StageSlot::bwd(3),
            ]
        );
        // GPU 0 warms up with one forward.
        let first = PipelineSchedule::OneFOneB.stage_program(0, 2, 4);
        assert_eq!(first[0], StageSlot::fwd(0));
        assert_eq!(first[1], StageSlot::fwd(1));
        assert_eq!(first[2], StageSlot::bwd(0));
    }

    #[test]
    fn gpipe_runs_all_forwards_first() {
        let program = PipelineSchedule::GPipe.stage_program(0, 4, 3);
        assert_eq!(
            program,
            vec![
                StageSlot::fwd(0),
                StageSlot::fwd(1),
                StageSlot::fwd(2),
                StageSlot::bwd(2),
                StageSlot::bwd(1),
                StageSlot::bwd(0),
            ]
        );
    }

    #[test]
    fn in_flight_bounds() {
        assert_eq!(PipelineSchedule::GPipe.max_in_flight(4, 16), 16);
        assert_eq!(PipelineSchedule::OneFOneB.max_in_flight(4, 16), 4);
        assert_eq!(PipelineSchedule::OneFOneB.max_in_flight(8, 3), 3);
    }

    #[test]
    fn partition_is_contiguous_and_complete() {
        let parts = layer_partition(105, 35);
        assert_eq!(parts.len(), 35);
        assert!(parts.iter().all(|r| r.len() == 3));
        let parts = layer_partition(10, 3);
        assert_eq!(parts, vec![0..4, 4..7, 7..10]);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn partition_rejects_too_deep_pipeline() {
        let _ = layer_partition(4, 5);
    }

    proptest! {
        #[test]
        fn any_program_satisfies_invariants(
            depth in 1usize..12,
            stage_frac in 0.0f64..1.0,
            n in 1usize..40,
            gpipe in proptest::bool::ANY,
        ) {
            let stage = ((depth as f64 - 1.0) * stage_frac) as usize;
            let schedule = if gpipe { PipelineSchedule::GPipe } else { PipelineSchedule::OneFOneB };
            let program = schedule.stage_program(stage, depth, n);
            check_program(&program, n);
        }

        #[test]
        fn one_f_one_b_in_flight_never_exceeds_depth(
            depth in 1usize..12,
            n in 1usize..40,
        ) {
            for stage in 0..depth {
                let program = PipelineSchedule::OneFOneB.stage_program(stage, depth, n);
                let mut live = 0i64;
                let mut peak = 0i64;
                for slot in program {
                    match slot.pass {
                        Pass::Forward => { live += 1; peak = peak.max(live); }
                        Pass::Backward => { live -= 1; }
                    }
                }
                prop_assert!(peak as usize <= PipelineSchedule::OneFOneB.max_in_flight(depth, n));
            }
        }

        #[test]
        fn partition_covers_all_layers(layers in 1usize..300, depth_frac in 0.0f64..1.0) {
            let depth = 1 + ((layers - 1) as f64 * depth_frac) as usize;
            let parts = layer_partition(layers, depth);
            prop_assert_eq!(parts.len(), depth);
            let mut expected_start = 0;
            for r in &parts {
                prop_assert_eq!(r.start, expected_start);
                expected_start = r.end;
                prop_assert!(!r.is_empty());
            }
            prop_assert_eq!(expected_start, layers);
            // Heaviest and lightest stages differ by at most one layer.
            let max = parts.iter().map(|r| r.len()).max().unwrap();
            let min = parts.iter().map(|r| r.len()).min().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
