//! Mapping `(t, d, p)` process groups onto interconnect topology
//! placements.
//!
//! Megatron's rank order assigns the tensor dimension fastest, then data,
//! then pipeline: the global rank of `(t_i, d_i, p_i)` under a
//! `(t, d, p)` plan is `p_i·t·d + d_i·t + t_i`. Each parallel dimension
//! therefore forms groups with a characteristic stride — tensor groups
//! are contiguous, data groups stride by `t`, and pipeline neighbours sit
//! `t·d` ranks apart — and the stride decides which interconnect tiers
//! the group's collectives cross.

use vtrain_net::{GroupPlacement, Topology};

use crate::ParallelConfig;

/// The topology placements of one plan's process groups.
///
/// Placements are taken at the origin of the rank grid; under the regular
/// layouts the sweep enumerates (power-of-two degrees, node-aligned
/// tensor groups) every same-kind group shares the same shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProcessGroups {
    /// Tensor-parallel group: `t` contiguous ranks.
    pub tensor: GroupPlacement,
    /// Data-parallel group: `d` ranks striding by `t`.
    pub data: GroupPlacement,
}

impl ProcessGroups {
    /// Computes the placements of `plan`'s groups on `topo`.
    pub fn new(plan: &ParallelConfig, topo: &Topology) -> Self {
        ProcessGroups {
            tensor: topo.placement(0, 1, plan.tensor()),
            data: topo.placement(0, plan.tensor(), plan.data()),
        }
    }

    /// The tier of the pipeline boundary between `stage` and `stage + 1`:
    /// the link between the last rank of one stage block and the first
    /// rank of the next (stage blocks hold `t·d` ranks each).
    pub fn pipeline_boundary_tier(plan: &ParallelConfig, topo: &Topology, stage: usize) -> usize {
        let block = plan.tensor() * plan.data();
        topo.link_tier(stage * block, (stage + 1) * block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_model::TimeNs;
    use vtrain_net::TierSpec;

    fn plan(t: usize, d: usize, p: usize) -> ParallelConfig {
        ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(1)
            .global_batch(d * 4)
            .build()
            .unwrap()
    }

    fn topo() -> Topology {
        let tier = |bw| TierSpec::new(bw, TimeNs::from_micros(10), 1.0);
        Topology::two_tier(8, tier(235e9), tier(100e9)).with_rack_tier(4, tier(50e9))
    }

    #[test]
    fn tensor_groups_stay_inside_the_node() {
        let g = ProcessGroups::new(&plan(8, 4, 2), &topo());
        assert_eq!(g.tensor, GroupPlacement::intra_node(8));
        assert_eq!(g.tensor.top_tier(), 0);
    }

    #[test]
    fn data_groups_stride_across_nodes_and_racks() {
        // t = 8 fills each node, so d = 8 replicas sit on 8 nodes = 2 racks.
        let g = ProcessGroups::new(&plan(8, 8, 1), &topo());
        assert_eq!(g.data, GroupPlacement { ranks_per_node: 1, nodes_per_rack: 4, racks: 2 });
        // t·d = 4 keeps data parallelism inside one node.
        let g = ProcessGroups::new(&plan(2, 2, 1), &topo());
        assert_eq!(g.data.top_tier(), 0);
    }

    #[test]
    fn pipeline_boundaries_pick_up_the_crossed_tier() {
        let p = plan(8, 4, 4); // 32-rank stages: one rack each.
        assert_eq!(ProcessGroups::pipeline_boundary_tier(&p, &topo(), 0), 2);
        let p = plan(2, 2, 4); // 4-rank stages: two per node.
        assert_eq!(ProcessGroups::pipeline_boundary_tier(&p, &topo(), 0), 0);
        assert_eq!(ProcessGroups::pipeline_boundary_tier(&p, &topo(), 1), 1);
    }
}
