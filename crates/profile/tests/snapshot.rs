//! Property tests for the crash-safe profile-cache snapshot codec: any
//! cache round-trips byte-identically, and any single-byte corruption
//! or truncation of a snapshot is rejected without mutating the cache
//! it was being restored into.

use proptest::prelude::*;
use vtrain_graph::{CompKind, OpSignature};
use vtrain_parallel::GpuSpec;
use vtrain_profile::{ProfileCache, Profiler};

/// A profilable signature from small generated dimensions (attention
/// shapes only: the codec is shape-agnostic, variety comes cheap).
fn sig(
    kind_fwd: bool,
    hidden_kib: usize,
    heads_log2: usize,
    seq_kib: usize,
    mb: usize,
) -> OpSignature {
    OpSignature {
        kind: if kind_fwd { CompKind::MhaFwd } else { CompKind::FfnFwd },
        hidden: hidden_kib * 1024,
        heads: 1 << heads_log2,
        seq: seq_kib * 512,
        micro_batch: mb,
        tensor: 2,
        ffn_expansion: 4,
        vocab: 0,
        params: 0,
        recompute: false,
    }
}

/// Populates a cache with the generated signature set (canonicalization
/// may dedup some — the codec must reproduce whatever actually landed).
fn populated(sigs: &[(bool, usize, usize, usize, usize)]) -> ProfileCache {
    let cache = ProfileCache::new();
    let profiler = Profiler::new(GpuSpec::a100_40gb());
    for &(f, h, heads, s, mb) in sigs {
        cache.get_or_profile(&profiler, &sig(f, h, heads, s, mb));
    }
    cache
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn snapshots_round_trip_byte_identically(
        sigs in proptest::collection::vec(
            (proptest::bool::Any, 1usize..3, 3usize..6, 1usize..3, 1usize..5),
            1..6,
        )
    ) {
        let original = populated(&sigs);
        let encoded = original.encode_snapshot();
        let restored = ProfileCache::new();
        let inserted = restored.decode_snapshot(&encoded).expect("valid snapshot restores");
        prop_assert_eq!(inserted, original.len());
        prop_assert_eq!(restored.len(), original.len());
        prop_assert_eq!(restored.encode_snapshot(), encoded);
    }

    #[test]
    fn corrupted_snapshots_never_restore(
        sigs in proptest::collection::vec(
            (proptest::bool::Any, 1usize..3, 3usize..6, 1usize..3, 1usize..5),
            1..4,
        ),
        at in 0usize..4096,
        mask in 1u8..255,
    ) {
        let encoded = populated(&sigs).encode_snapshot();
        let mut bytes = encoded.into_bytes();
        let at = at % bytes.len();
        bytes[at] ^= mask;
        let corrupted = String::from_utf8_lossy(&bytes).into_owned();
        let target = ProfileCache::new();
        prop_assert!(
            target.decode_snapshot(&corrupted).is_err(),
            "flipping byte {} with {:#x} must be rejected", at, mask
        );
        prop_assert_eq!(target.len(), 0);
    }

    #[test]
    fn truncated_snapshots_never_restore(
        sigs in proptest::collection::vec(
            (proptest::bool::Any, 1usize..3, 3usize..6, 1usize..3, 1usize..5),
            1..4,
        ),
        keep in 0usize..4096,
    ) {
        let encoded = populated(&sigs).encode_snapshot();
        let keep = keep % encoded.len();
        let truncated: String = String::from_utf8_lossy(&encoded.as_bytes()[..keep]).into_owned();
        let target = ProfileCache::new();
        prop_assert!(
            target.decode_snapshot(&truncated).is_err(),
            "a snapshot cut to {} of {} bytes must be rejected", keep, encoded.len()
        );
        prop_assert_eq!(target.len(), 0);
    }
}
