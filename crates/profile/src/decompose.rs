//! Operator → CUDA-kernel decomposition.
//!
//! Mirrors what Megatron-LM actually launches for each block under `t`-way
//! tensor parallelism. Backward blocks follow the standard rule: every
//! forward GEMM contributes a data-gradient GEMM and a weight-gradient GEMM;
//! bandwidth-bound kernels run again at comparable cost; with activation
//! recomputation enabled the whole forward kernel list is replayed first.

use vtrain_gpu::KernelKind;
use vtrain_graph::{CompKind, OpSignature};

/// The CUDA-kernel sequence a single execution of `sig` launches on one GPU.
///
/// # Panics
///
/// Panics if the signature's tensor degree does not divide its head count or
/// hidden size (Megatron's own requirement).
pub fn decompose(sig: &OpSignature) -> Vec<KernelKind> {
    match sig.kind {
        CompKind::EmbeddingFwd => embedding_fwd(sig),
        CompKind::EmbeddingBwd => embedding_bwd(sig),
        CompKind::MhaFwd => mha_fwd(sig),
        CompKind::FfnFwd => ffn_fwd(sig),
        CompKind::MhaBwd => backward_of(sig, mha_fwd(sig)),
        CompKind::FfnBwd => backward_of(sig, ffn_fwd(sig)),
        CompKind::LmHeadFwd => lm_head_fwd(sig),
        CompKind::LmHeadBwd => backward_of(sig, lm_head_fwd(sig)),
        CompKind::WeightUpdate => vec![KernelKind::AdamUpdate { params: sig.params }],
    }
}

/// The profiling identity of `sig`: the signature with every field the
/// kind's decomposition does *not* read zeroed out.
///
/// Two signatures with equal canonical forms launch identical kernel
/// sequences, so they may share one cache entry — e.g. embedding lookups
/// are independent of the tensor degree, and a weight update depends only
/// on its parameter count. Kept next to [`decompose`] so the two evolve
/// together (the `canonical_profiles_match_raw_profiles` test enforces
/// agreement).
pub fn canonical(sig: &OpSignature) -> OpSignature {
    let mut c = *sig;
    c.params = 0;
    c.vocab = 0;
    match sig.kind {
        // tokens(seq, m) × hidden only.
        CompKind::EmbeddingFwd | CompKind::EmbeddingBwd => {
            c.heads = 0;
            c.tensor = 0;
            c.ffn_expansion = 0;
            c.recompute = false;
        }
        // Attention shapes; the FFN expansion is never read.
        CompKind::MhaFwd | CompKind::MhaBwd => {
            c.ffn_expansion = 0;
            if sig.kind == CompKind::MhaFwd {
                c.recompute = false;
            }
        }
        // FFN shapes; heads only feed the divisibility assertion, which
        // canonicalization must preserve — keep them.
        CompKind::FfnFwd | CompKind::FfnBwd => {
            if sig.kind == CompKind::FfnFwd {
                c.recompute = false;
            }
        }
        // Vocab-parallel projection: vocab matters (and heads for the
        // divisibility assertion).
        CompKind::LmHeadFwd | CompKind::LmHeadBwd => {
            c.vocab = sig.vocab;
            c.ffn_expansion = 0;
            if sig.kind == CompKind::LmHeadFwd {
                c.recompute = false;
            }
        }
        // A single fused Adam kernel over `params`.
        CompKind::WeightUpdate => {
            c.params = sig.params;
            c.hidden = 0;
            c.heads = 0;
            c.seq = 0;
            c.micro_batch = 0;
            c.tensor = 0;
            c.ffn_expansion = 0;
            c.recompute = false;
        }
    }
    c
}

fn tokens(sig: &OpSignature) -> u64 {
    (sig.seq * sig.micro_batch) as u64
}

fn check_divisibility(sig: &OpSignature) {
    assert!(
        sig.heads.is_multiple_of(sig.tensor) && sig.hidden.is_multiple_of(sig.tensor),
        "tensor degree {} must divide heads {} and hidden {}",
        sig.tensor,
        sig.heads,
        sig.hidden
    );
}

fn mha_fwd(sig: &OpSignature) -> Vec<KernelKind> {
    check_divisibility(sig);
    let h = sig.hidden as u64;
    let t = sig.tensor as u64;
    let s = sig.seq as u64;
    let rows = tokens(sig);
    let local_heads = (sig.heads / sig.tensor) as u64;
    let head_dim = (sig.hidden / sig.heads) as u64;
    let attn_batch = local_heads * sig.micro_batch as u64;
    vec![
        KernelKind::LayerNorm { rows, cols: h },
        // Column-parallel fused QKV projection.
        KernelKind::Gemm { m: rows, n: 3 * h / t, k: h, batch: 1 },
        // Q·Kᵀ attention scores, one GEMM per (head, micro-batch sample).
        KernelKind::Gemm { m: s, n: s, k: head_dim, batch: attn_batch },
        KernelKind::Softmax { rows: attn_batch * s, cols: s },
        // Scores·V context.
        KernelKind::Gemm { m: s, n: head_dim, k: s, batch: attn_batch },
        // Row-parallel output projection.
        KernelKind::Gemm { m: rows, n: h, k: h / t, batch: 1 },
        // Bias + dropout + residual.
        KernelKind::Elementwise { bytes: 6 * rows * h },
    ]
}

fn ffn_fwd(sig: &OpSignature) -> Vec<KernelKind> {
    check_divisibility(sig);
    let h = sig.hidden as u64;
    let t = sig.tensor as u64;
    let e = sig.ffn_expansion as u64;
    let rows = tokens(sig);
    vec![
        KernelKind::LayerNorm { rows, cols: h },
        // Column-parallel h → e·h/t.
        KernelKind::Gemm { m: rows, n: e * h / t, k: h, batch: 1 },
        // GeLU over the intermediate activation (read + write FP16).
        KernelKind::Elementwise { bytes: 4 * rows * e * h / t },
        // Row-parallel e·h/t → h.
        KernelKind::Gemm { m: rows, n: h, k: e * h / t, batch: 1 },
        KernelKind::Elementwise { bytes: 6 * rows * h },
    ]
}

fn embedding_fwd(sig: &OpSignature) -> Vec<KernelKind> {
    let rows = tokens(sig);
    let h = sig.hidden as u64;
    vec![
        KernelKind::EmbeddingLookup { tokens: rows, hidden: h },
        // Word + positional embedding add.
        KernelKind::Elementwise { bytes: 6 * rows * h },
    ]
}

fn embedding_bwd(sig: &OpSignature) -> Vec<KernelKind> {
    let rows = tokens(sig);
    let h = sig.hidden as u64;
    // Scatter-add of token gradients into the (vocab-parallel) table.
    vec![KernelKind::Elementwise { bytes: 8 * rows * h }]
}

fn lm_head_fwd(sig: &OpSignature) -> Vec<KernelKind> {
    check_divisibility(sig);
    let rows = tokens(sig);
    let h = sig.hidden as u64;
    let v_local = (sig.vocab / sig.tensor.max(1)) as u64;
    vec![
        // Vocab-parallel logits projection against the tied embedding.
        KernelKind::Gemm { m: rows, n: v_local.max(1), k: h, batch: 1 },
        // Log-softmax + cross-entropy.
        KernelKind::Softmax { rows, cols: v_local.max(1) },
    ]
}

/// Backward kernels derived from a block's forward kernel list.
fn backward_of(sig: &OpSignature, forward: Vec<KernelKind>) -> Vec<KernelKind> {
    let mut kernels = Vec::with_capacity(forward.len() * 3);
    if sig.recompute {
        // Activation recomputation replays the forward first (§II-B: the
        // source of the 4th pass in the 96·B·s·L·h² accounting).
        kernels.extend(forward.iter().copied());
    }
    for k in &forward {
        match *k {
            KernelKind::Gemm { m, n, k: kk, batch } => {
                // Data gradient: dX = dY · Wᵀ  (m×n · n×k).
                kernels.push(KernelKind::Gemm { m, n: kk, k: n, batch });
                // Weight gradient: dW = Xᵀ · dY (k×m · m×n).
                kernels.push(KernelKind::Gemm { m: kk, n, k: m, batch });
            }
            // Bandwidth-bound kernels re-stream comparable bytes backward.
            other => kernels.push(other),
        }
    }
    kernels
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(kind: CompKind, tensor: usize, recompute: bool) -> OpSignature {
        OpSignature {
            kind,
            hidden: 2048,
            heads: 16,
            seq: 1024,
            micro_batch: 2,
            tensor,
            ffn_expansion: 4,
            vocab: 51_200,
            params: 1_000_000,
            recompute,
        }
    }

    fn total_gemm_flops(kernels: &[KernelKind]) -> f64 {
        kernels.iter().filter(|k| matches!(k, KernelKind::Gemm { .. })).map(|k| k.flops()).sum()
    }

    #[test]
    fn mha_fwd_gemm_flops_match_closed_form() {
        // 24·s·h²·m/t per full layer... MHA share is 8·s·h² + 4·s²·h per
        // sequence at t = 1.
        let s = sig(CompKind::MhaFwd, 1, false);
        let got = total_gemm_flops(&decompose(&s));
        let seq = s.seq as f64;
        let h = s.hidden as f64;
        let expect = s.micro_batch as f64 * (8.0 * seq * h * h + 4.0 * seq * seq * h);
        assert!((got - expect).abs() / expect < 1e-9, "got {got:e}, expect {expect:e}");
    }

    #[test]
    fn ffn_fwd_gemm_flops_match_closed_form() {
        let s = sig(CompKind::FfnFwd, 1, false);
        let got = total_gemm_flops(&decompose(&s));
        let seq = s.seq as f64;
        let h = s.hidden as f64;
        let expect = s.micro_batch as f64 * 16.0 * seq * h * h;
        assert!((got - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn tensor_parallelism_divides_gemm_work() {
        let full = total_gemm_flops(&decompose(&sig(CompKind::MhaFwd, 1, false)));
        let split = total_gemm_flops(&decompose(&sig(CompKind::MhaFwd, 4, false)));
        assert!((full / split - 4.0).abs() < 1e-9, "4-way TP must quarter the FLOPs");
    }

    #[test]
    fn backward_without_recompute_is_twice_forward_gemms() {
        let fwd = total_gemm_flops(&decompose(&sig(CompKind::MhaFwd, 2, false)));
        let bwd = total_gemm_flops(&decompose(&sig(CompKind::MhaBwd, 2, false)));
        assert!((bwd / fwd - 2.0).abs() < 1e-9);
    }

    #[test]
    fn recompute_adds_one_forward() {
        let fwd = total_gemm_flops(&decompose(&sig(CompKind::FfnFwd, 2, false)));
        let without = total_gemm_flops(&decompose(&sig(CompKind::FfnBwd, 2, false)));
        let with = total_gemm_flops(&decompose(&sig(CompKind::FfnBwd, 2, true)));
        assert!(((with - without) / fwd - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weight_update_is_single_adam_kernel() {
        let ks = decompose(&sig(CompKind::WeightUpdate, 2, true));
        assert_eq!(ks, vec![KernelKind::AdamUpdate { params: 1_000_000 }]);
    }

    #[test]
    fn lm_head_splits_vocab() {
        let ks = decompose(&sig(CompKind::LmHeadFwd, 4, false));
        let has_local_vocab = ks.iter().any(|k| {
            matches!(
                k,
                KernelKind::Gemm { n, .. } if *n == 51_200 / 4
            )
        });
        assert!(has_local_vocab, "{ks:?}");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_tensor_degree_panics() {
        let mut s = sig(CompKind::MhaFwd, 3, false);
        s.heads = 16; // 16 % 3 != 0
        let _ = decompose(&s);
    }

    #[test]
    fn canonical_profiles_match_raw_profiles() {
        // Canonicalization must never change what gets launched: for every
        // kind, varying a zeroed-out field must not change the kernel
        // list, and decomposing the canonical signature must reproduce the
        // raw decomposition exactly.
        for kind in [
            CompKind::EmbeddingFwd,
            CompKind::EmbeddingBwd,
            CompKind::MhaFwd,
            CompKind::MhaBwd,
            CompKind::FfnFwd,
            CompKind::FfnBwd,
            CompKind::LmHeadFwd,
            CompKind::LmHeadBwd,
            CompKind::WeightUpdate,
        ] {
            for recompute in [false, true] {
                let raw = sig(kind, 2, recompute);
                let canon = canonical(&raw);
                assert_eq!(decompose(&raw), decompose(&canon), "{kind:?} recompute={recompute}");
            }
        }
        // Spot-check intended sharing: embeddings collapse across tensor
        // degrees, weight updates across everything but params.
        let e2 = canonical(&sig(CompKind::EmbeddingFwd, 2, false));
        let e4 = canonical(&sig(CompKind::EmbeddingFwd, 4, false));
        assert_eq!(e2, e4);
        let w2 = canonical(&sig(CompKind::WeightUpdate, 2, true));
        let w4 = canonical(&sig(CompKind::WeightUpdate, 4, false));
        assert_eq!(w2, w4);
        // ... but never across fields that matter.
        let m1 = canonical(&sig(CompKind::MhaFwd, 2, false));
        let m4 = canonical(&sig(CompKind::MhaFwd, 4, false));
        assert_ne!(m1, m4);
    }

    #[test]
    fn every_kind_decomposes_nonempty() {
        for kind in [
            CompKind::EmbeddingFwd,
            CompKind::EmbeddingBwd,
            CompKind::MhaFwd,
            CompKind::MhaBwd,
            CompKind::FfnFwd,
            CompKind::FfnBwd,
            CompKind::LmHeadFwd,
            CompKind::LmHeadBwd,
            CompKind::WeightUpdate,
        ] {
            assert!(!decompose(&sig(kind, 2, true)).is_empty(), "{kind:?}");
        }
    }
}
