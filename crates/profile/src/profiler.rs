//! The profiling driver: execute necessary operators, harvest kernel traces.

use std::collections::HashSet;

use vtrain_gpu::{DeviceModel, Kernel};
use vtrain_graph::OpSignature;
use vtrain_parallel::GpuSpec;

use crate::decompose::decompose;
use crate::table::{OpProfile, OperatorTaskTable, TaskRecord};

/// Profiles necessary operators against a target GPU (paper §III-C).
///
/// Where the published system launches each operator once on a physical
/// A100 and records its kernels through CUPTI, this profiler launches the
/// operator's kernel decomposition against the analytical
/// [`DeviceModel`] — producing the identical artifact: an
/// [`OperatorTaskTable`] of named kernels with wall-clock latencies.
#[derive(Clone, Debug)]
pub struct Profiler {
    device: DeviceModel,
}

impl Profiler {
    /// Creates a profiler targeting the given GPU.
    pub fn new(gpu: GpuSpec) -> Self {
        Profiler { device: DeviceModel::new(gpu) }
    }

    /// The underlying device model.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    /// The GPU being modeled.
    pub fn gpu(&self) -> &GpuSpec {
        self.device.spec()
    }

    /// Executes one operator and records its kernel trace.
    pub fn profile_operator(&self, sig: &OpSignature) -> OpProfile {
        let tasks = decompose(sig)
            .into_iter()
            .map(|kind| {
                let kernel = Kernel::new(kind);
                let duration = self.device.kernel_latency(&kind);
                TaskRecord::new(&kernel, duration)
            })
            .collect();
        OpProfile { tasks }
    }

    /// The `(total latency, kernel count)` of one operator execution,
    /// without materializing the kernel trace. Single-kernel operators
    /// (the fused Adam weight update) are evaluated closed-form with no
    /// heap allocation — the hot path for per-stage weight updates, whose
    /// near-unique parameter counts bypass the profile cache.
    pub fn operator_latency(&self, sig: &OpSignature) -> (vtrain_model::TimeNs, u32) {
        if sig.kind == vtrain_graph::CompKind::WeightUpdate {
            let kind = vtrain_gpu::KernelKind::AdamUpdate { params: sig.params };
            return (self.device.kernel_latency(&kind), 1);
        }
        let kernels = decompose(sig);
        (self.device.sequence_latency(kernels.iter()), kernels.len() as u32)
    }

    /// Profiles every necessary operator, producing the lookup table.
    ///
    /// Cost is `O(|signatures|)` — constant in the number of layers and
    /// micro-batches, per the paper's key profiling optimization.
    pub fn profile(&self, signatures: &HashSet<OpSignature>) -> OperatorTaskTable {
        let mut table = OperatorTaskTable::new();
        for sig in signatures {
            table.insert(*sig, self.profile_operator(sig));
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtrain_graph::{build_op_graph, GraphOptions};
    use vtrain_model::{presets, TimeNs};
    use vtrain_parallel::ParallelConfig;

    fn table_for(t: usize, d: usize, p: usize) -> OperatorTaskTable {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder()
            .tensor(t)
            .data(d)
            .pipeline(p)
            .micro_batch(1)
            .global_batch(8 * d)
            .build()
            .unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        Profiler::new(vtrain_parallel::GpuSpec::a100_40gb()).profile(&graph.necessary_operators())
    }

    #[test]
    fn covers_all_necessary_operators() {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder()
            .tensor(2)
            .data(2)
            .pipeline(2)
            .global_batch(8)
            .build()
            .unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let sigs = graph.necessary_operators();
        let table = Profiler::new(vtrain_parallel::GpuSpec::a100_40gb()).profile(&sigs);
        assert_eq!(table.len(), sigs.len());
        for sig in &sigs {
            let profile = table.get(sig).expect("profiled");
            assert!(profile.total() > TimeNs::ZERO);
            assert!(profile.kernel_count() >= 1);
        }
    }

    #[test]
    fn tensor_parallel_operators_are_faster() {
        let t1 = table_for(1, 1, 1);
        let t4 = table_for(4, 1, 1);
        let total = |t: &OperatorTaskTable| -> f64 {
            t.iter()
                .filter(|(s, _)| {
                    s.kind == vtrain_graph::CompKind::MhaFwd
                        || s.kind == vtrain_graph::CompKind::FfnFwd
                })
                .map(|(_, p)| p.total().as_secs_f64())
                .sum()
        };
        assert!(total(&t4) < total(&t1), "4-way TP should shrink per-GPU layer time");
    }

    #[test]
    fn operator_latency_matches_full_profile() {
        let model = presets::megatron("1.7B");
        let plan = ParallelConfig::builder()
            .tensor(2)
            .data(2)
            .pipeline(2)
            .global_batch(8)
            .build()
            .unwrap();
        let graph = build_op_graph(&model, &plan, &GraphOptions::default());
        let profiler = Profiler::new(vtrain_parallel::GpuSpec::a100_40gb());
        for sig in &graph.necessary_operators() {
            let profile = profiler.profile_operator(sig);
            let (total, kernels) = profiler.operator_latency(sig);
            assert_eq!(total, profile.total(), "{sig:?}");
            assert_eq!(kernels as usize, profile.kernel_count(), "{sig:?}");
        }
    }

    #[test]
    fn profiling_is_deterministic() {
        let a = table_for(2, 2, 2);
        let b = table_for(2, 2, 2);
        for (sig, profile) in a.iter() {
            assert_eq!(Some(profile), b.get(sig));
        }
    }
}
