//! # vtrain-profile
//!
//! The profiling module of vTrain (paper §III-C) and its communication
//! models (§III-D, §IV).
//!
//! The published system executes each *necessary operator* once on the
//! target GPU and harvests its CUDA-kernel trace through CUPTI, building an
//! operator-to-task lookup table. Here the role of the physical GPU is
//! played by [`vtrain_gpu::DeviceModel`]: [`Profiler::profile`] decomposes
//! every distinct [`OpSignature`](vtrain_graph::OpSignature) into the
//! CUDA-kernel sequence Megatron-style training would launch, "runs" each
//! kernel against the device model, and records `(kernel name, latency)`
//! task lists — the same artifact, produced the same way, minus the silicon.
//!
//! Communication costs follow the paper exactly:
//! * intra-node collectives are *profiled*: an NCCL latency sweep from 1 MB
//!   to 1024 MB across 2/4/8 ranks, interpolated log-linearly
//!   ([`CommModel`]);
//! * inter-node collectives use the NCCL analytical model of Equation (1)
//!   with a bandwidth-effectiveness factor `α`.
//!
//! # Examples
//!
//! ```
//! use vtrain_graph::{build_op_graph, GraphOptions};
//! use vtrain_model::presets;
//! use vtrain_parallel::{ClusterSpec, ParallelConfig};
//! use vtrain_profile::{CommModel, Profiler};
//!
//! let model = presets::megatron("1.7B");
//! let plan = ParallelConfig::builder()
//!     .tensor(2).data(2).pipeline(2).micro_batch(2).global_batch(16)
//!     .build()?;
//! let cluster = ClusterSpec::aws_p4d(8);
//! let graph = build_op_graph(&model, &plan, &GraphOptions::default());
//!
//! let table = Profiler::new(cluster.gpu.clone()).profile(&graph.necessary_operators());
//! assert!(!table.is_empty());
//! let comm = CommModel::new(&cluster, 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod comm_model;
mod decompose;
mod profiler;
mod table;

pub use cache::{CacheStats, GpuKey, ProfileCache, ProfileSet, SnapshotError, SNAPSHOT_VERSION};
pub use comm_model::CommModel;
pub use decompose::{canonical, decompose};
pub use profiler::Profiler;
pub use table::{OpProfile, OperatorTaskTable, TaskRecord};
