//! Communication latency models (paper §III-D and §IV).

use serde::{Deserialize, Serialize};
use vtrain_gpu::comm::{all_reduce_time, send_recv_time, InterNodeModel};
use vtrain_graph::{CommKind, CommOp, CommScope};
use vtrain_model::{Bytes, TimeNs};
use vtrain_parallel::ClusterSpec;

/// Sizes swept when profiling intra-node NCCL primitives (1 MB – 1024 MB,
/// the range the paper reports).
const SWEEP_MIB: [u64; 11] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
/// Rank counts profiled (2/4/8 GPUs of one node).
const SWEEP_RANKS: [usize; 3] = [2, 4, 8];

/// The complete communication model: profiled intra-node tables plus the
/// Equation (1) analytical inter-node model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CommModel {
    /// Profiled `(ranks, [(bytes, latency)])` anchors for intra-node
    /// All-Reduce, interpolated log-linearly between anchors.
    intra_anchors: Vec<(usize, Vec<(u64, TimeNs)>)>,
    inter: InterNodeModel,
    nvlink_bus_bandwidth: f64,
    nvlink_latency: TimeNs,
    internode_bandwidth: f64,
    internode_latency: TimeNs,
}

impl CommModel {
    /// Builds the model for a cluster: sweeps intra-node NCCL All-Reduce
    /// latencies in an isolated setting (exactly the paper's methodology —
    /// and, exactly as the paper notes, therefore blind to the ~30 %
    /// contention inflation the ground-truth emulator injects), and
    /// instantiates Equation (1) with bandwidth-effectiveness `alpha`.
    pub fn new(cluster: &ClusterSpec, alpha: f64) -> Self {
        let intra_anchors = SWEEP_RANKS
            .iter()
            .map(|&ranks| {
                let anchors = SWEEP_MIB
                    .iter()
                    .map(|&mib| {
                        let bytes = Bytes::from_mib(mib);
                        let t = all_reduce_time(
                            bytes,
                            ranks,
                            cluster.nvlink_bus_bandwidth,
                            cluster.nvlink_latency,
                        );
                        (bytes.as_u64(), t)
                    })
                    .collect();
                (ranks, anchors)
            })
            .collect();
        CommModel {
            intra_anchors,
            inter: InterNodeModel::new(
                cluster.internode_bandwidth,
                alpha,
                cluster.internode_latency,
            ),
            nvlink_bus_bandwidth: cluster.nvlink_bus_bandwidth,
            nvlink_latency: cluster.nvlink_latency,
            internode_bandwidth: cluster.internode_bandwidth,
            internode_latency: cluster.internode_latency,
        }
    }

    /// Returns a copy with a different bandwidth-effectiveness factor
    /// (used by the §IV α-calibration sweep).
    pub fn with_alpha(&self, alpha: f64) -> Self {
        let mut out = self.clone();
        out.inter = InterNodeModel::new(self.internode_bandwidth, alpha, self.internode_latency);
        out
    }

    /// The configured `α`.
    pub fn alpha(&self) -> f64 {
        self.inter.alpha
    }

    /// Latency of an intra-node All-Reduce by table interpolation
    /// (log-linear between profiled anchors; linear extrapolation outside).
    pub fn intra_all_reduce(&self, bytes: Bytes, ranks: usize) -> TimeNs {
        if ranks <= 1 {
            return TimeNs::ZERO;
        }
        let Some((_, anchors)) = self.intra_anchors.iter().find(|(r, _)| *r == ranks) else {
            // Unprofiled rank count: fall back to the ring model directly.
            return all_reduce_time(bytes, ranks, self.nvlink_bus_bandwidth, self.nvlink_latency);
        };
        interpolate(anchors, bytes.as_u64())
    }

    /// Latency of an operator from the execution graph.
    pub fn latency(&self, op: &CommOp) -> TimeNs {
        match (op.kind, op.scope) {
            (CommKind::TpAllReduce, _) | (CommKind::DpAllReduce, CommScope::IntraNode) => {
                self.intra_all_reduce(op.bytes, op.ranks)
            }
            (CommKind::DpAllReduce, CommScope::InterNode) => {
                self.inter.all_reduce(op.bytes, op.ranks)
            }
            (CommKind::PpSendRecv, CommScope::IntraNode) => {
                send_recv_time(op.bytes, self.nvlink_bus_bandwidth, self.nvlink_latency)
            }
            (CommKind::PpSendRecv, CommScope::InterNode) => {
                send_recv_time(op.bytes, self.internode_bandwidth, self.internode_latency)
            }
        }
    }
}

/// Log-linear interpolation over `(bytes, latency)` anchors sorted by bytes.
fn interpolate(anchors: &[(u64, TimeNs)], bytes: u64) -> TimeNs {
    debug_assert!(!anchors.is_empty());
    let bytes = bytes.max(1);
    let first = anchors.first().expect("nonempty anchors");
    let last = anchors.last().expect("nonempty anchors");
    if bytes <= first.0 {
        // Below the sweep floor latency is launch-dominated: scale the
        // transfer share linearly, keep the floor's latency share.
        let scale = bytes as f64 / first.0 as f64;
        return first.1.scale(scale.max(0.05)).max(TimeNs::from_micros(5));
    }
    if bytes >= last.0 {
        let scale = bytes as f64 / last.0 as f64;
        return last.1.scale(scale);
    }
    let hi = anchors.iter().position(|(b, _)| *b >= bytes).expect("bytes below max anchor");
    let (b0, t0) = anchors[hi - 1];
    let (b1, t1) = anchors[hi];
    let frac = ((bytes as f64).ln() - (b0 as f64).ln()) / ((b1 as f64).ln() - (b0 as f64).ln());
    let t = t0.as_secs_f64() + frac * (t1.as_secs_f64() - t0.as_secs_f64());
    TimeNs::from_secs_f64(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn model() -> CommModel {
        CommModel::new(&ClusterSpec::aws_p4d(64), 1.0)
    }

    fn op(kind: CommKind, scope: CommScope, mib: u64, ranks: usize) -> CommOp {
        CommOp {
            kind,
            bytes: Bytes::from_mib(mib),
            ranks,
            scope,
            overlappable: false,
            concurrent_groups: 1,
        }
    }

    #[test]
    fn interpolation_agrees_with_anchors_exactly() {
        let m = model();
        for mib in SWEEP_MIB {
            let expect = all_reduce_time(Bytes::from_mib(mib), 8, 235e9, TimeNs::from_micros(8));
            let got = m.intra_all_reduce(Bytes::from_mib(mib), 8);
            let rel = (got.as_secs_f64() - expect.as_secs_f64()).abs() / expect.as_secs_f64();
            assert!(rel < 1e-6, "anchor {mib}MiB: got {got}, expect {expect}");
        }
    }

    #[test]
    fn inter_node_uses_equation_one() {
        let m = model();
        let o = op(CommKind::DpAllReduce, CommScope::InterNode, 512, 8);
        // 512 MiB · 2·7/8 / 100 GB/s ≈ 9.4 ms (+20 µs latency).
        let t = m.latency(&o).as_secs_f64();
        assert!((t - 0.0094).abs() < 0.0005, "got {t}");
    }

    #[test]
    fn alpha_half_doubles_inter_node_time() {
        let m = model();
        let o = op(CommKind::DpAllReduce, CommScope::InterNode, 256, 16);
        let base = m.latency(&o).as_secs_f64();
        let half = m.with_alpha(0.5).latency(&o).as_secs_f64();
        assert!((half / base - 2.0).abs() < 0.01);
    }

    #[test]
    fn alpha_does_not_touch_intra_node() {
        let m = model();
        let o = op(CommKind::TpAllReduce, CommScope::IntraNode, 64, 8);
        assert_eq!(m.latency(&o), m.with_alpha(0.3).latency(&o));
    }

    #[test]
    fn pp_send_recv_cheaper_than_all_reduce() {
        // §II-B: Send-Receive just moves the payload once; All-Reduce moves
        // ~2× across the ring.
        let m = model();
        let send = m.latency(&op(CommKind::PpSendRecv, CommScope::InterNode, 128, 2));
        let ar = m.latency(&op(CommKind::DpAllReduce, CommScope::InterNode, 128, 8));
        assert!(send < ar);
    }

    #[test]
    fn unprofiled_rank_count_falls_back_to_ring_model() {
        let m = model();
        let got = m.intra_all_reduce(Bytes::from_mib(64), 6);
        let expect = all_reduce_time(Bytes::from_mib(64), 6, 235e9, TimeNs::from_micros(8));
        assert_eq!(got, expect);
    }

    proptest! {
        #[test]
        fn interpolated_latency_monotone_in_bytes(a in 1u64..2048, b in 1u64..2048) {
            let m = model();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let tl = m.intra_all_reduce(Bytes::from_mib(lo), 8);
            let th = m.intra_all_reduce(Bytes::from_mib(hi), 8);
            prop_assert!(tl <= th, "{}MiB -> {}, {}MiB -> {}", lo, tl, hi, th);
        }
    }
}
